#include "tls/server.hpp"

#include <algorithm>

#include "crypto/kdf.hpp"
#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "tls/alert.hpp"

namespace iotls::tls {

namespace {

struct ServerMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  obs::Counter& handshakes(const std::string& result) {
    return reg.counter("iotls_tls_server_handshakes_total",
                       "Server-side handshakes completed, by kind", "result",
                       result);
  }
  obs::Counter& alerts(const std::string& description) {
    return reg.counter("iotls_tls_server_alerts_total",
                       "Fatal alerts the server sent, by description",
                       "description", description);
  }

  static ServerMetrics& get() {
    static ServerMetrics metrics;
    return metrics;
  }
};

}  // namespace

TlsServer::TlsServer(ServerConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  // Stateless ticket key, stable per server identity (seed).
  common::ByteWriter seed_bytes;
  seed_bytes.u64(config_.seed);
  ticket_key_ = crypto::hkdf({}, seed_bytes.bytes(), "server ticket key", 32);
}

TlsRecord TlsServer::handshake_record(const HandshakeMessage& msg) {
  transcript_ = common::concat({transcript_, msg.serialize()});
  // Records use the pre-1.3 convention of labelling with TLS 1.2 max.
  const ProtocolVersion record_version =
      negotiated_version_ >= ProtocolVersion::Tls1_2 ? ProtocolVersion::Tls1_2
                                                     : negotiated_version_;
  return TlsRecord{ContentType::Handshake, record_version, msg.serialize()};
}

std::vector<TlsRecord> TlsServer::fail(AlertDescription desc) {
  state_ = State::Failed;
  if (obs::metrics_enabled()) {
    ServerMetrics::get().alerts(alert_name(desc)).inc();
  }
  const Alert alert{AlertLevel::Fatal, desc};
  return {TlsRecord{ContentType::Alert, ProtocolVersion::Tls1_2,
                    alert.serialize()}};
}

std::vector<TlsRecord> TlsServer::on_record(const TlsRecord& record) {
  const obs::ProfileZone zone("tls/server_on_record");
  if (record.type == ContentType::Alert) {
    obs_.alert_received = Alert::parse(record.payload);
    state_ = State::Failed;
    return {};
  }

  try {
    switch (state_) {
      case State::ExpectClientHello: {
        if (record.type != ContentType::Handshake) {
          return fail(AlertDescription::UnexpectedMessage);
        }
        const auto msg = HandshakeMessage::parse(record.payload);
        if (msg.type != HandshakeType::ClientHello) {
          return fail(AlertDescription::UnexpectedMessage);
        }
        return handle_client_hello(msg);
      }
      case State::ExpectClientKeyExchange: {
        if (record.type != ContentType::Handshake) {
          return fail(AlertDescription::UnexpectedMessage);
        }
        const auto msg = HandshakeMessage::parse(record.payload);
        if (msg.type != HandshakeType::ClientKeyExchange) {
          return fail(AlertDescription::UnexpectedMessage);
        }
        return handle_client_key_exchange(msg);
      }
      case State::ExpectFinished: {
        if (record.type == ContentType::ChangeCipherSpec) return {};
        if (record.type != ContentType::Handshake) {
          return fail(AlertDescription::UnexpectedMessage);
        }
        const auto msg = HandshakeMessage::parse(record.payload);
        if (msg.type != HandshakeType::Finished) {
          return fail(AlertDescription::UnexpectedMessage);
        }
        return handle_finished(msg);
      }
      case State::Established:
        if (record.type == ContentType::ApplicationData) {
          return handle_app_data(record);
        }
        return {};
      case State::Failed:
        return {};
    }
  } catch (const common::ParseError&) {
    return fail(AlertDescription::DecodeError);
  } catch (const common::CryptoError&) {
    return fail(AlertDescription::DecryptError);
  }
  return {};
}

std::vector<TlsRecord> TlsServer::handle_client_hello(
    const HandshakeMessage& msg) {
  const ClientHello hello = ClientHello::parse(msg.body);
  obs_.saw_client_hello = true;
  obs_.client_hello = hello;
  client_random_ = hello.random;
  transcript_ = common::concat({transcript_, msg.serialize()});

  if (config_.silent_after_client_hello) {
    state_ = State::Failed;
    return {};
  }

  // RFC 5077: a non-empty session_ticket extension proposes resumption.
  if (config_.session_tickets) {
    auto abbreviated = try_resume(hello);
    if (abbreviated.has_value()) return std::move(*abbreviated);
  }

  // --- Version negotiation ---
  if (config_.force_version.has_value()) {
    negotiated_version_ = *config_.force_version;
  } else {
    const bool has_supported_versions =
        find_extension(hello.extensions, ExtensionType::SupportedVersions) !=
        nullptr;
    std::optional<ProtocolVersion> best;
    if (has_supported_versions) {
      // TLS 1.3-style: exact membership in the advertised list.
      const auto client_versions = hello.advertised_versions();
      for (const auto v : config_.versions) {
        if (std::find(client_versions.begin(), client_versions.end(), v) ==
            client_versions.end()) {
          continue;
        }
        if (!best || v > *best) best = v;
      }
    } else {
      // Pre-1.3: legacy_version is the client's *maximum*; the server may
      // select any version it supports at or below it.
      for (const auto v : config_.versions) {
        if (v > hello.legacy_version || v == ProtocolVersion::Tls1_3) {
          continue;
        }
        if (!best || v > *best) best = v;
      }
    }
    if (!best) return fail(AlertDescription::ProtocolVersion);
    negotiated_version_ = *best;
  }

  // --- Suite negotiation (server preference order) ---
  const bool tls13 = negotiated_version_ == ProtocolVersion::Tls1_3;
  if (config_.force_suite.has_value()) {
    negotiated_suite_ = *config_.force_suite;
  } else {
    std::optional<std::uint16_t> chosen;
    for (const auto s : config_.cipher_suites) {
      if (suite_is_tls13(s) != tls13) continue;
      if (std::find(hello.cipher_suites.begin(), hello.cipher_suites.end(),
                    s) == hello.cipher_suites.end()) {
        continue;
      }
      chosen = s;
      break;
    }
    if (!chosen) return fail(AlertDescription::HandshakeFailure);
    negotiated_suite_ = *chosen;
  }

  // --- Build server flight ---
  const common::Bytes random_bytes = rng_.bytes(32);
  std::copy(random_bytes.begin(), random_bytes.end(), server_random_.begin());

  ServerHello sh;
  sh.version = std::min(negotiated_version_, ProtocolVersion::Tls1_2);
  sh.random = server_random_;
  sh.session_id = rng_.bytes(8);
  sh.cipher_suite = negotiated_suite_;
  if (negotiated_version_ == ProtocolVersion::Tls1_3) {
    sh.extensions.push_back(
        make_supported_versions({ProtocolVersion::Tls1_3}));
  }
  if (config_.ocsp_staple_support && hello.requests_ocsp_stapling()) {
    sh.extensions.push_back({static_cast<std::uint16_t>(
                                 ExtensionType::StatusRequest),
                             {}});
  }

  std::vector<TlsRecord> out;
  out.push_back(
      handshake_record(HandshakeMessage::wrap(HandshakeType::ServerHello, sh)));

  CertificateMsg cert_msg;
  cert_msg.chain = config_.chain;
  out.push_back(handshake_record(
      HandshakeMessage::wrap(HandshakeType::Certificate, cert_msg)));

  if (config_.ocsp_staple_support && hello.requests_ocsp_stapling() &&
      !config_.chain.empty()) {
    // Stapled OCSP response (RFC 6066). Simulation payload: a good-status
    // assertion bound to the leaf's identity.
    CertificateStatus status;
    status.ocsp_response = common::to_bytes(
        "ocsp-status=good;cert=" + config_.chain.front().fingerprint());
    out.push_back(handshake_record(
        HandshakeMessage::wrap(HandshakeType::CertificateStatus, status)));
  }

  const CipherSuiteInfo* info = suite_info(negotiated_suite_);
  const bool ephemeral =
      info != nullptr &&
      (info->kex == KeyExchange::Dhe || info->kex == KeyExchange::Ecdhe ||
       info->kex == KeyExchange::Tls13 || info->kex == KeyExchange::Anon);
  if (ephemeral) {
    // Pick a group the client offered if possible.
    dh_group_ = crypto::DhGroup::X25519;
    if (obs_.client_hello) {
      const Extension* groups_ext = find_extension(
          obs_.client_hello->extensions, ExtensionType::SupportedGroups);
      if (groups_ext != nullptr) {
        const auto groups = parse_supported_groups(groups_ext->payload);
        if (!groups.empty()) dh_group_ = groups.front();
      }
    }
    dh_keys_ = crypto::dh_generate(rng_, dh_group_);
    ServerKeyExchange ske;
    ske.group = dh_group_;
    ske.server_public = dh_keys_->pub;
    ske.signature = crypto::rsa_sign(
        config_.keys.priv,
        ske.signed_payload(client_random_, server_random_));
    out.push_back(handshake_record(
        HandshakeMessage::wrap(HandshakeType::ServerKeyExchange, ske)));
  }

  out.push_back(handshake_record(
      HandshakeMessage::wrap(HandshakeType::ServerHelloDone,
                             ServerHelloDone{})));

  state_ = State::ExpectClientKeyExchange;
  return out;
}

std::optional<std::vector<TlsRecord>> TlsServer::try_resume(
    const ClientHello& hello) {
  const Extension* ext =
      find_extension(hello.extensions, ExtensionType::SessionTicket);
  if (ext == nullptr || ext->payload.empty()) return std::nullopt;

  const auto contents = unseal_ticket(ticket_key_, ext->payload);
  if (!contents.has_value()) return std::nullopt;  // forged/stale → full HS
  // Lifetime policy: an expired (or future-stamped) ticket is declined the
  // same silent way as a forged one — the handshake proceeds in full and
  // the client never sees an alert for offering it.
  if (config_.ticket_lifetime_epochs != 0 &&
      (contents->issued_epoch > config_.ticket_epoch ||
       config_.ticket_epoch - contents->issued_epoch >
           config_.ticket_lifetime_epochs)) {
    return std::nullopt;
  }
  // The resumed suite must still be on offer, and pre-1.3 only (TLS 1.3
  // resumption is a different mechanism).
  if (std::find(hello.cipher_suites.begin(), hello.cipher_suites.end(),
                contents->cipher_suite) == hello.cipher_suites.end()) {
    return std::nullopt;
  }
  if (hello.max_advertised_version() == ProtocolVersion::Tls1_3) {
    return std::nullopt;
  }

  resumed_ = true;
  negotiated_version_ =
      std::min(hello.legacy_version, ProtocolVersion::Tls1_2);
  negotiated_suite_ = contents->cipher_suite;

  const common::Bytes random_bytes = rng_.bytes(32);
  std::copy(random_bytes.begin(), random_bytes.end(), server_random_.begin());

  ServerHello sh;
  sh.version = negotiated_version_;
  sh.random = server_random_;
  sh.session_id = hello.session_id;  // echo = resumption accepted
  sh.cipher_suite = negotiated_suite_;

  std::vector<TlsRecord> out;
  out.push_back(handshake_record(
      HandshakeMessage::wrap(HandshakeType::ServerHello, sh)));
  // The abbreviated flight's Finished covers the CH+SH transcript only;
  // snapshot it before the re-issued ticket below, which both sides keep
  // out of the transcript.
  resumed_transcript_hash_ = crypto::Sha256::digest_bytes(transcript_);

  // RFC 5077 §3.3: re-issue a fresh ticket on every accepted resumption so
  // the session's lifetime slides with use — the new stamp is the current
  // epoch, while the offered ticket keeps its original (possibly nearly
  // expired) one.
  NewSessionTicket nst;
  nst.ticket = seal_ticket(ticket_key_, contents->cipher_suite,
                           contents->master_secret, config_.ticket_epoch);
  out.push_back(handshake_record(
      HandshakeMessage::wrap(HandshakeType::NewSessionTicket, nst)));
  obs_.ticket_issued = true;

  keys_ = derive_resumed_keys(contents->master_secret, client_random_,
                              server_random_, negotiated_suite_);
  keys_->master_secret = contents->master_secret;
  recv_protection_ = std::make_unique<RecordProtection>(
      negotiated_suite_, keys_->client_key, keys_->client_mac_key,
      keys_->client_nonce);
  send_protection_ = std::make_unique<RecordProtection>(
      negotiated_suite_, keys_->server_key, keys_->server_mac_key,
      keys_->server_nonce);

  Finished server_fin;
  server_fin.verify_data = compute_verify_data(
      keys_->master_secret, /*from_client=*/false, resumed_transcript_hash_);
  out.push_back(handshake_record(
      HandshakeMessage::wrap(HandshakeType::Finished, server_fin)));

  state_ = State::ExpectFinished;
  obs_.resumed = true;
  return out;
}

std::vector<TlsRecord> TlsServer::handle_client_key_exchange(
    const HandshakeMessage& msg) {
  const ClientKeyExchange cke = ClientKeyExchange::parse(msg.body);
  transcript_ = common::concat({transcript_, msg.serialize()});

  common::Bytes premaster;
  if (dh_keys_.has_value()) {
    premaster = crypto::dh_shared_secret(dh_group_, dh_keys_->secret,
                                         cke.exchange_data);
  } else {
    const auto decrypted =
        crypto::rsa_decrypt(config_.keys.priv, cke.exchange_data);
    if (!decrypted) return fail(AlertDescription::DecryptError);
    premaster = *decrypted;
  }

  keys_ = derive_session_keys(premaster, client_random_, server_random_,
                              negotiated_suite_);
  recv_protection_ = std::make_unique<RecordProtection>(
      negotiated_suite_, keys_->client_key, keys_->client_mac_key,
      keys_->client_nonce);
  send_protection_ = std::make_unique<RecordProtection>(
      negotiated_suite_, keys_->server_key, keys_->server_mac_key,
      keys_->server_nonce);

  state_ = State::ExpectFinished;
  return {};
}

std::vector<TlsRecord> TlsServer::handle_finished(
    const HandshakeMessage& msg) {
  const Finished fin = Finished::parse(msg.body);

  if (resumed_) {
    // Abbreviated handshake: the server Finished is already out; verify
    // the client's over the same (CH + SH) transcript.
    const auto expected = compute_verify_data(
        keys_->master_secret, /*from_client=*/true, resumed_transcript_hash_);
    if (!common::constant_time_equal(fin.verify_data, expected)) {
      return fail(AlertDescription::DecryptError);
    }
    state_ = State::Established;
    obs_.handshake_complete = true;
    if (obs::metrics_enabled()) {
      ServerMetrics::get().handshakes("resumed").inc();
    }
    return {};
  }

  const auto transcript_hash = crypto::Sha256::digest_bytes(transcript_);
  const auto expected = compute_verify_data(keys_->master_secret,
                                            /*from_client=*/true,
                                            transcript_hash);
  if (!common::constant_time_equal(fin.verify_data, expected)) {
    return fail(AlertDescription::DecryptError);
  }
  transcript_ = common::concat({transcript_, msg.serialize()});

  std::vector<TlsRecord> out;
  // RFC 5077: issue a ticket to clients that advertised the extension
  // (pre-1.3 sessions only).
  if (config_.session_tickets && obs_.client_hello.has_value() &&
      negotiated_version_ != ProtocolVersion::Tls1_3 &&
      find_extension(obs_.client_hello->extensions,
                     ExtensionType::SessionTicket) != nullptr) {
    NewSessionTicket nst;
    nst.ticket = seal_ticket(ticket_key_, negotiated_suite_,
                             keys_->master_secret, config_.ticket_epoch);
    out.push_back(handshake_record(
        HandshakeMessage::wrap(HandshakeType::NewSessionTicket, nst)));
    obs_.ticket_issued = true;
  }

  Finished server_fin;
  server_fin.verify_data = compute_verify_data(
      keys_->master_secret, /*from_client=*/false, transcript_hash);

  state_ = State::Established;
  obs_.handshake_complete = true;
  if (obs::metrics_enabled()) {
    ServerMetrics::get().handshakes("full").inc();
  }
  out.push_back(handshake_record(
      HandshakeMessage::wrap(HandshakeType::Finished, server_fin)));
  return out;
}

std::vector<TlsRecord> TlsServer::handle_app_data(const TlsRecord& record) {
  const common::Bytes plaintext =
      recv_protection_->unprotect(record.payload);
  obs_.client_plaintext.insert(obs_.client_plaintext.end(), plaintext.begin(),
                               plaintext.end());

  common::Bytes response = response_payload_;
  if (response.empty()) response = common::to_bytes("HTTP/1.1 200 OK\r\n\r\n");
  return {TlsRecord{ContentType::ApplicationData,
                    std::min(negotiated_version_, ProtocolVersion::Tls1_2),
                    send_protection_->protect(response)}};
}

}  // namespace iotls::tls
