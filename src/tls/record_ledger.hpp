// Per-connection wire accounting, shared by both record schedulers.
//
// Extracted from Transport so the engine's Conduit (src/engine/) reports
// exactly the same metrics, span events, and close totals as the
// synchronous path — the note/close sequence is part of the determinism
// contract (trace output must be byte-identical across schedulers).
#pragma once

#include <cstddef>

#include "obs/trace.hpp"
#include "tls/record.hpp"

namespace iotls::tls {

/// Counts records/bytes per direction, feeds the transport metrics, and
/// emits `record`/`close` span events. One ledger per connection.
class RecordLedger {
 public:
  void set_span(obs::Span* span) { span_ = span; }
  [[nodiscard]] obs::Span* span() const { return span_; }

  /// Account one record on the wire (metrics counters; at TraceLevel::Full
  /// a `record` span event with direction/type/bytes/message).
  void note(bool client_to_server, const TlsRecord& record);

  /// Close the connection's books: per-connection histograms plus a
  /// `close` span event with the four totals. Idempotent.
  void close();

  [[nodiscard]] bool closed() const { return closed_; }

 private:
  obs::Span* span_ = nullptr;
  bool closed_ = false;
  std::size_t records_to_server_ = 0;
  std::size_t records_to_client_ = 0;
  std::size_t bytes_to_server_ = 0;
  std::size_t bytes_to_client_ = 0;
};

}  // namespace iotls::tls
