// Record-level I/O seam between the TLS client state machine and its
// scheduler.
//
// `TlsClient::connect_task` is written once, as a coroutine against this
// interface. Two implementations exist:
//
//   - `SyncRecordIo` (here) wraps a `Transport`: emit() delivers the record
//     to the server session immediately and record_ready() is always true,
//     so the coroutine never suspends — `common::run_sync` drives it to
//     completion in place. This is the historical one-connection-at-a-time
//     path, byte-identical by construction.
//   - `engine::Conduit` (src/engine/engine.hpp) queues emitted records in
//     the engine's record arena; `next_record` parks the coroutine until a
//     tick delivers the flight, letting one thread interleave thousands of
//     handshakes and batch their private-key operations.
//
// The awaiter contract: a coroutine may only suspend when the transport
// genuinely owes it a wire round-trip (record_ready() false). That keeps
// the synchronous path suspension-free and makes engine ticks deadlock-free
// (a parked connection always has an undelivered flight).
#pragma once

#include <coroutine>
#include <optional>

#include "obs/trace.hpp"
#include "tls/record.hpp"
#include "tls/transport.hpp"

namespace iotls::tls {

/// Scheduler-neutral record stream for one TLS connection.
class RecordIo {
 public:
  virtual ~RecordIo() = default;

  /// Queue one client->server record (observation taps fire immediately;
  /// delivery timing is the scheduler's).
  virtual void emit(const TlsRecord& record) = 0;

  /// True when take_record() can answer now: a server record is readable,
  /// or every emitted record has been delivered and the reply stream is
  /// known to be drained (take_record will report end-of-stream).
  [[nodiscard]] virtual bool record_ready() const = 0;

  /// Next server->client record; nullopt = stream drained. Only valid when
  /// record_ready() is true.
  virtual std::optional<TlsRecord> take_record() = 0;

  /// Park the awaiting coroutine until record_ready() flips true. The
  /// synchronous implementation must never be asked to park.
  virtual void park(std::coroutine_handle<> handle) = 0;

  /// Close the connection: flush undelivered records, emit the ledger's
  /// close event, and notify the server session.
  virtual void finish() = 0;

  /// Attach the connection's trace span (non-owning; may be null).
  virtual void attach_span(obs::Span* span) = 0;
};

/// Awaitable for the next server record; see RecordIo::park.
struct NextRecord {
  RecordIo& io;

  [[nodiscard]] bool await_ready() const { return io.record_ready(); }
  void await_suspend(std::coroutine_handle<> handle) { io.park(handle); }
  std::optional<TlsRecord> await_resume() { return io.take_record(); }
};

inline NextRecord next_record(RecordIo& io) { return NextRecord{io}; }

/// Synchronous RecordIo over a Transport: every emit is an immediate
/// delivery, so record_ready() is constantly true and connect_task runs
/// straight through without suspending.
class SyncRecordIo final : public RecordIo {
 public:
  explicit SyncRecordIo(Transport& transport) : transport_(transport) {}

  void emit(const TlsRecord& record) override { transport_.send(record); }
  [[nodiscard]] bool record_ready() const override { return true; }
  std::optional<TlsRecord> take_record() override {
    return transport_.receive();
  }
  void park(std::coroutine_handle<> /*handle*/) override {
    throw common::ProtocolError(
        "SyncRecordIo: synchronous connection tried to park");
  }
  void finish() override { transport_.close(); }
  void attach_span(obs::Span* span) override { transport_.set_span(span); }

 private:
  Transport& transport_;
};

}  // namespace iotls::tls
