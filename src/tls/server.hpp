// minitls server state machine.
//
// Real cloud endpoints and the interceptor are both instances of TlsServer:
// the interceptor is simply a server configured with a forged chain and,
// optionally, misbehaviour knobs (silent drop for IncompleteHandshake,
// version override for old-version negotiation probes).
#pragma once

#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "crypto/dh.hpp"
#include "tls/alert.hpp"
#include "tls/messages.hpp"
#include "tls/secrets.hpp"
#include "tls/transport.hpp"

namespace iotls::tls {

struct ServerConfig {
  std::vector<ProtocolVersion> versions = {ProtocolVersion::Tls1_2};
  /// Preference-ordered suites the server accepts.
  std::vector<std::uint16_t> cipher_suites = {
      TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
      TLS_RSA_WITH_AES_128_GCM_SHA256,
  };
  std::vector<x509::Certificate> chain;  // leaf first
  crypto::RsaKeyPair keys;               // leaf private key
  bool ocsp_staple_support = false;
  /// Issue RFC 5077 session tickets to clients that advertise the
  /// session_ticket extension, and accept them for abbreviated handshakes.
  bool session_tickets = true;
  /// Coarse ticket clock: tickets are stamped with this epoch at issue
  /// time and, when `ticket_lifetime_epochs` is non-zero, decline
  /// resumption once more than that many epochs have elapsed (or the
  /// stamp is from the future — a rolled-back clock). Expired tickets
  /// fall back silently to a full handshake, never an alert (RFC 5077
  /// §3.3); accepted resumptions re-issue a fresh ticket so an active
  /// session's lifetime slides.
  std::uint32_t ticket_epoch = 0;
  std::uint32_t ticket_lifetime_epochs = 0;  // 0 = tickets never expire

  // ---- misbehaviour knobs (used by the interceptor / probes) ----
  /// Respond with exactly this version regardless of negotiation
  /// (the Table 6 old-version probe). The client may still reject it.
  std::optional<ProtocolVersion> force_version;
  /// Select exactly this suite regardless of preference (still must be
  /// offered by the client unless force_suite_unconditionally).
  std::optional<std::uint16_t> force_suite;
  /// Read the ClientHello and never answer (IncompleteHandshake, Table 5).
  bool silent_after_client_hello = false;

  std::uint64_t seed = 1;
};

/// Outcome visible to the server side (used by interceptor reports).
struct ServerObservation {
  bool saw_client_hello = false;
  std::optional<ClientHello> client_hello;
  bool handshake_complete = false;
  /// The connection was resumed from a ticket (no Certificate sent).
  bool resumed = false;
  bool ticket_issued = false;
  /// Plaintext application data recovered from the client, if any —
  /// non-empty means the connection contents were readable (the paper's
  /// interception-success criterion).
  common::Bytes client_plaintext;
  std::optional<Alert> alert_received;
};

class TlsServer : public ServerSession {
 public:
  explicit TlsServer(ServerConfig config);

  std::vector<TlsRecord> on_record(const TlsRecord& record) override;

  [[nodiscard]] const ServerObservation& observation() const { return obs_; }

  /// Application payload to send in response to client data.
  void set_response_payload(common::Bytes payload) {
    response_payload_ = std::move(payload);
  }

 private:
  enum class State { ExpectClientHello, ExpectClientKeyExchange,
                     ExpectFinished, Established, Failed };

  std::vector<TlsRecord> fail(AlertDescription desc);
  std::vector<TlsRecord> handle_client_hello(const HandshakeMessage& msg);
  /// Abbreviated flight for a valid ticket; nullopt = proceed with the
  /// full handshake instead.
  std::optional<std::vector<TlsRecord>> try_resume(const ClientHello& hello);
  std::vector<TlsRecord> handle_client_key_exchange(
      const HandshakeMessage& msg);
  std::vector<TlsRecord> handle_finished(const HandshakeMessage& msg);
  std::vector<TlsRecord> handle_app_data(const TlsRecord& record);

  TlsRecord handshake_record(const HandshakeMessage& msg);

  ServerConfig config_;
  common::Rng rng_;
  State state_ = State::ExpectClientHello;
  ServerObservation obs_;

  ProtocolVersion negotiated_version_ = ProtocolVersion::Tls1_2;
  std::uint16_t negotiated_suite_ = 0;
  Random32 client_random_{};
  Random32 server_random_{};
  std::optional<crypto::DhKeyPair> dh_keys_;
  crypto::DhGroup dh_group_ = crypto::DhGroup::X25519;
  common::Bytes transcript_;
  common::Bytes ticket_key_;
  bool resumed_ = false;
  common::Bytes resumed_transcript_hash_;
  std::optional<SessionKeys> keys_;
  std::unique_ptr<RecordProtection> recv_protection_;
  std::unique_ptr<RecordProtection> send_protection_;
  common::Bytes response_payload_;
};

}  // namespace iotls::tls
