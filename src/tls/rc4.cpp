#include "tls/rc4.hpp"

#include <array>

namespace iotls::tls {

common::Bytes rc4_xor(common::BytesView key, common::BytesView data) {
  if (key.empty() || key.size() > 256) {
    throw common::CryptoError("rc4: key must be 1..256 bytes");
  }
  std::array<std::uint8_t, 256> s{};
  for (int i = 0; i < 256; ++i) s[i] = static_cast<std::uint8_t>(i);
  std::uint8_t j = 0;
  for (int i = 0; i < 256; ++i) {
    j = static_cast<std::uint8_t>(j + s[i] + key[i % key.size()]);
    std::swap(s[i], s[j]);
  }
  common::Bytes out(data.begin(), data.end());
  std::uint8_t x = 0, y = 0;
  for (auto& byte : out) {
    x = static_cast<std::uint8_t>(x + 1);
    y = static_cast<std::uint8_t>(y + s[x]);
    std::swap(s[x], s[y]);
    byte ^= s[static_cast<std::uint8_t>(s[x] + s[y])];
  }
  return out;
}

}  // namespace iotls::tls
