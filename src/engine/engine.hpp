// Event-driven batched session engine.
//
// One Engine multiplexes thousands of in-flight TLS connections on a
// single thread. Each connection is a coroutine (`common::Task`) written
// against the `tls::RecordIo` seam; the engine's implementation of that
// seam, `Conduit`, queues client flights in a flat per-engine record arena
// instead of per-connection inbox vectors, and parks the coroutine until
// the next tick delivers them.
//
// A tick has two phases, both in conduit-id order (ids are handed out in
// creation order, so the schedule is a pure function of the inputs —
// determinism does not depend on timing):
//
//   Phase A (deliver): every queued client->server record is handed to its
//     server session; replies land in the conduit's arena inbox. Because
//     all deliveries in a tick share one `crypto::CryptoBatchScope`, the
//     tick's RSA private operations and DH exponentiations all hit warm
//     Montgomery contexts (crypto/mont64.hpp) — the batching win that makes
//     interleaving pay on a single core.
//   Phase B (resume): every parked coroutine whose awaited record is ready
//     resumes, typically emitting its next flight (served next tick).
//
// The schedule is deadlock-free by construction: the RecordIo contract
// says a coroutine only parks when it has an undelivered flight queued, so
// a tick that delivers nothing and resumes nothing means every chain is
// complete. Output parity: crypto batching computes bit-identical values,
// the shared RecordLedger emits identical span/metric sequences per
// connection, and drivers merge per-device results in catalog order — so
// tables, traces, and store artifacts are byte-identical to the
// synchronous path (tests/engine/ and bench_engine verify this).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/task.hpp"
#include "tls/record_io.hpp"
#include "tls/record_ledger.hpp"
#include "tls/transport.hpp"

namespace iotls::engine {

class Engine;

/// Arena-backed RecordIo for one connection multiplexed by an Engine.
/// Created via Engine::open_conduit from inside a chain task.
class Conduit final : public tls::RecordIo {
 public:
  using Tap = tls::Transport::Tap;

  void add_tap(Tap tap) { taps_.push_back(std::move(tap)); }

  void emit(const tls::TlsRecord& record) override;
  [[nodiscard]] bool record_ready() const override;
  std::optional<tls::TlsRecord> take_record() override;
  void park(std::coroutine_handle<> handle) override;
  void finish() override;
  void attach_span(obs::Span* span) override { ledger_.set_span(span); }

 private:
  friend class Engine;

  Engine* engine_ = nullptr;
  std::size_t id_ = 0;
  std::shared_ptr<tls::ServerSession> session_;
  std::vector<std::uint32_t> outbox_;  // arena slots, client->server
  std::vector<std::uint32_t> inbox_;   // arena slots, server->client
  std::size_t inbox_pos_ = 0;
  std::vector<Tap> taps_;
  tls::RecordLedger ledger_;
  std::coroutine_handle<> waiting_;
  bool closed_ = false;
};

/// Single-threaded readiness loop over conduits and chain tasks. A chain
/// is a Task<void> that opens conduits (sequentially or not) and completes
/// when its work is done — e.g. one device's whole connection schedule.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Create a conduit for one connection against `session`. Valid while
  /// the engine lives; typically called inside a chain task immediately
  /// before `co_await client.connect_task(conduit, ...)`.
  Conduit& open_conduit(std::shared_ptr<tls::ServerSession> session);

  /// Register a chain; ownership transfers to the engine. Chains start
  /// running (to their first suspension) when run() is called.
  void add_chain(common::Task<void> chain);

  /// Drive all chains to completion. Rethrows the first failed chain's
  /// exception (in registration order) after every chain has settled.
  void run();

  /// Connections currently open (conduits created and not yet finished).
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }

  /// Ticks executed by the last run().
  [[nodiscard]] std::size_t ticks() const { return ticks_; }

  /// High-water arena occupancy (records resident at once) across the
  /// engine's lifetime — stays near the per-tick flight volume, not the
  /// total record count, when slot recycling works.
  [[nodiscard]] std::size_t arena_peak() const { return arena_peak_; }

 private:
  friend class Conduit;

  struct Chain {
    common::Task<void> task;
    bool started = false;
  };

  /// One deliver/resume round; returns whether anything progressed.
  bool tick();

  std::uint32_t arena_acquire(const tls::TlsRecord& record);
  void arena_release(std::uint32_t slot);

  std::deque<std::unique_ptr<Conduit>> conduits_;
  std::vector<Chain> chains_;
  std::vector<tls::TlsRecord> arena_;   // flat record storage, all conduits
  std::vector<std::uint32_t> free_slots_;
  std::size_t arena_peak_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t ticks_ = 0;
  std::size_t finished_this_tick_ = 0;
  bool running_ = false;
};

}  // namespace iotls::engine
