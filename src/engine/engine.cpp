#include "engine/engine.hpp"

#include <string>
#include <utility>

#include "crypto/batch.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace iotls::engine {

namespace {

struct EngineMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  obs::Gauge& in_flight = reg.gauge(
      "iotls_engine_in_flight",
      "TLS connections currently multiplexed by a session engine");
  obs::Gauge& in_flight_peak = reg.gauge(
      "iotls_engine_in_flight_peak",
      "High-water mark of connections multiplexed by a session engine");
  obs::Histogram& handshakes_per_tick = reg.histogram(
      "iotls_engine_handshakes_per_tick",
      "Connections retired per engine tick",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096});
  obs::Counter& ticks = reg.counter(
      "iotls_engine_ticks_total", "Engine deliver/resume rounds executed");

  static EngineMetrics& get() {
    static EngineMetrics metrics;
    return metrics;
  }
};

}  // namespace

// ---------------------------------------------------------------- Conduit

void Conduit::emit(const tls::TlsRecord& record) {
  if (closed_) {
    throw common::ProtocolError("emit on closed conduit");
  }
  // Accounting and taps fire at emission, exactly like the synchronous
  // transport — only delivery timing belongs to the engine.
  ledger_.note(true, record);
  for (const auto& tap : taps_) tap(true, record);
  outbox_.push_back(engine_->arena_acquire(record));
}

bool Conduit::record_ready() const {
  // Readable reply, or everything delivered and the stream drained (the
  // next take_record reports end-of-stream, as a drained synchronous
  // transport would).
  return inbox_pos_ < inbox_.size() || outbox_.empty();
}

std::optional<tls::TlsRecord> Conduit::take_record() {
  if (inbox_pos_ >= inbox_.size()) {
    inbox_.clear();
    inbox_pos_ = 0;
    return std::nullopt;
  }
  const std::uint32_t slot = inbox_[inbox_pos_++];
  tls::TlsRecord record = std::move(engine_->arena_[slot]);
  engine_->arena_release(slot);
  if (inbox_pos_ >= inbox_.size()) {
    inbox_.clear();
    inbox_pos_ = 0;
  }
  return record;
}

void Conduit::park(std::coroutine_handle<> handle) { waiting_ = handle; }

void Conduit::finish() {
  if (closed_) return;
  // Flush-at-close: a final flight (alert, close-notify-equivalent) must
  // still reach the server, and its replies must still be accounted, just
  // as the synchronous transport delivers every send before close().
  for (const std::uint32_t slot : outbox_) {
    const std::vector<tls::TlsRecord> replies =
        session_->on_record(engine_->arena_[slot]);
    engine_->arena_release(slot);
    for (const auto& reply : replies) {
      ledger_.note(false, reply);
      for (const auto& tap : taps_) tap(false, reply);
    }
  }
  outbox_.clear();
  for (std::size_t i = inbox_pos_; i < inbox_.size(); ++i) {
    engine_->arena_release(inbox_[i]);
  }
  inbox_.clear();
  inbox_pos_ = 0;
  closed_ = true;
  ledger_.close();
  if (session_ != nullptr) session_->on_close();
  --engine_->in_flight_;
  ++engine_->finished_this_tick_;
  if (obs::metrics_enabled()) {
    EngineMetrics::get().in_flight.set(
        static_cast<double>(engine_->in_flight_));
  }
}

// ----------------------------------------------------------------- Engine

Conduit& Engine::open_conduit(std::shared_ptr<tls::ServerSession> session) {
  auto conduit = std::make_unique<Conduit>();
  conduit->engine_ = this;
  conduit->id_ = conduits_.size();
  conduit->session_ = std::move(session);
  conduits_.push_back(std::move(conduit));
  ++in_flight_;
  if (obs::metrics_enabled()) {
    auto& metrics = EngineMetrics::get();
    metrics.in_flight.set(static_cast<double>(in_flight_));
    metrics.in_flight_peak.set_max(static_cast<double>(in_flight_));
  }
  return *conduits_.back();
}

void Engine::add_chain(common::Task<void> chain) {
  if (running_) {
    throw common::ProtocolError("add_chain on a running engine");
  }
  chains_.push_back(Chain{std::move(chain), false});
}

std::uint32_t Engine::arena_acquire(const tls::TlsRecord& record) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    arena_[slot] = record;  // reuses the retired record's payload capacity
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(arena_.size());
  arena_.push_back(record);
  if (arena_.size() > arena_peak_) arena_peak_ = arena_.size();
  return slot;
}

void Engine::arena_release(std::uint32_t slot) { free_slots_.push_back(slot); }

bool Engine::tick() {
  const obs::ProfileZone zone("engine/tick");
  // One batch scope per tick: every private-key op and DH exponentiation
  // delivered below shares warm Mont64 contexts (bit-identical results).
  const crypto::CryptoBatchScope batch;
  ++ticks_;
  finished_this_tick_ = 0;
  bool progressed = false;

  // Phase 0 (first tick only): run each chain to its first suspension.
  for (auto& chain : chains_) {
    if (chain.started) continue;
    chain.started = true;
    chain.task.start();
    progressed = true;
  }

  // Phase A: deliver queued flights, in conduit-id order.
  for (std::size_t i = 0; i < conduits_.size(); ++i) {
    Conduit& conduit = *conduits_[i];
    if (conduit.closed_ || conduit.outbox_.empty()) continue;
    progressed = true;
    for (const std::uint32_t slot : conduit.outbox_) {
      std::vector<tls::TlsRecord> replies =
          conduit.session_->on_record(arena_[slot]);
      arena_release(slot);
      for (auto& reply : replies) {
        conduit.ledger_.note(false, reply);
        for (const auto& tap : conduit.taps_) tap(false, reply);
        conduit.inbox_.push_back(arena_acquire(reply));
      }
    }
    conduit.outbox_.clear();
  }

  // Phase B: resume parked connections whose awaited record is ready, in
  // conduit-id order. A resumed coroutine may finish its conduit, emit a
  // new flight (served next tick), or open further conduits.
  for (std::size_t i = 0; i < conduits_.size(); ++i) {
    Conduit& conduit = *conduits_[i];
    if (conduit.waiting_ == nullptr || !conduit.record_ready()) continue;
    progressed = true;
    const std::coroutine_handle<> handle =
        std::exchange(conduit.waiting_, nullptr);
    handle.resume();
  }

  if (obs::metrics_enabled()) {
    auto& metrics = EngineMetrics::get();
    metrics.ticks.inc();
    metrics.handshakes_per_tick.observe(
        static_cast<double>(finished_this_tick_));
  }
  return progressed;
}

void Engine::run() {
  if (running_) {
    throw common::ProtocolError("engine run() is not reentrant");
  }
  running_ = true;
  ticks_ = 0;
  const auto all_done = [this] {
    for (const auto& chain : chains_) {
      if (!chain.started || !chain.task.done()) return false;
    }
    return true;
  };
  while (!all_done()) {
    if (!tick()) {
      running_ = false;
      throw common::ProtocolError(
          "session engine stalled: chains pending but no conduit progress");
    }
  }
  running_ = false;
  // Surface the first failed chain's error, in registration order, after
  // every chain has settled — mirroring parallel_map's contract.
  std::exception_ptr first_error;
  for (auto& chain : chains_) {
    try {
      chain.task.take_result();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  chains_.clear();
  conduits_.clear();
  arena_.clear();
  free_slots_.clear();
  in_flight_ = 0;
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace iotls::engine
