// engine::map — the drop-in fan-out that puts a session engine under an
// existing `threads` knob.
//
// `factory(item, Engine*)` builds the item's chain task. With the engine
// off, each task runs synchronously (run_sync; the factory sees a null
// engine and uses plain transports) under common::parallel_map — the
// historical path, byte-for-byte. With the engine on, items are split
// into contiguous per-worker chunks; each worker drives ONE engine that
// multiplexes its whole chunk, so `threads = 1` means one thread
// interleaving every item. Results land in input order either way, and
// the lowest-index failure is rethrown — the same determinism contract as
// parallel_map (src/common/pool.hpp).
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/pool.hpp"
#include "common/task.hpp"
#include "engine/engine.hpp"

namespace iotls::engine {

namespace detail {

template <typename R>
common::Task<void> fill_slot(common::Task<R> task, std::optional<R>& slot) {
  slot.emplace(co_await std::move(task));
}

}  // namespace detail

/// Map `factory(item, engine)` over items. `use_engine` selects the
/// scheduler; `threads` keeps its parallel_map semantics (0 = hardware).
template <typename Item, typename Factory>
auto map(std::size_t threads, bool use_engine,
         const std::vector<Item>& items, Factory&& factory) {
  using R = decltype(factory(items[0], static_cast<Engine*>(nullptr))
                         .take_result());
  if (!use_engine) {
    return common::parallel_map(
        threads, items, [&factory](const Item& item) {
          return common::run_sync(factory(item, static_cast<Engine*>(nullptr)));
        });
  }

  std::vector<std::optional<R>> slots(items.size());
  const std::size_t workers =
      std::min(common::resolve_threads(threads),
               items.empty() ? std::size_t{1} : items.size());
  // Contiguous chunks: worker w owns [w*per + min(w, extra) ...), so the
  // lowest-index failure lives in the lowest failing worker — preserving
  // parallel_map's deterministic rethrow.
  const std::size_t per = items.empty() ? 0 : items.size() / workers;
  const std::size_t extra = items.empty() ? 0 : items.size() % workers;
  common::parallel_for(threads, workers, [&](std::size_t w) {
    const std::size_t begin = w * per + std::min(w, extra);
    const std::size_t end = begin + per + (w < extra ? 1 : 0);
    Engine engine;
    for (std::size_t i = begin; i < end; ++i) {
      engine.add_chain(detail::fill_slot(factory(items[i], &engine),
                                         slots[i]));
    }
    engine.run();
  });

  std::vector<R> out;
  out.reserve(items.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace iotls::engine
