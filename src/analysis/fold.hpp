// Out-of-core dataset folding.
//
// Every longitudinal/summary/revocation/fingerprint aggregate in this
// module is a *commutative integer accumulation* keyed by (device, month,
// bucket): per-shard partial folds merge to exactly the integers a single
// in-memory pass produces, so the derived doubles — and the rendered
// figures — are byte-identical whether a dataset is folded in memory, or
// streamed shard by shard across any number of threads (DESIGN.md §11's
// parity invariant).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/simtime.hpp"
#include "fingerprint/fingerprint.hpp"
#include "store/reader.hpp"
#include "testbed/longitudinal.hpp"
#include "tls/version.hpp"

namespace iotls::analysis {

/// Weighted per-month counts for one device over a month window — the
/// integer substrate of Figs 1-3 (fractions are derived at render time).
struct MonthTallies {
  std::vector<std::uint64_t> total;
  std::map<tls::VersionBucket, std::vector<std::uint64_t>> adv_bucket;
  std::map<tls::VersionBucket, std::vector<std::uint64_t>> est_bucket;
  std::vector<std::uint64_t> insecure_adv, insecure_est;
  std::vector<std::uint64_t> strong_adv, strong_est;
  std::vector<std::uint64_t> established_total;

  explicit MonthTallies(std::size_t months);

  /// Accumulate `count` connections of `rec`; `base` is the window's first
  /// month index. Out-of-window records are ignored.
  void add(const net::HandshakeRecord& rec, std::uint64_t count, int base);

  /// Pointwise sum (commutative, associative).
  void merge(const MonthTallies& other);
};

struct DatasetFold {
  std::vector<common::Month> months;

  /// Per-device month tallies (window-filtered, like the figures).
  std::map<std::string, MonthTallies> tallies;

  // §5.1 summary inputs (whole dataset, not window-filtered — matching the
  // in-memory summarize()).
  std::uint64_t total_connections = 0;
  std::map<std::string, std::uint64_t> connections_per_device;
  std::uint64_t tls13_advertising = 0;
  std::uint64_t rc4_advertising = 0;
  std::map<std::string, std::set<tls::ProtocolVersion>> max_versions;
  std::set<std::string> null_anon_devices;

  // Table 8 input: devices whose traffic requests OCSP stapling.
  std::set<std::string> stapling_devices;

  /// §5.3 passive variant: per-device fingerprint → weighted use count.
  /// Only populated when FoldOptions::fingerprints is set (hashing every
  /// group is the one non-trivial fold cost).
  std::map<std::string,
           std::map<std::string,
                    std::pair<fingerprint::Fingerprint, std::uint64_t>>>
      fingerprint_uses;

  void add(const testbed::PassiveConnectionGroup& group, bool fingerprints);
  void merge(const DatasetFold& other);

  /// Devices seen, sorted (identical to PassiveDataset::devices()).
  [[nodiscard]] std::vector<std::string> devices() const;
};

struct FoldOptions {
  /// Worker threads for the per-shard fan-out (0 = hardware concurrency,
  /// 1 = serial). The fold is identical for every value.
  std::size_t threads = 0;
  /// Also tally fingerprints (needed only by the fingerprint study).
  bool fingerprints = false;
};

/// Single in-memory pass.
DatasetFold fold_dataset(const testbed::PassiveDataset& dataset,
                         const std::vector<common::Month>& months,
                         const FoldOptions& options = FoldOptions{});

/// Out-of-core: fold each shard independently (parallel over shards, one
/// block resident per worker), then merge the partials in shard order.
DatasetFold fold_store(const store::DatasetCursor& cursor,
                       const std::vector<common::Month>& months,
                       const FoldOptions& options = FoldOptions{});

/// Same fold on the columnar scan path (DESIGN.md §12): shards are
/// frame-walk indexed and decoded through ProjectedBlockCursor, which
/// materializes only the list columns the fold reads — advertised versions
/// and suites; the fingerprint lists stay undecoded unless
/// FoldOptions::fingerprints asks for them. Byte-identical to fold_store
/// on every store (with or without block stats) at every thread count.
DatasetFold fold_store_scan(const store::DatasetCursor& cursor,
                            const std::vector<common::Month>& months,
                            const FoldOptions& options = FoldOptions{});

}  // namespace iotls::analysis
