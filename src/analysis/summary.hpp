// §5.1 headline numbers and the prior-work comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/fold.hpp"
#include "testbed/longitudinal.hpp"

namespace iotls::analysis {

struct StudySummary {
  std::uint64_t total_connections = 0;      // paper: ≈17M
  std::uint64_t mean_per_device = 0;        // paper: ≈422K
  std::uint64_t median_per_device = 0;      // paper: ≈138K
  int device_count = 0;
  int tls12_exclusive_devices = 0;          // paper: 28/40
  int devices_advertising_multiple_max_versions = 0;  // paper: 20
  /// Fraction of connections advertising TLS 1.3 (prior-work comparison:
  /// ≈17% here vs ≈60% of web clients in Holz et al.).
  double tls13_advertising_fraction = 0.0;
  /// Fraction of connections advertising RC4 (≈60% here vs ≈10% in
  /// Kotzias et al.).
  double rc4_advertising_fraction = 0.0;
  /// Devices advertising NULL/ANON suites (paper: none, ever).
  int null_anon_advertising_devices = 0;
};

StudySummary summarize(const testbed::PassiveDataset& dataset);

/// Shared reduction both the in-memory and the streamed paths go through.
StudySummary summarize(const DatasetFold& fold);

/// Out-of-core overload: stream the shards (parallel), never materializing
/// the dataset. Byte-identical to the in-memory summary.
StudySummary summarize(const store::DatasetCursor& cursor,
                       std::size_t threads = 0);

std::string render_summary(const StudySummary& summary);

}  // namespace iotls::analysis
