// Fig 4: for deprecated root certificates found on devices, the year each
// was removed from the reference platforms (latest removal wins).
#pragma once

#include <map>
#include <string>

#include "pki/universe.hpp"
#include "probe/prober.hpp"

namespace iotls::analysis {

struct StalenessReport {
  /// device → (removal year → number of deprecated roots found).
  std::map<std::string, std::map<int, int>> per_device;

  [[nodiscard]] int earliest_year(const std::string& device) const;
  [[nodiscard]] int total_found(const std::string& device) const;
};

/// Build from root-store exploration verdicts over the deprecated set.
StalenessReport staleness_report(
    const pki::CaUniverse& universe,
    const std::map<std::string, probe::ExplorationResult>& explorations);

/// Text rendering (year histogram per device).
std::string render_staleness(const StalenessReport& report);

}  // namespace iotls::analysis
