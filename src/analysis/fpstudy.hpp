// Fig 5 / §5.3: the fingerprint diversity study.
//
// Fingerprints come from the *active snapshot* (one clean boot per device,
// §5.3: "we only study TLS traffic from active experiments"), are matched
// against the reference application database, and assembled into the
// device/application sharing graph.
#pragma once

#include <map>
#include <string>

#include "analysis/fold.hpp"
#include "fingerprint/database.hpp"
#include "fingerprint/graph.hpp"
#include "testbed/testbed.hpp"

namespace iotls::analysis {

struct FingerprintStudy {
  fingerprint::SharingGraph graph;
  /// device → number of distinct fingerprints seen at boot.
  std::map<std::string, int> fingerprints_per_device;

  [[nodiscard]] int single_instance_devices() const;  // paper: 18/32
  [[nodiscard]] int multi_instance_devices() const;   // paper: 14/32
  /// Devices sharing ≥1 fingerprint with another device or application.
  [[nodiscard]] int sharing_devices() const;          // paper: 19
};

/// `threads` fans the per-device boots out over a worker pool (0 =
/// hardware concurrency, 1 = serial); `use_engine` multiplexes the boots
/// through per-worker session engines. The study is identical either way.
FingerprintStudy run_fingerprint_study(testbed::Testbed& testbed,
                                       std::size_t threads = 0,
                                       bool use_engine = false);

/// Passive variants of §5.3: fingerprints extracted from the captured
/// ClientHellos of the longitudinal dataset, weighted by connection
/// counts. The three overloads (in-memory, pre-folded, streamed from a
/// capture store) produce identical studies.
FingerprintStudy passive_fingerprint_study(
    const testbed::PassiveDataset& dataset);
FingerprintStudy passive_fingerprint_study(const DatasetFold& fold);
FingerprintStudy passive_fingerprint_study(const store::DatasetCursor& cursor,
                                           std::size_t threads = 0);

/// Text rendering of the sharing graph (cluster list + edges).
std::string render_sharing_graph(const FingerprintStudy& study);

}  // namespace iotls::analysis
