#include "analysis/advisor.hpp"

#include <algorithm>
#include <set>

namespace iotls::analysis {

std::string advisory_name(AdvisoryKind kind) {
  switch (kind) {
    case AdvisoryKind::DeprecatedVersionAdvertised:
      return "deprecated-version-advertised";
    case AdvisoryKind::OldVersionAccepted: return "old-version-accepted";
    case AdvisoryKind::InsecureSuiteAdvertised:
      return "insecure-suite-advertised";
    case AdvisoryKind::NullAnonSuiteAdvertised:
      return "null-anon-suite-advertised";
    case AdvisoryKind::NoForwardSecrecy: return "no-forward-secrecy";
    case AdvisoryKind::MissingSni: return "missing-sni";
    case AdvisoryKind::NoOcspStapleRequest: return "no-ocsp-staple-request";
    case AdvisoryKind::NoTls13Support: return "no-tls13-support";
  }
  return "unknown";
}

std::string advisory_remediation(AdvisoryKind kind) {
  switch (kind) {
    case AdvisoryKind::DeprecatedVersionAdvertised:
      return "raise the maximum advertised version to TLS 1.2 or later";
    case AdvisoryKind::OldVersionAccepted:
      return "disable negotiation of TLS 1.0/1.1 entirely (Table 6 risk)";
    case AdvisoryKind::InsecureSuiteAdvertised:
      return "remove DES/3DES/RC4/EXPORT suites from the offer (NSA/OWASP "
             "guidance cited in §2)";
    case AdvisoryKind::NullAnonSuiteAdvertised:
      return "remove NULL/ANON suites — they provide no protection";
    case AdvisoryKind::NoForwardSecrecy:
      return "offer ECDHE/DHE suites first for perfect forward secrecy";
    case AdvisoryKind::MissingSni:
      return "send server_name so endpoints can serve correct certificates";
    case AdvisoryKind::NoOcspStapleRequest:
      return "request stapled OCSP responses (status_request)";
    case AdvisoryKind::NoTls13Support:
      return "adopt TLS 1.3 (§5.1: devices rarely upgrade over time)";
  }
  return "";
}

std::vector<Advisory> audit_client_hello(const tls::ClientHello& hello) {
  std::vector<Advisory> advisories;
  const auto versions = hello.advertised_versions();

  if (hello.max_advertised_version() < tls::ProtocolVersion::Tls1_2) {
    advisories.push_back({AdvisoryKind::DeprecatedVersionAdvertised,
                          "maximum advertised version is " +
                              tls::version_name(hello.max_advertised_version())});
  } else if (std::any_of(versions.begin(), versions.end(),
                         tls::is_deprecated)) {
    advisories.push_back({AdvisoryKind::OldVersionAccepted,
                          "pre-1.2 versions still negotiable"});
  }

  std::string insecure;
  std::string null_anon;
  for (const auto id : hello.cipher_suites) {
    if (tls::suite_is_insecure(id)) {
      if (!insecure.empty()) insecure += ", ";
      insecure += tls::suite_name(id);
    }
    if (tls::suite_is_null_or_anon(id)) {
      if (!null_anon.empty()) null_anon += ", ";
      null_anon += tls::suite_name(id);
    }
  }
  if (!insecure.empty()) {
    advisories.push_back({AdvisoryKind::InsecureSuiteAdvertised, insecure});
  }
  if (!null_anon.empty()) {
    advisories.push_back({AdvisoryKind::NullAnonSuiteAdvertised, null_anon});
  }
  if (!hello.advertises_strong_suite()) {
    advisories.push_back({AdvisoryKind::NoForwardSecrecy,
                          "no DHE/ECDHE suite offered"});
  }
  if (!hello.sni().has_value()) {
    advisories.push_back({AdvisoryKind::MissingSni, ""});
  }
  if (!hello.requests_ocsp_stapling()) {
    advisories.push_back({AdvisoryKind::NoOcspStapleRequest, ""});
  }
  if (hello.max_advertised_version() < tls::ProtocolVersion::Tls1_3) {
    advisories.push_back({AdvisoryKind::NoTls13Support, ""});
  }
  return advisories;
}

int DeviceAuditReport::advisory_count() const {
  int total = 0;
  for (const auto& [dest, advisories] : per_destination) {
    total += static_cast<int>(advisories.size());
  }
  return total;
}

std::vector<AdvisoryKind> DeviceAuditReport::distinct_kinds() const {
  std::set<AdvisoryKind> kinds;
  for (const auto& [dest, advisories] : per_destination) {
    for (const auto& advisory : advisories) kinds.insert(advisory.kind);
  }
  return {kinds.begin(), kinds.end()};
}

DeviceAuditReport audit_device(testbed::Testbed& testbed,
                               const std::string& device_name) {
  DeviceAuditReport report;
  report.device = device_name;

  auto& runtime = testbed.runtime(device_name);
  runtime.reset_failure_state();
  const auto boot =
      runtime.boot(testbed.date(), /*include_intermittent=*/true);
  for (const auto& conn : boot.connections) {
    auto advisories = audit_client_hello(conn.result.hello);
    if (!advisories.empty()) {
      report.per_destination[conn.destination->hostname] =
          std::move(advisories);
    }
  }
  return report;
}

std::string render_audit(const DeviceAuditReport& report) {
  std::string out = "audit: " + report.device + " — " +
                    std::to_string(report.advisory_count()) +
                    " advisory(ies)\n";
  for (const auto& [dest, advisories] : report.per_destination) {
    out += "  " + dest + "\n";
    for (const auto& advisory : advisories) {
      out += "    [" + advisory_name(advisory.kind) + "] ";
      if (!advisory.detail.empty()) out += advisory.detail + " — ";
      out += advisory_remediation(advisory.kind) + "\n";
    }
  }
  return out;
}

}  // namespace iotls::analysis
