// The §6 "auditing service": devices connect to an audit endpoint at
// regular intervals (e.g. every reboot); the service inspects the offered
// handshake parameters and reports security advisories to the
// manufacturer. This module is that service, applied to ClientHellos.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "testbed/testbed.hpp"
#include "tls/messages.hpp"

namespace iotls::analysis {

enum class AdvisoryKind {
  DeprecatedVersionAdvertised,  // max below TLS 1.2
  OldVersionAccepted,           // supports pre-1.2 versions it could drop
  InsecureSuiteAdvertised,      // DES/3DES/RC4/EXPORT offered
  NullAnonSuiteAdvertised,      // no-auth/no-crypto suites offered
  NoForwardSecrecy,             // no DHE/ECDHE suite offered
  MissingSni,                   // no server_name extension
  NoOcspStapleRequest,          // no status_request extension
  NoTls13Support,               // modern versions not yet adopted
};

std::string advisory_name(AdvisoryKind kind);
std::string advisory_remediation(AdvisoryKind kind);

struct Advisory {
  AdvisoryKind kind = AdvisoryKind::InsecureSuiteAdvertised;
  std::string detail;  // e.g. the offending suite names
};

/// Audit a single ClientHello (the per-connection primitive).
std::vector<Advisory> audit_client_hello(const tls::ClientHello& hello);

/// Per-device report: every advisory seen across a boot's connections,
/// keyed by destination.
struct DeviceAuditReport {
  std::string device;
  std::map<std::string, std::vector<Advisory>> per_destination;

  [[nodiscard]] int advisory_count() const;
  [[nodiscard]] bool clean() const { return advisory_count() == 0; }
  [[nodiscard]] std::vector<AdvisoryKind> distinct_kinds() const;
};

/// Boot the device through its smart plug and audit every connection —
/// §6's "once every reboot" cadence.
DeviceAuditReport audit_device(testbed::Testbed& testbed,
                               const std::string& device_name);

std::string render_audit(const DeviceAuditReport& report);

}  // namespace iotls::analysis
