#include "analysis/staleness.hpp"

#include <cstdio>

namespace iotls::analysis {

int StalenessReport::earliest_year(const std::string& device) const {
  const auto it = per_device.find(device);
  if (it == per_device.end() || it->second.empty()) return 0;
  return it->second.begin()->first;
}

int StalenessReport::total_found(const std::string& device) const {
  const auto it = per_device.find(device);
  if (it == per_device.end()) return 0;
  int total = 0;
  for (const auto& [year, count] : it->second) total += count;
  return total;
}

StalenessReport staleness_report(
    const pki::CaUniverse& universe,
    const std::map<std::string, probe::ExplorationResult>& explorations) {
  StalenessReport report;
  for (const auto& [device, result] : explorations) {
    auto& years = report.per_device[device];
    for (const auto& [ca_name, verdict] : result.verdicts) {
      if (verdict != probe::Verdict::Present) continue;
      // Fig 4 uses the *latest* removal year across platforms.
      const auto year = pki::latest_removal_year(universe.histories(),
                                                 ca_name);
      if (year.has_value()) ++years[*year];
    }
  }
  return report;
}

std::string render_staleness(const StalenessReport& report) {
  // Collect the year axis.
  std::set<int> years;
  for (const auto& [device, hist] : report.per_device) {
    for (const auto& [year, count] : hist) years.insert(year);
  }

  std::string out = "device                ";
  for (const int year : years) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%5d", year);
    out += buf;
  }
  out += "\n";
  for (const auto& [device, hist] : report.per_device) {
    std::string name = device;
    name.resize(22, ' ');
    out += name;
    for (const int year : years) {
      const auto it = hist.find(year);
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%5d", it == hist.end() ? 0 : it->second);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace iotls::analysis
