#include "analysis/fold.hpp"

#include <algorithm>

#include "common/pool.hpp"
#include "tls/ciphersuite.hpp"

namespace iotls::analysis {

MonthTallies::MonthTallies(std::size_t months) {
  total.assign(months, 0);
  insecure_adv.assign(months, 0);
  insecure_est.assign(months, 0);
  strong_adv.assign(months, 0);
  strong_est.assign(months, 0);
  established_total.assign(months, 0);
  for (const auto bucket :
       {tls::VersionBucket::Tls13, tls::VersionBucket::Tls12,
        tls::VersionBucket::Older}) {
    adv_bucket[bucket].assign(months, 0);
    est_bucket[bucket].assign(months, 0);
  }
}

void MonthTallies::add(const net::HandshakeRecord& rec, std::uint64_t count,
                       int base) {
  const int idx = rec.month.index() - base;
  if (idx < 0 || idx >= static_cast<int>(total.size())) return;

  total[idx] += count;
  if (!rec.advertised_versions.empty()) {
    adv_bucket[tls::bucket_of(rec.max_advertised_version())][idx] += count;
  }
  if (rec.advertises_insecure_suite()) insecure_adv[idx] += count;
  if (rec.advertises_strong_suite()) strong_adv[idx] += count;

  if (rec.established_version.has_value()) {
    established_total[idx] += count;
    est_bucket[tls::bucket_of(*rec.established_version)][idx] += count;
    if (rec.established_insecure_suite()) insecure_est[idx] += count;
    if (rec.established_strong_suite()) strong_est[idx] += count;
  }
}

namespace {

void merge_counts(std::vector<std::uint64_t>* into,
                  const std::vector<std::uint64_t>& from) {
  for (std::size_t i = 0; i < into->size(); ++i) (*into)[i] += from[i];
}

}  // namespace

void MonthTallies::merge(const MonthTallies& other) {
  merge_counts(&total, other.total);
  merge_counts(&insecure_adv, other.insecure_adv);
  merge_counts(&insecure_est, other.insecure_est);
  merge_counts(&strong_adv, other.strong_adv);
  merge_counts(&strong_est, other.strong_est);
  merge_counts(&established_total, other.established_total);
  for (auto& [bucket, counts] : adv_bucket) {
    merge_counts(&counts, other.adv_bucket.at(bucket));
  }
  for (auto& [bucket, counts] : est_bucket) {
    merge_counts(&counts, other.est_bucket.at(bucket));
  }
}

void DatasetFold::add(const testbed::PassiveConnectionGroup& group,
                      bool fingerprints) {
  const auto& rec = group.record;
  const std::uint64_t n = group.count;
  const int base = months.empty() ? 0 : months.front().index();

  tallies.try_emplace(rec.device, months.size());
  tallies.at(rec.device).add(rec, n, base);

  total_connections += n;
  connections_per_device[rec.device] += n;
  if (!rec.advertised_versions.empty()) {
    const auto max = rec.max_advertised_version();
    max_versions[rec.device].insert(max);
    if (max == tls::ProtocolVersion::Tls1_3) tls13_advertising += n;
  }
  const bool has_rc4 = std::any_of(
      rec.advertised_suites.begin(), rec.advertised_suites.end(),
      [](std::uint16_t id) {
        const auto* info = tls::suite_info(id);
        return info != nullptr && info->cipher == tls::BulkCipher::Rc4;
      });
  if (has_rc4) rc4_advertising += n;
  if (std::any_of(rec.advertised_suites.begin(), rec.advertised_suites.end(),
                  tls::suite_is_null_or_anon)) {
    null_anon_devices.insert(rec.device);
  }
  if (rec.requested_ocsp_staple) stapling_devices.insert(rec.device);

  if (fingerprints) {
    const auto fp = fingerprint::fingerprint_of(rec);
    auto& entry = fingerprint_uses[rec.device][fp.hash];
    entry.first = fp;
    entry.second += n;
  }
}

void DatasetFold::merge(const DatasetFold& other) {
  for (const auto& [device, other_tallies] : other.tallies) {
    const auto [it, inserted] = tallies.try_emplace(device, months.size());
    if (inserted) {
      it->second = other_tallies;
    } else {
      it->second.merge(other_tallies);
    }
  }
  total_connections += other.total_connections;
  for (const auto& [device, n] : other.connections_per_device) {
    connections_per_device[device] += n;
  }
  tls13_advertising += other.tls13_advertising;
  rc4_advertising += other.rc4_advertising;
  for (const auto& [device, versions] : other.max_versions) {
    max_versions[device].insert(versions.begin(), versions.end());
  }
  null_anon_devices.insert(other.null_anon_devices.begin(),
                           other.null_anon_devices.end());
  stapling_devices.insert(other.stapling_devices.begin(),
                          other.stapling_devices.end());
  for (const auto& [device, uses] : other.fingerprint_uses) {
    auto& mine = fingerprint_uses[device];
    for (const auto& [hash, entry] : uses) {
      auto& slot = mine[hash];
      slot.first = entry.first;
      slot.second += entry.second;
    }
  }
}

std::vector<std::string> DatasetFold::devices() const {
  std::vector<std::string> out;
  out.reserve(connections_per_device.size());
  for (const auto& [device, n] : connections_per_device) {
    out.push_back(device);
  }
  return out;
}

DatasetFold fold_dataset(const testbed::PassiveDataset& dataset,
                         const std::vector<common::Month>& months,
                         const FoldOptions& options) {
  DatasetFold fold;
  fold.months = months;
  for (const auto& group : dataset.groups()) {
    fold.add(group, options.fingerprints);
  }
  return fold;
}

DatasetFold fold_store(const store::DatasetCursor& cursor,
                       const std::vector<common::Month>& months,
                       const FoldOptions& options) {
  const auto partials = common::parallel_map(
      options.threads, cursor.shard_paths(), [&](const std::string& path) {
        DatasetFold partial;
        partial.months = months;
        store::DatasetCursor one(std::vector<std::string>{path});
        one.for_each([&](const testbed::PassiveConnectionGroup& group) {
          partial.add(group, options.fingerprints);
        });
        return partial;
      });
  DatasetFold fold;
  fold.months = months;
  for (const auto& partial : partials) fold.merge(partial);
  return fold;
}

DatasetFold fold_store_scan(const store::DatasetCursor& cursor,
                            const std::vector<common::Month>& months,
                            const FoldOptions& options) {
  // DatasetFold::add reads advertised versions + suites; fingerprinting
  // additionally hashes extensions/groups/sigalgs.
  const std::uint32_t fields =
      options.fingerprints
          ? store::kFieldAllLists
          : (store::kFieldAdvVersions | store::kFieldAdvSuites);
  const auto partials = common::parallel_map(
      options.threads, cursor.shard_paths(), [&](const std::string& path) {
        DatasetFold partial;
        partial.months = months;
        const store::ShardIndex index = store::read_shard_index(path);
        store::StringDictionary dict;
        const bool standalone = index.footer.has_stats;
        if (standalone) {
          for (const auto& entry : index.footer.dictionary) {
            dict.append(entry);
          }
        }
        store::BlockFetcher fetcher(index);
        store::ProjectedRow row;
        testbed::PassiveConnectionGroup group;
        for (std::size_t i = 0; i < index.blocks.size(); ++i) {
          const common::Bytes payload = fetcher.fetch(i);
          store::ProjectedBlockCursor block(payload, index.header, fields,
                                            &dict, standalone);
          while (block.next(&row)) {
            net::HandshakeRecord& rec = group.record;
            rec.device = dict.at(row.device_id);
            rec.month = row.month;
            rec.advertised_versions = row.advertised_versions;
            rec.advertised_suites = row.advertised_suites;
            rec.extension_types = row.extension_types;
            rec.advertised_groups = row.advertised_groups;
            rec.advertised_sigalgs = row.advertised_sigalgs;
            rec.requested_ocsp_staple = row.requested_ocsp_staple;
            rec.established_version = row.established_version;
            rec.established_suite = row.established_suite;
            group.count = row.count;
            partial.add(group, options.fingerprints);
          }
        }
        return partial;
      });
  DatasetFold fold;
  fold.months = months;
  for (const auto& partial : partials) fold.merge(partial);
  return fold;
}

}  // namespace iotls::analysis
