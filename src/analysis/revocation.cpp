#include "analysis/revocation.hpp"

#include <algorithm>
#include <set>

#include "devices/catalog.hpp"

namespace iotls::analysis {

int RevocationSummary::non_checking_count(int total_devices) const {
  std::set<std::string> checking;
  checking.insert(crl_devices.begin(), crl_devices.end());
  checking.insert(ocsp_devices.begin(), ocsp_devices.end());
  checking.insert(stapling_devices.begin(), stapling_devices.end());
  return total_devices - static_cast<int>(checking.size());
}

RevocationSummary analyze_revocation(const testbed::PassiveDataset& dataset) {
  RevocationSummary summary = revocation_from_catalog();

  // Stapling re-derived from traffic: a device supports stapling iff some
  // captured ClientHello carries status_request.
  std::set<std::string> stapling;
  for (const auto& group : dataset.groups()) {
    if (group.record.requested_ocsp_staple) {
      stapling.insert(group.record.device);
    }
  }
  summary.stapling_devices.assign(stapling.begin(), stapling.end());
  return summary;
}

RevocationSummary revocation_from_catalog() {
  RevocationSummary summary;
  for (const auto& device : devices::device_catalog()) {
    if (device.revocation.crl) summary.crl_devices.push_back(device.name);
    if (device.revocation.ocsp) summary.ocsp_devices.push_back(device.name);
    if (device.revocation.ocsp_stapling) {
      summary.stapling_devices.push_back(device.name);
    }
  }
  return summary;
}

}  // namespace iotls::analysis
