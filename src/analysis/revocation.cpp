#include "analysis/revocation.hpp"

#include <algorithm>
#include <set>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "devices/catalog.hpp"

namespace iotls::analysis {

int RevocationSummary::non_checking_count(int total_devices) const {
  std::set<std::string> checking;
  checking.insert(crl_devices.begin(), crl_devices.end());
  checking.insert(ocsp_devices.begin(), ocsp_devices.end());
  checking.insert(stapling_devices.begin(), stapling_devices.end());
  return total_devices - static_cast<int>(checking.size());
}

RevocationSummary analyze_revocation(const testbed::PassiveDataset& dataset) {
  RevocationSummary summary = revocation_from_catalog();

  // Stapling re-derived from traffic: a device supports stapling iff some
  // captured ClientHello carries status_request.
  std::set<std::string> stapling;
  for (const auto& group : dataset.groups()) {
    if (group.record.requested_ocsp_staple) {
      stapling.insert(group.record.device);
    }
  }
  summary.stapling_devices.assign(stapling.begin(), stapling.end());
  return summary;
}

RevocationSummary analyze_revocation(const DatasetFold& fold) {
  RevocationSummary summary = revocation_from_catalog();
  summary.stapling_devices.assign(fold.stapling_devices.begin(),
                                  fold.stapling_devices.end());
  return summary;
}

RevocationSummary analyze_revocation(const store::DatasetCursor& cursor,
                                     std::size_t threads) {
  FoldOptions options;
  options.threads = threads;
  return analyze_revocation(
      fold_store(cursor, std::vector<common::Month>{}, options));
}

std::string render_table8(const RevocationSummary& summary,
                          int total_devices) {
  auto join = [](const std::vector<std::string>& names) {
    return common::join(names, ", ") + " (" + std::to_string(names.size()) +
           ")";
  };
  common::TextTable table({"Method", "Devices (Count)"});
  table.add_row({"Certificate Revocation Lists (CRLs)",
                 join(summary.crl_devices)});
  table.add_row({"Online Certificate Status Protocol (OCSP)",
                 join(summary.ocsp_devices)});
  table.add_row({"OCSP Stapling", join(summary.stapling_devices)});
  auto out = "Table 8: certificate-revocation support\n" + table.render();
  out += "devices never checking revocation: " +
         std::to_string(summary.non_checking_count(total_devices)) + "/" +
         std::to_string(total_devices) + "\n";
  return out;
}

RevocationSummary revocation_from_catalog() {
  RevocationSummary summary;
  for (const auto& device : devices::device_catalog()) {
    if (device.revocation.crl) summary.crl_devices.push_back(device.name);
    if (device.revocation.ocsp) summary.ocsp_devices.push_back(device.name);
    if (device.revocation.ocsp_stapling) {
      summary.stapling_devices.push_back(device.name);
    }
  }
  return summary;
}

}  // namespace iotls::analysis
