// First- vs third-party destination labelling (§5.1, after Ren et al.):
// used to test the hypothesis that devices advertising multiple maximum
// versions do so because different *parties* get different TLS
// configurations — the paper found no such pattern.
#pragma once

#include <map>
#include <string>

#include "testbed/longitudinal.hpp"
#include "tls/version.hpp"

namespace iotls::analysis {

enum class Party { First, Third, Unknown };

std::string party_name(Party party);

/// Catalogue-driven labelling: a destination is first-party iff the
/// device's profile marks it so; hostnames not in the profile are Unknown.
Party classify_party(const std::string& device, const std::string& hostname);

struct PartyVersionBreakdown {
  /// party → version bucket → weighted connection count.
  std::map<Party, std::map<tls::VersionBucket, std::uint64_t>> counts;

  [[nodiscard]] std::uint64_t total(Party party) const;
  /// Fraction of a party's connections in a bucket (0 if no traffic).
  [[nodiscard]] double fraction(Party party, tls::VersionBucket bucket) const;
  /// L1 distance between the first- and third-party bucket distributions
  /// (0 = identical, 2 = disjoint). The paper's "no pattern" finding
  /// corresponds to a small value.
  [[nodiscard]] double divergence() const;
};

/// Breakdown over advertised maximum versions.
PartyVersionBreakdown party_version_breakdown(
    const testbed::PassiveDataset& dataset);

std::string render_party_breakdown(const PartyVersionBreakdown& breakdown);

}  // namespace iotls::analysis
