// Longitudinal analyses over the passive dataset — the computations behind
// Figs 1, 2 and 3.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/fold.hpp"
#include "testbed/longitudinal.hpp"
#include "tls/version.hpp"

namespace iotls::analysis {

/// Sentinel fraction for "no traffic this month" (rendered gray/x).
inline constexpr double kNoTraffic = -1.0;

/// Fig 1: per-device monthly fractions of connections per version bucket,
/// for both the advertised (ClientHello) and established (ServerHello)
/// sides.
struct VersionSeries {
  std::string device;
  std::vector<common::Month> months;
  /// bucket → per-month fraction (kNoTraffic where the device was silent).
  std::map<tls::VersionBucket, std::vector<double>> advertised;
  std::map<tls::VersionBucket, std::vector<double>> established;

  /// A device is "TLS 1.2 exclusive" if ≥95% of its connections advertise
  /// and establish TLS 1.2 in every month with traffic (the 28 devices
  /// Fig 1 omits).
  [[nodiscard]] bool tls12_exclusive(double threshold = 0.95) const;
};

VersionSeries version_series(const testbed::PassiveDataset& dataset,
                             const std::string& device,
                             const std::vector<common::Month>& months);

/// Build a device's series from already-folded tallies — the single code
/// path both the in-memory and the streamed analyses go through (this is
/// what makes streamed results byte-identical).
VersionSeries version_series_from(const MonthTallies& tallies,
                                  const std::string& device,
                                  const std::vector<common::Month>& months);

/// All devices, Fig 1 ordering (non-exclusive devices first).
std::vector<VersionSeries> all_version_series(
    const testbed::PassiveDataset& dataset,
    const std::vector<common::Month>& months);
std::vector<VersionSeries> all_version_series(const DatasetFold& fold);

/// Out-of-core overload: fold the store (parallel over shards), then build
/// the same series.
std::vector<VersionSeries> all_version_series(
    const store::DatasetCursor& cursor,
    const std::vector<common::Month>& months, std::size_t threads = 0);

/// Fig 2 / Fig 3: per-device monthly ciphersuite-quality fractions.
struct CipherSeries {
  std::string device;
  std::vector<common::Month> months;
  std::vector<double> insecure_advertised;   // Fig 2 (lower is better)
  std::vector<double> insecure_established;
  std::vector<double> strong_advertised;
  std::vector<double> strong_established;    // Fig 3 (higher is better)

  [[nodiscard]] double max_insecure_advertised() const;
  [[nodiscard]] double mean_strong_established() const;
};

CipherSeries cipher_series(const testbed::PassiveDataset& dataset,
                           const std::string& device,
                           const std::vector<common::Month>& months);

CipherSeries cipher_series_from(const MonthTallies& tallies,
                                const std::string& device,
                                const std::vector<common::Month>& months);

std::vector<CipherSeries> all_cipher_series(
    const testbed::PassiveDataset& dataset,
    const std::vector<common::Month>& months);
std::vector<CipherSeries> all_cipher_series(const DatasetFold& fold);
std::vector<CipherSeries> all_cipher_series(
    const store::DatasetCursor& cursor,
    const std::vector<common::Month>& months, std::size_t threads = 0);

/// Render helpers (text heatmaps in the paper's row layout).
std::string render_version_heatmap(const std::vector<VersionSeries>& series,
                                   bool advertised);
std::string render_cipher_heatmap(const std::vector<CipherSeries>& series,
                                  bool insecure, bool advertised);

/// Full-figure renderings (headers + device filters + heatmaps) — the
/// exact text IotlsStudy emits, factored out so the streamed pipeline
/// renders through the same code.
std::string render_fig1(const std::vector<VersionSeries>& series,
                        const std::vector<common::Month>& months);
std::string render_fig2(const std::vector<CipherSeries>& series);
std::string render_fig3(const std::vector<CipherSeries>& series);

/// The study window.
std::vector<common::Month> study_months();

}  // namespace iotls::analysis
