#include "analysis/longitudinal.hpp"

#include <algorithm>
#include <numeric>

#include "common/table.hpp"

namespace iotls::analysis {

std::vector<common::Month> study_months() {
  return common::month_range(common::kStudyStart, common::kStudyEnd);
}

namespace {

std::vector<double> to_fractions(const std::vector<std::uint64_t>& counts,
                                 const std::vector<std::uint64_t>& totals) {
  std::vector<double> out(counts.size(), kNoTraffic);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (totals[i] > 0) {
      out[i] = static_cast<double>(counts[i]) /
               static_cast<double>(totals[i]);
    }
  }
  return out;
}

/// Per-device in-memory tally (the fold path reaches the same MonthTallies
/// via DatasetFold::add — one accumulation code path for both).
MonthTallies accumulate(const testbed::PassiveDataset& dataset,
                        const std::string& device,
                        const std::vector<common::Month>& months) {
  MonthTallies acc(months.size());
  const int base = months.empty() ? 0 : months.front().index();
  for (const auto* group : dataset.for_device(device)) {
    acc.add(group->record, group->count, base);
  }
  return acc;
}

/// Shared ordering + construction behind the all_* overloads.
template <typename Series, typename Build>
std::vector<Series> series_for_devices(const std::vector<std::string>& devices,
                                       const Build& build) {
  std::vector<Series> out;
  out.reserve(devices.size());
  for (const auto& device : devices) out.push_back(build(device));
  return out;
}

void sort_fig1(std::vector<VersionSeries>* series) {
  // Fig 1 ordering: mixed-version devices first.
  std::stable_sort(series->begin(), series->end(),
                   [](const VersionSeries& a, const VersionSeries& b) {
                     return !a.tls12_exclusive() && b.tls12_exclusive();
                   });
}

}  // namespace

bool VersionSeries::tls12_exclusive(double threshold) const {
  const auto check = [&](const std::map<tls::VersionBucket,
                                        std::vector<double>>& side) {
    const auto& tls12 = side.at(tls::VersionBucket::Tls12);
    for (const double f : tls12) {
      if (f == kNoTraffic) continue;
      if (f < threshold) return false;
    }
    return true;
  };
  return check(advertised) && check(established);
}

VersionSeries version_series_from(const MonthTallies& tallies,
                                  const std::string& device,
                                  const std::vector<common::Month>& months) {
  VersionSeries series;
  series.device = device;
  series.months = months;
  for (const auto& [bucket, counts] : tallies.adv_bucket) {
    series.advertised[bucket] = to_fractions(counts, tallies.total);
  }
  for (const auto& [bucket, counts] : tallies.est_bucket) {
    series.established[bucket] =
        to_fractions(counts, tallies.established_total);
  }
  return series;
}

VersionSeries version_series(const testbed::PassiveDataset& dataset,
                             const std::string& device,
                             const std::vector<common::Month>& months) {
  return version_series_from(accumulate(dataset, device, months), device,
                             months);
}

std::vector<VersionSeries> all_version_series(
    const testbed::PassiveDataset& dataset,
    const std::vector<common::Month>& months) {
  auto out = series_for_devices<VersionSeries>(
      dataset.devices(), [&](const std::string& device) {
        return version_series(dataset, device, months);
      });
  sort_fig1(&out);
  return out;
}

std::vector<VersionSeries> all_version_series(const DatasetFold& fold) {
  auto out = series_for_devices<VersionSeries>(
      fold.devices(), [&](const std::string& device) {
        return version_series_from(fold.tallies.at(device), device,
                                   fold.months);
      });
  sort_fig1(&out);
  return out;
}

std::vector<VersionSeries> all_version_series(
    const store::DatasetCursor& cursor,
    const std::vector<common::Month>& months, std::size_t threads) {
  // Folded on the columnar scan path: Figs 1-2 read only the advertised
  // version/suite lists, so three of the five list columns stay undecoded.
  FoldOptions options;
  options.threads = threads;
  return all_version_series(fold_store_scan(cursor, months, options));
}

double CipherSeries::max_insecure_advertised() const {
  double best = 0.0;
  for (const double f : insecure_advertised) {
    if (f != kNoTraffic) best = std::max(best, f);
  }
  return best;
}

double CipherSeries::mean_strong_established() const {
  double sum = 0.0;
  int n = 0;
  for (const double f : strong_established) {
    if (f == kNoTraffic) continue;
    sum += f;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

CipherSeries cipher_series_from(const MonthTallies& tallies,
                                const std::string& device,
                                const std::vector<common::Month>& months) {
  CipherSeries series;
  series.device = device;
  series.months = months;
  series.insecure_advertised =
      to_fractions(tallies.insecure_adv, tallies.total);
  series.insecure_established =
      to_fractions(tallies.insecure_est, tallies.established_total);
  series.strong_advertised = to_fractions(tallies.strong_adv, tallies.total);
  series.strong_established =
      to_fractions(tallies.strong_est, tallies.established_total);
  return series;
}

CipherSeries cipher_series(const testbed::PassiveDataset& dataset,
                           const std::string& device,
                           const std::vector<common::Month>& months) {
  return cipher_series_from(accumulate(dataset, device, months), device,
                            months);
}

std::vector<CipherSeries> all_cipher_series(
    const testbed::PassiveDataset& dataset,
    const std::vector<common::Month>& months) {
  return series_for_devices<CipherSeries>(
      dataset.devices(), [&](const std::string& device) {
        return cipher_series(dataset, device, months);
      });
}

std::vector<CipherSeries> all_cipher_series(const DatasetFold& fold) {
  return series_for_devices<CipherSeries>(
      fold.devices(), [&](const std::string& device) {
        return cipher_series_from(fold.tallies.at(device), device,
                                  fold.months);
      });
}

std::vector<CipherSeries> all_cipher_series(
    const store::DatasetCursor& cursor,
    const std::vector<common::Month>& months, std::size_t threads) {
  FoldOptions options;
  options.threads = threads;
  return all_cipher_series(fold_store_scan(cursor, months, options));
}

std::string render_version_heatmap(const std::vector<VersionSeries>& series,
                                   bool advertised) {
  std::string out;
  for (const auto& s : series) {
    const auto& side = advertised ? s.advertised : s.established;
    out += s.device + "\n";
    for (const auto bucket :
         {tls::VersionBucket::Tls13, tls::VersionBucket::Tls12,
          tls::VersionBucket::Older}) {
      out += "  " + tls::bucket_name(bucket);
      out.append(6 - tls::bucket_name(bucket).size(), ' ');
      // Appended piecewise: `"|" + heat_strip(...) + "|\n"` trips gcc 12's
      // -Wrestrict false positive (PR 105651) under -Werror.
      out += '|';
      out += common::heat_strip(side.at(bucket));
      out += "|\n";
    }
  }
  return out;
}

std::string render_fig1(const std::vector<VersionSeries>& series,
                        const std::vector<common::Month>& months) {
  // The figure omits TLS1.2-exclusive devices.
  std::vector<VersionSeries> shown;
  for (const auto& s : series) {
    if (!s.tls12_exclusive()) shown.push_back(s);
  }
  std::string out = "Fig 1: TLS version support over time (" +
                    std::to_string(shown.size()) + " devices shown; " +
                    std::to_string(series.size() - shown.size()) +
                    " TLS1.2-exclusive devices omitted)\n";
  out += "months: " + months.front().str() + " .. " + months.back().str() +
         "  (shade = fraction of connections; x = no traffic)\n\n";
  out += "== advertised ==\n" +
         render_version_heatmap(shown, /*advertised=*/true);
  out += "\n== established ==\n" +
         render_version_heatmap(shown, /*advertised=*/false);
  return out;
}

std::string render_fig2(const std::vector<CipherSeries>& series) {
  std::vector<CipherSeries> shown;
  for (const auto& s : series) {
    if (s.max_insecure_advertised() > 0.05) shown.push_back(s);
  }
  std::string out = "Fig 2: insecure ciphersuites advertised (" +
                    std::to_string(shown.size()) + " devices shown; " +
                    std::to_string(series.size() - shown.size()) +
                    " rarely-advertising devices omitted; lower is "
                    "better)\n\n";
  out += render_cipher_heatmap(shown, /*insecure=*/true,
                               /*advertised=*/true);
  return out;
}

std::string render_fig3(const std::vector<CipherSeries>& series) {
  std::vector<CipherSeries> shown;
  for (const auto& s : series) {
    if (s.mean_strong_established() < 0.9) shown.push_back(s);
  }
  std::string out = "Fig 3: strong (PFS) ciphersuites established (" +
                    std::to_string(shown.size()) + " devices shown; " +
                    std::to_string(series.size() - shown.size()) +
                    " mostly-strong devices omitted; higher is better)\n\n";
  out += render_cipher_heatmap(shown, /*insecure=*/false,
                               /*advertised=*/false);
  return out;
}

std::string render_cipher_heatmap(const std::vector<CipherSeries>& series,
                                  bool insecure, bool advertised) {
  std::string out;
  for (const auto& s : series) {
    const std::vector<double>* row = nullptr;
    if (insecure) {
      row = advertised ? &s.insecure_advertised : &s.insecure_established;
    } else {
      row = advertised ? &s.strong_advertised : &s.strong_established;
    }
    std::string name = s.device;
    name.resize(20, ' ');
    out += name + " |" + common::heat_strip(*row) + "|\n";
  }
  return out;
}

}  // namespace iotls::analysis
