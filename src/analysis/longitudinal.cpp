#include "analysis/longitudinal.hpp"

#include <algorithm>
#include <numeric>

#include "common/table.hpp"

namespace iotls::analysis {

std::vector<common::Month> study_months() {
  return common::month_range(common::kStudyStart, common::kStudyEnd);
}

namespace {

/// Accumulates weighted per-month counts.
struct MonthAccumulator {
  std::vector<std::uint64_t> total;
  std::map<tls::VersionBucket, std::vector<std::uint64_t>> adv_bucket;
  std::map<tls::VersionBucket, std::vector<std::uint64_t>> est_bucket;
  std::vector<std::uint64_t> insecure_adv, insecure_est;
  std::vector<std::uint64_t> strong_adv, strong_est;
  std::vector<std::uint64_t> established_total;

  explicit MonthAccumulator(std::size_t n) {
    total.assign(n, 0);
    insecure_adv.assign(n, 0);
    insecure_est.assign(n, 0);
    strong_adv.assign(n, 0);
    strong_est.assign(n, 0);
    established_total.assign(n, 0);
    for (const auto bucket :
         {tls::VersionBucket::Tls13, tls::VersionBucket::Tls12,
          tls::VersionBucket::Older}) {
      adv_bucket[bucket].assign(n, 0);
      est_bucket[bucket].assign(n, 0);
    }
  }
};

std::vector<double> to_fractions(const std::vector<std::uint64_t>& counts,
                                 const std::vector<std::uint64_t>& totals) {
  std::vector<double> out(counts.size(), kNoTraffic);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (totals[i] > 0) {
      out[i] = static_cast<double>(counts[i]) /
               static_cast<double>(totals[i]);
    }
  }
  return out;
}

MonthAccumulator accumulate(const testbed::PassiveDataset& dataset,
                            const std::string& device,
                            const std::vector<common::Month>& months) {
  MonthAccumulator acc(months.size());
  const int base = months.empty() ? 0 : months.front().index();
  for (const auto* group : dataset.for_device(device)) {
    const int idx = group->record.month.index() - base;
    if (idx < 0 || idx >= static_cast<int>(months.size())) continue;
    const auto& rec = group->record;
    const std::uint64_t n = group->count;

    acc.total[idx] += n;
    if (!rec.advertised_versions.empty()) {
      acc.adv_bucket[tls::bucket_of(rec.max_advertised_version())][idx] += n;
    }
    if (rec.advertises_insecure_suite()) acc.insecure_adv[idx] += n;
    if (rec.advertises_strong_suite()) acc.strong_adv[idx] += n;

    if (rec.established_version.has_value()) {
      acc.established_total[idx] += n;
      acc.est_bucket[tls::bucket_of(*rec.established_version)][idx] += n;
      if (rec.established_insecure_suite()) acc.insecure_est[idx] += n;
      if (rec.established_strong_suite()) acc.strong_est[idx] += n;
    }
  }
  return acc;
}

}  // namespace

bool VersionSeries::tls12_exclusive(double threshold) const {
  const auto check = [&](const std::map<tls::VersionBucket,
                                        std::vector<double>>& side) {
    const auto& tls12 = side.at(tls::VersionBucket::Tls12);
    for (const double f : tls12) {
      if (f == kNoTraffic) continue;
      if (f < threshold) return false;
    }
    return true;
  };
  return check(advertised) && check(established);
}

VersionSeries version_series(const testbed::PassiveDataset& dataset,
                             const std::string& device,
                             const std::vector<common::Month>& months) {
  const MonthAccumulator acc = accumulate(dataset, device, months);
  VersionSeries series;
  series.device = device;
  series.months = months;
  for (const auto& [bucket, counts] : acc.adv_bucket) {
    series.advertised[bucket] = to_fractions(counts, acc.total);
  }
  for (const auto& [bucket, counts] : acc.est_bucket) {
    series.established[bucket] =
        to_fractions(counts, acc.established_total);
  }
  return series;
}

std::vector<VersionSeries> all_version_series(
    const testbed::PassiveDataset& dataset,
    const std::vector<common::Month>& months) {
  std::vector<VersionSeries> out;
  for (const auto& device : dataset.devices()) {
    out.push_back(version_series(dataset, device, months));
  }
  // Fig 1 ordering: mixed-version devices first.
  std::stable_sort(out.begin(), out.end(),
                   [](const VersionSeries& a, const VersionSeries& b) {
                     return !a.tls12_exclusive() && b.tls12_exclusive();
                   });
  return out;
}

double CipherSeries::max_insecure_advertised() const {
  double best = 0.0;
  for (const double f : insecure_advertised) {
    if (f != kNoTraffic) best = std::max(best, f);
  }
  return best;
}

double CipherSeries::mean_strong_established() const {
  double sum = 0.0;
  int n = 0;
  for (const double f : strong_established) {
    if (f == kNoTraffic) continue;
    sum += f;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

CipherSeries cipher_series(const testbed::PassiveDataset& dataset,
                           const std::string& device,
                           const std::vector<common::Month>& months) {
  const MonthAccumulator acc = accumulate(dataset, device, months);
  CipherSeries series;
  series.device = device;
  series.months = months;
  series.insecure_advertised = to_fractions(acc.insecure_adv, acc.total);
  series.insecure_established =
      to_fractions(acc.insecure_est, acc.established_total);
  series.strong_advertised = to_fractions(acc.strong_adv, acc.total);
  series.strong_established =
      to_fractions(acc.strong_est, acc.established_total);
  return series;
}

std::vector<CipherSeries> all_cipher_series(
    const testbed::PassiveDataset& dataset,
    const std::vector<common::Month>& months) {
  std::vector<CipherSeries> out;
  for (const auto& device : dataset.devices()) {
    out.push_back(cipher_series(dataset, device, months));
  }
  return out;
}

std::string render_version_heatmap(const std::vector<VersionSeries>& series,
                                   bool advertised) {
  std::string out;
  for (const auto& s : series) {
    const auto& side = advertised ? s.advertised : s.established;
    out += s.device + "\n";
    for (const auto bucket :
         {tls::VersionBucket::Tls13, tls::VersionBucket::Tls12,
          tls::VersionBucket::Older}) {
      out += "  " + tls::bucket_name(bucket);
      out.append(6 - tls::bucket_name(bucket).size(), ' ');
      // Appended piecewise: `"|" + heat_strip(...) + "|\n"` trips gcc 12's
      // -Wrestrict false positive (PR 105651) under -Werror.
      out += '|';
      out += common::heat_strip(side.at(bucket));
      out += "|\n";
    }
  }
  return out;
}

std::string render_cipher_heatmap(const std::vector<CipherSeries>& series,
                                  bool insecure, bool advertised) {
  std::string out;
  for (const auto& s : series) {
    const std::vector<double>* row = nullptr;
    if (insecure) {
      row = advertised ? &s.insecure_advertised : &s.insecure_established;
    } else {
      row = advertised ? &s.strong_advertised : &s.strong_established;
    }
    std::string name = s.device;
    name.resize(20, ' ');
    out += name + " |" + common::heat_strip(*row) + "|\n";
  }
  return out;
}

}  // namespace iotls::analysis
