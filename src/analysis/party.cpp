#include "analysis/party.hpp"

#include <cmath>
#include <cstdio>

#include "devices/catalog.hpp"

namespace iotls::analysis {

std::string party_name(Party party) {
  switch (party) {
    case Party::First: return "first-party";
    case Party::Third: return "third-party";
    case Party::Unknown: return "unknown";
  }
  return "?";
}

Party classify_party(const std::string& device, const std::string& hostname) {
  const auto* profile = devices::find_device(device);
  if (profile == nullptr) return Party::Unknown;
  for (const auto& dest : profile->destinations) {
    if (dest.hostname == hostname) {
      return dest.first_party ? Party::First : Party::Third;
    }
  }
  return Party::Unknown;
}

std::uint64_t PartyVersionBreakdown::total(Party party) const {
  const auto it = counts.find(party);
  if (it == counts.end()) return 0;
  std::uint64_t sum = 0;
  for (const auto& [bucket, count] : it->second) sum += count;
  return sum;
}

double PartyVersionBreakdown::fraction(Party party,
                                       tls::VersionBucket bucket) const {
  const auto party_total = total(party);
  if (party_total == 0) return 0.0;
  const auto it = counts.find(party);
  const auto bucket_it = it->second.find(bucket);
  if (bucket_it == it->second.end()) return 0.0;
  return static_cast<double>(bucket_it->second) /
         static_cast<double>(party_total);
}

double PartyVersionBreakdown::divergence() const {
  double sum = 0.0;
  for (const auto bucket :
       {tls::VersionBucket::Tls13, tls::VersionBucket::Tls12,
        tls::VersionBucket::Older}) {
    sum += std::abs(fraction(Party::First, bucket) -
                    fraction(Party::Third, bucket));
  }
  return sum;
}

PartyVersionBreakdown party_version_breakdown(
    const testbed::PassiveDataset& dataset) {
  PartyVersionBreakdown breakdown;
  for (const auto& g : dataset.groups()) {
    if (g.record.advertised_versions.empty()) continue;
    const Party party =
        classify_party(g.record.device, g.record.destination);
    const auto bucket = tls::bucket_of(g.record.max_advertised_version());
    breakdown.counts[party][bucket] += g.count;
  }
  return breakdown;
}

std::string render_party_breakdown(const PartyVersionBreakdown& breakdown) {
  std::string out =
      "advertised max version by destination party (§5.1 hypothesis "
      "check)\n";
  for (const auto party : {Party::First, Party::Third}) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-12s  1.3: %5.1f%%  1.2: %5.1f%%  older: %5.1f%%  "
                  "(n=%llu)\n",
                  party_name(party).c_str(),
                  breakdown.fraction(party, tls::VersionBucket::Tls13) * 100,
                  breakdown.fraction(party, tls::VersionBucket::Tls12) * 100,
                  breakdown.fraction(party, tls::VersionBucket::Older) * 100,
                  static_cast<unsigned long long>(breakdown.total(party)));
    out += line;
  }
  char tail[80];
  std::snprintf(tail, sizeof(tail), "  L1 divergence: %.3f\n",
                breakdown.divergence());
  out += tail;
  return out;
}

}  // namespace iotls::analysis
