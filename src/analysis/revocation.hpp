// Table 8: certificate-revocation support per device.
//
// OCSP-stapling support is detected from *traffic* (status_request in
// captured ClientHellos), exactly as the paper does. CRL / OCSP-responder
// usage in the paper comes from observing fetches to revocation endpoints;
// our generator does not synthesize that side-traffic, so those two columns
// are read from the device specifications (DESIGN.md substitution note).
#pragma once

#include <string>
#include <vector>

#include "analysis/fold.hpp"
#include "testbed/longitudinal.hpp"

namespace iotls::analysis {

struct RevocationSummary {
  std::vector<std::string> crl_devices;
  std::vector<std::string> ocsp_devices;
  std::vector<std::string> stapling_devices;

  /// Devices performing no revocation checking at all.
  [[nodiscard]] int non_checking_count(int total_devices) const;
};

/// Analyze the passive dataset (stapling from traffic) combined with the
/// catalogue (CRL/OCSP).
RevocationSummary analyze_revocation(const testbed::PassiveDataset& dataset);

/// Shared reduction (stapling devices come pre-folded).
RevocationSummary analyze_revocation(const DatasetFold& fold);

/// Out-of-core overload over a capture-store cursor.
RevocationSummary analyze_revocation(const store::DatasetCursor& cursor,
                                     std::size_t threads = 0);

/// Specification-only variant (no dataset needed).
RevocationSummary revocation_from_catalog();

/// Table 8 text (the exact rendering IotlsStudy emits).
std::string render_table8(const RevocationSummary& summary,
                          int total_devices);

}  // namespace iotls::analysis
