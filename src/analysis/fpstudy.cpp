#include "analysis/fpstudy.hpp"

#include <algorithm>

namespace iotls::analysis {

int FingerprintStudy::single_instance_devices() const {
  return static_cast<int>(std::count_if(
      fingerprints_per_device.begin(), fingerprints_per_device.end(),
      [](const auto& kv) { return kv.second == 1; }));
}

int FingerprintStudy::multi_instance_devices() const {
  return static_cast<int>(std::count_if(
      fingerprints_per_device.begin(), fingerprints_per_device.end(),
      [](const auto& kv) { return kv.second > 1; }));
}

int FingerprintStudy::sharing_devices() const {
  int count = 0;
  for (const auto& [device, n] : fingerprints_per_device) {
    if (!graph.sharing_partners(device).empty()) ++count;
  }
  return count;
}

FingerprintStudy run_fingerprint_study(testbed::Testbed& testbed) {
  FingerprintStudy study;
  const common::SimDate snapshot{2021, 3, 25};
  testbed.set_date(snapshot);

  for (const auto& name : testbed.device_names()) {
    auto& runtime = testbed.runtime(name);
    runtime.reset_failure_state();
    const auto boot = runtime.boot(snapshot, /*include_intermittent=*/true);

    // Count uses per fingerprint to find the dominant one (thick edges).
    std::map<std::string, std::pair<fingerprint::Fingerprint, int>> uses;
    for (const auto& conn : boot.connections) {
      const auto fp = fingerprint::fingerprint_of(conn.result.hello);
      auto& entry = uses[fp.hash];
      entry.first = fp;
      ++entry.second;
    }
    int best = 0;
    std::string best_hash;
    for (const auto& [hash, entry] : uses) {
      if (entry.second > best) {
        best = entry.second;
        best_hash = hash;
      }
    }
    for (const auto& [hash, entry] : uses) {
      study.graph.add_use(name, fingerprint::NodeKind::Device, entry.first,
                          hash == best_hash);
    }
    study.fingerprints_per_device[name] = static_cast<int>(uses.size());
  }

  // Merge the reference application database (Kotzias et al. stand-in).
  const auto db = fingerprint::build_reference_db();
  for (const auto& app : db.applications()) {
    for (const auto& fp : db.fingerprints_of(app)) {
      study.graph.add_use(app, fingerprint::NodeKind::Application, fp, true);
    }
  }
  return study;
}

std::string render_sharing_graph(const FingerprintStudy& study) {
  std::string out;
  const auto clusters = study.graph.clusters();
  int index = 1;
  for (const auto& cluster : clusters) {
    out += "cluster " + std::to_string(index++) + ":";
    for (const auto& member : cluster) {
      const bool is_app =
          study.graph.kind_of(member) == fingerprint::NodeKind::Application;
      out += " " + member + (is_app ? "*" : "");
    }
    out += "\n";
  }
  out += "(* = application from the reference fingerprint database)\n";

  out += "\nshared fingerprints:\n";
  for (const auto& fp : study.graph.shared_fingerprints()) {
    out += "  " + fp.hash.substr(0, 12) + " used by";
    for (const auto& client : study.graph.clients_of(fp)) {
      out += " [" + client +
             (study.graph.is_dominant(client, fp) ? "**" : "") + "]";
    }
    out += "\n";
  }
  out += "(** = that client's dominant fingerprint)\n";
  return out;
}

}  // namespace iotls::analysis
