#include "analysis/fpstudy.hpp"

#include <algorithm>

#include "common/pool.hpp"
#include "common/task.hpp"
#include "engine/map.hpp"

namespace iotls::analysis {

int FingerprintStudy::single_instance_devices() const {
  return static_cast<int>(std::count_if(
      fingerprints_per_device.begin(), fingerprints_per_device.end(),
      [](const auto& kv) { return kv.second == 1; }));
}

int FingerprintStudy::multi_instance_devices() const {
  return static_cast<int>(std::count_if(
      fingerprints_per_device.begin(), fingerprints_per_device.end(),
      [](const auto& kv) { return kv.second > 1; }));
}

int FingerprintStudy::sharing_devices() const {
  int count = 0;
  for (const auto& [device, n] : fingerprints_per_device) {
    if (!graph.sharing_partners(device).empty()) ++count;
  }
  return count;
}

FingerprintStudy run_fingerprint_study(testbed::Testbed& testbed,
                                       std::size_t threads,
                                       bool use_engine) {
  FingerprintStudy study;
  const common::SimDate snapshot{2021, 3, 25};
  testbed.set_date(snapshot);

  // One clean sandboxed boot per device; the per-device fingerprint tallies
  // are independent, so they fan out and merge in sorted device order.
  struct DeviceFingerprints {
    std::string device;
    std::map<std::string, std::pair<fingerprint::Fingerprint, int>> uses;
    std::string dominant_hash;
  };

  const auto names = testbed.device_names();
  const auto per_device = engine::map(
      threads, use_engine, names,
      [&](const std::string& name,
          engine::Engine* eng) -> common::Task<DeviceFingerprints> {
        testbed::Testbed sandbox(testbed.sandbox_options(name));
        if (eng != nullptr) sandbox.set_engine(eng);
        sandbox.set_date(snapshot);
        auto& runtime = sandbox.runtime(name);
        runtime.reset_failure_state();
        const auto boot = co_await runtime.boot_task(
            snapshot, /*include_intermittent=*/true);

        DeviceFingerprints result;
        result.device = name;
        // Count uses per fingerprint to find the dominant one (thick
        // edges).
        for (const auto& conn : boot.connections) {
          const auto fp = fingerprint::fingerprint_of(conn.result.hello);
          auto& entry = result.uses[fp.hash];
          entry.first = fp;
          ++entry.second;
        }
        int best = 0;
        for (const auto& [hash, entry] : result.uses) {
          if (entry.second > best) {
            best = entry.second;
            result.dominant_hash = hash;
          }
        }
        co_return result;
      });

  for (const auto& result : per_device) {
    for (const auto& [hash, entry] : result.uses) {
      study.graph.add_use(result.device, fingerprint::NodeKind::Device,
                          entry.first, hash == result.dominant_hash);
    }
    study.fingerprints_per_device[result.device] =
        static_cast<int>(result.uses.size());
  }

  // Merge the reference application database (Kotzias et al. stand-in).
  const auto db = fingerprint::build_reference_db();
  for (const auto& app : db.applications()) {
    for (const auto& fp : db.fingerprints_of(app)) {
      study.graph.add_use(app, fingerprint::NodeKind::Application, fp, true);
    }
  }
  return study;
}

FingerprintStudy passive_fingerprint_study(const DatasetFold& fold) {
  FingerprintStudy study;
  for (const auto& [device, uses] : fold.fingerprint_uses) {
    // Dominant fingerprint: most weighted uses, first-in-hash-order tiebreak
    // (same rule as the active study's per-device tally).
    std::uint64_t best = 0;
    std::string dominant;
    for (const auto& [hash, entry] : uses) {
      if (entry.second > best) {
        best = entry.second;
        dominant = hash;
      }
    }
    for (const auto& [hash, entry] : uses) {
      study.graph.add_use(device, fingerprint::NodeKind::Device, entry.first,
                          hash == dominant);
    }
    study.fingerprints_per_device[device] = static_cast<int>(uses.size());
  }

  const auto db = fingerprint::build_reference_db();
  for (const auto& app : db.applications()) {
    for (const auto& fp : db.fingerprints_of(app)) {
      study.graph.add_use(app, fingerprint::NodeKind::Application, fp, true);
    }
  }
  return study;
}

FingerprintStudy passive_fingerprint_study(
    const testbed::PassiveDataset& dataset) {
  FoldOptions options;
  options.fingerprints = true;
  return passive_fingerprint_study(
      fold_dataset(dataset, std::vector<common::Month>{}, options));
}

FingerprintStudy passive_fingerprint_study(const store::DatasetCursor& cursor,
                                           std::size_t threads) {
  FoldOptions options;
  options.threads = threads;
  options.fingerprints = true;
  return passive_fingerprint_study(
      fold_store(cursor, std::vector<common::Month>{}, options));
}

std::string render_sharing_graph(const FingerprintStudy& study) {
  std::string out;
  const auto clusters = study.graph.clusters();
  int index = 1;
  for (const auto& cluster : clusters) {
    out += "cluster " + std::to_string(index++) + ":";
    for (const auto& member : cluster) {
      const bool is_app =
          study.graph.kind_of(member) == fingerprint::NodeKind::Application;
      out += " " + member + (is_app ? "*" : "");
    }
    out += "\n";
  }
  out += "(* = application from the reference fingerprint database)\n";

  out += "\nshared fingerprints:\n";
  for (const auto& fp : study.graph.shared_fingerprints()) {
    out += "  " + fp.hash.substr(0, 12) + " used by";
    for (const auto& client : study.graph.clients_of(fp)) {
      out += " [" + client +
             (study.graph.is_dominant(client, fp) ? "**" : "") + "]";
    }
    out += "\n";
  }
  out += "(** = that client's dominant fingerprint)\n";
  return out;
}

}  // namespace iotls::analysis
