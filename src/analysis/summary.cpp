#include "analysis/summary.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "analysis/longitudinal.hpp"

namespace iotls::analysis {

StudySummary summarize(const DatasetFold& fold) {
  StudySummary summary;
  summary.total_connections = fold.total_connections;

  const auto devices = fold.devices();
  summary.device_count = static_cast<int>(devices.size());

  std::vector<std::uint64_t> per_device;
  for (const auto& [device, n] : fold.connections_per_device) {
    per_device.push_back(n);
  }
  if (!per_device.empty()) {
    summary.mean_per_device = summary.total_connections / per_device.size();
    std::sort(per_device.begin(), per_device.end());
    summary.median_per_device = per_device[per_device.size() / 2];
  }

  if (summary.total_connections > 0) {
    summary.tls13_advertising_fraction =
        static_cast<double>(fold.tls13_advertising) /
        summary.total_connections;
    summary.rc4_advertising_fraction =
        static_cast<double>(fold.rc4_advertising) /
        summary.total_connections;
  }
  for (const auto& [device, versions] : fold.max_versions) {
    if (versions.size() > 1) {
      ++summary.devices_advertising_multiple_max_versions;
    }
  }
  summary.null_anon_advertising_devices =
      static_cast<int>(fold.null_anon_devices.size());

  for (const auto& device : devices) {
    if (version_series_from(fold.tallies.at(device), device, fold.months)
            .tls12_exclusive()) {
      ++summary.tls12_exclusive_devices;
    }
  }
  return summary;
}

StudySummary summarize(const testbed::PassiveDataset& dataset) {
  return summarize(fold_dataset(dataset, study_months()));
}

StudySummary summarize(const store::DatasetCursor& cursor,
                       std::size_t threads) {
  FoldOptions options;
  options.threads = threads;
  return summarize(fold_store(cursor, study_months(), options));
}

std::string render_summary(const StudySummary& summary) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "devices: %d\n"
      "total TLS connections: %llu (paper: ~17M)\n"
      "per-device mean: %llu (paper: ~422K), median: %llu (paper: ~138K)\n"
      "TLS1.2-exclusive devices: %d (paper: 28/40)\n"
      "devices advertising multiple maximum versions: %d (paper: 20)\n"
      "connections advertising TLS 1.3: %.0f%% (paper: ~17%%; web ~60%%)\n"
      "connections advertising RC4: %.0f%% (paper: ~60%%; web ~10%%)\n"
      "devices ever advertising NULL/ANON suites: %d (paper: 0)\n",
      summary.device_count,
      static_cast<unsigned long long>(summary.total_connections),
      static_cast<unsigned long long>(summary.mean_per_device),
      static_cast<unsigned long long>(summary.median_per_device),
      summary.tls12_exclusive_devices,
      summary.devices_advertising_multiple_max_versions,
      summary.tls13_advertising_fraction * 100.0,
      summary.rc4_advertising_fraction * 100.0,
      summary.null_anon_advertising_devices);
  return buf;
}

}  // namespace iotls::analysis
