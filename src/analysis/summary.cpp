#include "analysis/summary.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "analysis/longitudinal.hpp"

namespace iotls::analysis {

StudySummary summarize(const testbed::PassiveDataset& dataset) {
  StudySummary summary;
  summary.total_connections = dataset.total_connections();

  const auto devices = dataset.devices();
  summary.device_count = static_cast<int>(devices.size());

  std::vector<std::uint64_t> per_device;
  for (const auto& device : devices) {
    per_device.push_back(dataset.device_connections(device));
  }
  if (!per_device.empty()) {
    summary.mean_per_device =
        summary.total_connections / per_device.size();
    std::sort(per_device.begin(), per_device.end());
    summary.median_per_device = per_device[per_device.size() / 2];
  }

  const auto months = study_months();
  std::uint64_t tls13_adv = 0;
  std::uint64_t rc4_adv = 0;
  std::map<std::string, std::set<tls::ProtocolVersion>> max_versions;
  std::set<std::string> null_anon_devices;

  for (const auto& group : dataset.groups()) {
    const auto& rec = group.record;
    if (!rec.advertised_versions.empty()) {
      const auto max = rec.max_advertised_version();
      max_versions[rec.device].insert(max);
      if (max == tls::ProtocolVersion::Tls1_3) tls13_adv += group.count;
    }
    const bool has_rc4 = std::any_of(
        rec.advertised_suites.begin(), rec.advertised_suites.end(),
        [](std::uint16_t id) {
          const auto* info = tls::suite_info(id);
          return info != nullptr && info->cipher == tls::BulkCipher::Rc4;
        });
    if (has_rc4) rc4_adv += group.count;
    if (std::any_of(rec.advertised_suites.begin(),
                    rec.advertised_suites.end(),
                    tls::suite_is_null_or_anon)) {
      null_anon_devices.insert(rec.device);
    }
  }
  if (summary.total_connections > 0) {
    summary.tls13_advertising_fraction =
        static_cast<double>(tls13_adv) / summary.total_connections;
    summary.rc4_advertising_fraction =
        static_cast<double>(rc4_adv) / summary.total_connections;
  }
  for (const auto& [device, versions] : max_versions) {
    if (versions.size() > 1) {
      ++summary.devices_advertising_multiple_max_versions;
    }
  }
  summary.null_anon_advertising_devices =
      static_cast<int>(null_anon_devices.size());

  for (const auto& device : devices) {
    if (version_series(dataset, device, months).tls12_exclusive()) {
      ++summary.tls12_exclusive_devices;
    }
  }
  return summary;
}

std::string render_summary(const StudySummary& summary) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "devices: %d\n"
      "total TLS connections: %llu (paper: ~17M)\n"
      "per-device mean: %llu (paper: ~422K), median: %llu (paper: ~138K)\n"
      "TLS1.2-exclusive devices: %d (paper: 28/40)\n"
      "devices advertising multiple maximum versions: %d (paper: 20)\n"
      "connections advertising TLS 1.3: %.0f%% (paper: ~17%%; web ~60%%)\n"
      "connections advertising RC4: %.0f%% (paper: ~60%%; web ~10%%)\n"
      "devices ever advertising NULL/ANON suites: %d (paper: 0)\n",
      summary.device_count,
      static_cast<unsigned long long>(summary.total_connections),
      static_cast<unsigned long long>(summary.mean_per_device),
      static_cast<unsigned long long>(summary.median_per_device),
      summary.tls12_exclusive_devices,
      summary.devices_advertising_multiple_max_versions,
      summary.tls13_advertising_fraction * 100.0,
      summary.rc4_advertising_fraction * 100.0,
      summary.null_anon_advertising_devices);
  return buf;
}

}  // namespace iotls::analysis
