// Deterministic pseudo-random generators.
//
// Everything in the simulation draws randomness through `Rng` so that every
// experiment is exactly reproducible from a seed — the repeatability property
// the paper's probing methodology depends on (§4.2: "devices will follow the
// same procedure every time they are rebooted").
//
// The generator is xoshiro256** seeded via SplitMix64. Not cryptographically
// secure by design: this is simulation randomness, while the crypto substrate
// derives its nonces from explicit key material.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace iotls::common {

/// SplitMix64 — used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derive an independent stream from this seed and a label. Used to give
  /// each device/instance its own reproducible stream.
  static Rng derive(std::uint64_t seed, std::string_view label);

  /// The full generator state. Snapshot/restore lets memoisation layers
  /// (the RSA keypair cache) replay a generator's consumption exactly: a
  /// cache hit restores the post-generation state, so downstream draws are
  /// byte-identical to a cache miss.
  using State = std::array<std::uint64_t, 4>;
  [[nodiscard]] State state() const { return s_; }
  void set_state(const State& state) { s_ = state; }

  std::uint64_t next_u64();
  std::uint32_t next_u32();

  /// Uniform in [0, bound) via rejection sampling; bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Fill a buffer of n random bytes.
  Bytes bytes(std::size_t n);

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform(i)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Stable 64-bit FNV-1a hash of a string — used for label-derived seeds and
/// deterministic identifiers.
std::uint64_t fnv1a64(std::string_view text);

/// Stable child-seed derivation: split an independent stream off `parent`
/// for child `child` (an instance index, connection counter, …). Unlike the
/// xor folding `Rng::derive` uses for coarse per-experiment streams, both
/// inputs pass through SplitMix64 mixing, so sequential child ids (0, 1,
/// 2, …) land far apart and `split_seed(a, x) == split_seed(b, y)` requires
/// a full 64-bit collision — the property that makes fleet expansion
/// order-independent and shard-parallel safe: any worker can derive any
/// instance's stream from (parent, id) alone, in any order.
std::uint64_t split_seed(std::uint64_t parent, std::uint64_t child);

/// Label-keyed convenience overload: `split_seed(parent, fnv1a64(label))`.
std::uint64_t split_seed(std::uint64_t parent, std::string_view label);

}  // namespace iotls::common
