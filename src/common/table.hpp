// Plain-text table renderer used by the bench harnesses to print the
// paper's tables.
#pragma once

#include <string>
#include <vector>

namespace iotls::common {

/// Column-aligned ASCII table with a header row and a rule underneath it.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with two-space column gaps; short rows are padded with "".
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a row of month-fraction cells as a shaded heatmap strip, the text
/// analogue of the paper's Figs 1-3 cells. Fractions map to ' .:-=+*#%@'
/// deciles; negative values (no traffic) render as 'x' (the paper's gray).
std::string heat_strip(const std::vector<double>& fractions);

}  // namespace iotls::common
