#include "common/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace iotls::common {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string percent(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

bool hostname_matches(std::string_view pattern, std::string_view host) {
  const std::string p = to_lower(pattern);
  const std::string h = to_lower(host);
  if (p == h) return true;
  if (starts_with(p, "*.")) {
    const std::string_view suffix = std::string_view(p).substr(1);  // ".example.com"
    if (!ends_with(h, suffix)) return false;
    const std::string_view left = std::string_view(h).substr(0, h.size() - suffix.size());
    // The wildcard must cover exactly one non-empty label.
    return !left.empty() && left.find('.') == std::string_view::npos;
  }
  return false;
}

}  // namespace iotls::common
