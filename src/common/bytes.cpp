#include "common/bytes.hpp"

#include <algorithm>

namespace iotls::common {

Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string to_string(BytesView data) {
  return std::string(data.begin(), data.end());
}

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

bool constant_time_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u24(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::raw(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::raw(const Bytes& data) { raw(BytesView(data)); }

void ByteWriter::vec(BytesView data, int prefix_bytes) {
  const std::size_t n = data.size();
  switch (prefix_bytes) {
    case 1:
      if (n > 0xFF) throw ParseError("vec too long for u8 prefix");
      u8(static_cast<std::uint8_t>(n));
      break;
    case 2:
      if (n > 0xFFFF) throw ParseError("vec too long for u16 prefix");
      u16(static_cast<std::uint16_t>(n));
      break;
    case 3:
      if (n > 0xFFFFFF) throw ParseError("vec too long for u24 prefix");
      u24(static_cast<std::uint32_t>(n));
      break;
    default:
      throw ParseError("unsupported vec prefix size");
  }
  raw(data);
}

void ByteWriter::str(std::string_view text, int prefix_bytes) {
  vec(BytesView(reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size()),
      prefix_bytes);
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) throw ParseError("truncated buffer");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u24() {
  need(3);
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 2]);
  pos_ += 3;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t hi = u32();
  const std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes ByteReader::vec(int prefix_bytes) {
  std::size_t n = 0;
  switch (prefix_bytes) {
    case 1: n = u8(); break;
    case 2: n = u16(); break;
    case 3: n = u24(); break;
    default: throw ParseError("unsupported vec prefix size");
  }
  return raw(n);
}

std::string ByteReader::str(int prefix_bytes) {
  Bytes b = vec(prefix_bytes);
  return to_string(b);
}

ByteReader ByteReader::sub(int prefix_bytes) {
  std::size_t n = 0;
  switch (prefix_bytes) {
    case 1: n = u8(); break;
    case 2: n = u16(); break;
    case 3: n = u24(); break;
    default: throw ParseError("unsupported sub prefix size");
  }
  need(n);
  ByteReader r(data_.subspan(pos_, n));
  pos_ += n;
  return r;
}

void ByteReader::expect_end(std::string_view context) const {
  if (!empty()) {
    throw ParseError("trailing bytes after " + std::string(context));
  }
}

}  // namespace iotls::common
