#include "common/rng.hpp"

namespace iotls::common {

std::uint64_t SplitMix64::next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Rng Rng::derive(std::uint64_t seed, std::string_view label) {
  return Rng(seed ^ fnv1a64(label));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint32_t Rng::next_u32() {
  return static_cast<std::uint32_t>(next_u64() >> 32);
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("uniform(0)");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("range(lo > hi)");
  return lo + uniform(hi - lo + 1);
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t word = next_u64();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return out;
}

std::uint64_t split_seed(std::uint64_t parent, std::uint64_t child) {
  // Two parent-derived keys sandwich the child through a second SplitMix64
  // pass: the child id is whitened before it ever meets the parent state,
  // so structured ids (sequential, bit-sparse) cannot produce structured
  // seeds.
  SplitMix64 base(parent);
  const std::uint64_t k0 = base.next();
  const std::uint64_t k1 = base.next();
  SplitMix64 mix(child ^ k0);
  return mix.next() ^ k1;
}

std::uint64_t split_seed(std::uint64_t parent, std::string_view label) {
  return split_seed(parent, fnv1a64(label));
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace iotls::common
