#include "common/pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace iotls::common {

namespace {

/// Pool metrics (iotls_pool_*). Scheduling-dependent by nature — an
/// operator surface only, never an input to any experiment output.
struct PoolMetrics {
  obs::Counter& tasks = obs::MetricsRegistry::global().counter(
      "iotls_pool_tasks_total", "Tasks submitted to any ThreadPool");
  obs::Counter& steals = obs::MetricsRegistry::global().counter(
      "iotls_pool_steals_total",
      "Tasks taken from a sibling worker's deque");
  obs::Gauge& queue_depth_peak = obs::MetricsRegistry::global().gauge(
      "iotls_pool_queue_depth_peak",
      "Largest number of queued-but-unstarted tasks observed");
  obs::Gauge& workers = obs::MetricsRegistry::global().gauge(
      "iotls_pool_workers", "Worker count of the most recent ThreadPool");

  static PoolMetrics& get() {
    static PoolMetrics metrics;
    return metrics;
  }
};

}  // namespace

namespace {
thread_local int tl_worker_depth = 0;
}  // namespace

std::size_t default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolve_threads(std::size_t threads) {
  return threads == 0 ? default_threads() : threads;
}

bool ThreadPool::in_worker() { return tl_worker_depth > 0; }

ThreadPool::ThreadPool(std::size_t threads)
    : queues_(std::max<std::size_t>(1, threads)) {
  if (obs::metrics_enabled()) {
    PoolMetrics::get().workers.set(static_cast<double>(queues_.size()));
  }
  workers_.reserve(queues_.size());
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t queued = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++unfinished_;
    for (const auto& q : queues_) queued += q.size();
  }
  if (obs::metrics_enabled()) {
    auto& metrics = PoolMetrics::get();
    metrics.tasks.inc();
    metrics.queue_depth_peak.set_max(static_cast<double>(queued));
  }
  work_cv_.notify_one();
}

bool ThreadPool::pop_task(std::size_t index, std::function<void()>& out) {
  // Own queue first (front = submission order), then steal from the back
  // of the busiest sibling.
  if (!queues_[index].empty()) {
    out = std::move(queues_[index].front());
    queues_[index].pop_front();
    return true;
  }
  std::size_t victim = queues_.size();
  std::size_t most = 0;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i].size() > most) {
      most = queues_[i].size();
      victim = i;
    }
  }
  if (victim == queues_.size()) return false;
  out = std::move(queues_[victim].back());
  queues_[victim].pop_back();
  if (obs::metrics_enabled()) PoolMetrics::get().steals.inc();
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  ++tl_worker_depth;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    std::function<void()> task;
    if (pop_task(index, task)) {
      lock.unlock();
      {
        const obs::ProfileZone zone("pool/task");
        task();
      }
      lock.lock();
      if (--unfinished_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) break;
    work_cv_.wait(lock);
  }
  --tl_worker_depth;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

namespace detail {

void run_indexed(std::size_t threads, std::size_t count,
                 const std::function<void(std::size_t)>& task) {
  const std::size_t resolved = resolve_threads(threads);
  // Serial path: threads = 1, nothing to fan out, or we are already inside
  // a pool worker (running inline avoids nested wait_idle deadlocks). The
  // parallel path runs the very same task bodies and merges by index, so
  // both paths are bit-compatible by construction.
  if (resolved <= 1 || count <= 1 || ThreadPool::in_worker()) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  const obs::ProfileZone zone("pool/fan_out");
  std::vector<std::exception_ptr> errors(count);
  ThreadPool pool(std::min(resolved, count));
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&, i] {
      try {
        task(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace detail

}  // namespace iotls::common
