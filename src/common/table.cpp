#include "common/table.hpp"

#include <algorithm>

namespace iotls::common {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += cell;
      if (c + 1 < widths.size()) {
        line.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string heat_strip(const std::vector<double>& fractions) {
  static constexpr char kShades[] = {' ', '.', ':', '-', '=',
                                     '+', '*', '#', '%', '@'};
  std::string out;
  out.reserve(fractions.size());
  for (double f : fractions) {
    if (f < 0.0) {
      out.push_back('x');  // no traffic this month
      continue;
    }
    const double clamped = std::min(1.0, std::max(0.0, f));
    auto idx = static_cast<std::size_t>(clamped * 9.0 + 0.5);
    out.push_back(kShades[idx]);
  }
  return out;
}

}  // namespace iotls::common
