// Strict environment-knob parsing, shared by the library (IOTLS_CRYPTO_CACHE)
// and the bench binaries (IOTLS_THREADS, IOTLS_TRACE, IOTLS_METRICS, ...).
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace iotls::common {

/// Strictly parse a non-negative integer environment knob. Unset or empty
/// means `fallback`; anything else must be a complete base-10 integer ≥ 0.
/// Malformed values ("abc", "4x", "-1", "1e3") exit with a clear message
/// instead of silently truncating to 0 the way strtoul would.
inline long strict_env_long(const char* name, long fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0' || value < 0) {
    std::fprintf(stderr,
                 "error: %s='%s' is not a non-negative integer "
                 "(e.g. %s=4)\n",
                 name, env, name);
    std::exit(2);
  }
  return value;
}

/// Read a string environment knob. Unset or empty means `fallback`.
/// Centralised here so the rest of the tree stays getenv-free (the lint
/// determinism rule allows getenv only in this file).
inline const char* env_string(const char* name, const char* fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return env;
}

}  // namespace iotls::common
