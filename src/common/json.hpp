// Minimal JSON value model + strict recursive-descent parser.
//
// Consumers: iotls-bench-track (ingesting BENCH_*.json and run reports)
// and the run-report schema tests. Writing stays with the emitters — this
// module only reads. The parser is strict (complete document, no trailing
// garbage) and throws JsonError with a byte offset on malformed input.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace iotls::common {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }

  /// Typed accessors throw JsonError(0) on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& as_array() const;
  [[nodiscard]] const std::map<std::string, Json>& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Object member that must exist (throws naming the key otherwise).
  [[nodiscard]] const Json& at(const std::string& key) const;

  /// Parse a complete document (whitespace-padded OK, trailing garbage is
  /// an error).
  static Json parse(const std::string& text);

  // Construction (the parser and tests build values directly).
  static Json make_null() { return Json(); }
  static Json make_bool(bool v);
  static Json make_number(double v);
  static Json make_string(std::string v);
  static Json make_array(std::vector<Json> v);
  static Json make_object(std::map<std::string, Json> v);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace iotls::common
