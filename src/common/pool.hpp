// Work-stealing thread pool + deterministic parallel utilities.
//
// The experiment engine's concurrency substrate. The determinism contract
// (DESIGN.md "Concurrency model"): tasks must pre-derive any randomness
// from `(seed, label)` BEFORE dispatch, shared inputs are const during a
// fan-out, and `parallel_map` always merges results in input order — so a
// run at `threads = N` is byte-identical to `threads = 1` for every N.
//
// Scheduling: one deque per worker, submissions distributed round-robin;
// an idle worker pops from its own deque front and steals from the back
// of its siblings'. Tasks here are coarse (a whole per-device experiment),
// so a single pool mutex guards the deques — contention is negligible and
// the structure stays easy to reason about.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace iotls::common {

/// Hardware concurrency, never 0.
std::size_t default_threads();

/// Resolve a `threads` knob: 0 = hardware concurrency, otherwise as given.
std::size_t resolve_threads(std::size_t threads);

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Safe from any thread, including pool workers
  /// (nested submissions go to the queues like any other task; use
  /// `in_worker()` to decide whether blocking on the pool is safe).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Must not be called
  /// from a worker thread (it would deadlock the pool) — parallel_map's
  /// nested-call guard exists precisely to avoid this.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// True when the calling thread is a worker of *any* ThreadPool. Used as
  /// the nested-submission deadlock guard: a parallel_map issued from
  /// inside a task runs serially inline instead of blocking on the pool.
  static bool in_worker();

 private:
  void worker_loop(std::size_t index);
  bool pop_task(std::size_t index, std::function<void()>& out);

  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t next_queue_ = 0;
  std::size_t unfinished_ = 0;  // queued + running
  bool stop_ = false;
};

namespace detail {

/// Run `count` index tasks, writing into caller-provided slots. The first
/// failing index's exception is rethrown (deterministically, regardless of
/// completion order).
void run_indexed(std::size_t threads, std::size_t count,
                 const std::function<void(std::size_t)>& task);

}  // namespace detail

/// Apply `fn` to every item; results are returned in input order, so the
/// merge is deterministic for every thread count. `threads` semantics:
/// 0 = hardware concurrency, 1 = bit-compatible serial execution (same
/// code path, no pool). Exceptions: the lowest-index failure is rethrown.
template <typename Item, typename Fn>
auto parallel_map(std::size_t threads, const std::vector<Item>& items,
                  Fn&& fn) {
  using Result = std::decay_t<std::invoke_result_t<Fn&, const Item&>>;
  std::vector<std::optional<Result>> slots(items.size());
  detail::run_indexed(threads, items.size(), [&](std::size_t i) {
    slots[i].emplace(fn(items[i]));
  });
  std::vector<Result> out;
  out.reserve(items.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// Index-space fan-out for side-effecting tasks: fn(0) .. fn(count - 1).
/// Each index must touch only its own output slot (or synchronize).
template <typename Fn>
void parallel_for(std::size_t threads, std::size_t count, Fn&& fn) {
  detail::run_indexed(threads, count, [&](std::size_t i) { fn(i); });
}

}  // namespace iotls::common
