// Minimal lazy coroutine task for the session engine (src/engine/).
//
// `Task<T>` is the resumable unit the engine multiplexes: a TLS connection
// attempt (tls/client.hpp connect_task) or a whole per-device chain of
// connections. Tasks are lazy (nothing runs until started or awaited),
// single-consumer, and complete via symmetric transfer to their awaiting
// continuation — so a chain of `co_await`s costs no stack growth and no
// scheduler round-trips.
//
// The synchronous drivers run the same coroutines to completion in place
// via `run_sync` (tls/record_io.hpp's SyncRecordIo never suspends), which
// is what keeps the engine and synchronous paths byte-identical: one body,
// two schedulers.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <stdexcept>
#include <utility>

namespace iotls::common {

template <typename T>
class Task;

namespace detail {

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      // Hand control straight back to the awaiter, if any; otherwise park
      // at final-suspend so the owner can observe done() and destroy.
      auto& promise = h.promise();
      if (promise.continuation) return promise.continuation;
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

/// Lazily-started coroutine returning T. Move-only; owns the frame.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }
  [[nodiscard]] bool done() const { return handle_ == nullptr || handle_.done(); }

  /// Begin (or resume) execution until the first suspension point.
  void start() {
    if (handle_ != nullptr && !handle_.done()) handle_.resume();
  }

  /// Result extraction after completion; rethrows the task's exception.
  T take_result() {
    auto& promise = handle_.promise();
    if (promise.error) std::rethrow_exception(promise.error);
    return std::move(*promise.value);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // symmetric transfer into the child task
      }
      T await_resume() {
        auto& promise = handle.promise();
        if (promise.error) std::rethrow_exception(promise.error);
        return std::move(*promise.value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_ != nullptr) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }
  [[nodiscard]] bool done() const { return handle_ == nullptr || handle_.done(); }

  void start() {
    if (handle_ != nullptr && !handle_.done()) handle_.resume();
  }

  void take_result() {
    auto& promise = handle_.promise();
    if (promise.error) std::rethrow_exception(promise.error);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      void await_resume() {
        auto& promise = handle.promise();
        if (promise.error) std::rethrow_exception(promise.error);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_ != nullptr) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Drive a task to completion on the calling thread. The task must not
/// suspend on an unready awaiter (the synchronous RecordIo never does);
/// a task that parks anyway is a scheduling bug, reported loudly.
template <typename T>
T run_sync(Task<T> task) {
  task.start();
  if (!task.done()) {
    throw std::logic_error(
        "run_sync: task suspended in a synchronous context");
  }
  return task.take_result();
}

inline void run_sync(Task<void> task) {
  task.start();
  if (!task.done()) {
    throw std::logic_error(
        "run_sync: task suspended in a synchronous context");
  }
  task.take_result();
}

}  // namespace iotls::common
