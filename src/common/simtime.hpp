// Simulated calendar time.
//
// The paper's longitudinal results (Figs 1-3) are month-granular over
// Jan 2018 - Mar 2020; root-store histories are year-granular. `Month` is the
// unit of the passive dataset; `SimDate` adds day resolution for certificate
// validity windows.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace iotls::common {

/// A calendar month (year, 1-based month). Totally ordered; supports
/// difference and offset arithmetic in months.
struct Month {
  int year = 2018;
  int month = 1;  // 1..12

  auto operator<=>(const Month&) const = default;

  /// Months since year 0 — the canonical linear index.
  [[nodiscard]] int index() const { return year * 12 + (month - 1); }

  [[nodiscard]] Month plus(int months) const;
  [[nodiscard]] int diff(const Month& earlier) const {
    return index() - earlier.index();
  }

  /// "2018-01"
  [[nodiscard]] std::string str() const;
  /// "1/18" (paper-style axis label)
  [[nodiscard]] std::string short_label() const;

  static Month from_index(int idx);
};

/// Inclusive month range [first, last].
std::vector<Month> month_range(Month first, Month last);

/// The paper's passive measurement window: Jan 2018 .. Mar 2020 (27 months).
inline constexpr Month kStudyStart{2018, 1};
inline constexpr Month kStudyEnd{2020, 3};

/// A calendar date with day resolution, used for certificate validity.
/// Days are approximated as 30-day months (fidelity is not needed: all
/// validity decisions in the study happen at month scale or coarser).
struct SimDate {
  int year = 2018;
  int month = 1;
  int day = 1;

  auto operator<=>(const SimDate&) const = default;

  [[nodiscard]] std::int64_t serial() const {
    return (static_cast<std::int64_t>(year) * 12 + (month - 1)) * 30 +
           (day - 1);
  }

  [[nodiscard]] SimDate plus_days(int days) const;
  [[nodiscard]] SimDate plus_years(int years) const {
    return SimDate{year + years, month, day};
  }

  [[nodiscard]] Month to_month() const { return Month{year, month}; }
  [[nodiscard]] std::string str() const;

  static SimDate from_serial(std::int64_t serial);
  static SimDate start_of(Month m) { return SimDate{m.year, m.month, 1}; }
};

/// Monotonic simulation clock. Advanced explicitly by the testbed; consumed
/// by capture records and certificate checks.
class SimClock {
 public:
  explicit SimClock(SimDate start = SimDate{2021, 3, 1}) : now_(start) {}

  [[nodiscard]] SimDate now() const { return now_; }
  void set(SimDate d) { now_ = d; }
  void advance_days(int days) { now_ = now_.plus_days(days); }

 private:
  SimDate now_;
};

}  // namespace iotls::common
