// Byte-buffer primitives shared by every module.
//
// minitls serializes handshake messages into `Bytes`; the crypto substrate
// consumes and produces `Bytes`. A small big-endian reader/writer pair keeps
// wire-format code honest (every write has a symmetric read, and the parser
// throws `ParseError` instead of reading out of bounds).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace iotls::common {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Thrown when a wire-format buffer is malformed (truncated length prefix,
/// trailing garbage, out-of-range enum value, ...).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on protocol-logic violations (unexpected message, bad state).
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a cryptographic operation is misused (bad key size, ...).
class CryptoError : public std::runtime_error {
 public:
  explicit CryptoError(const std::string& what) : std::runtime_error(what) {}
};

/// Convert an ASCII string to bytes (no encoding transformation).
Bytes to_bytes(std::string_view text);

/// Convert bytes to a std::string (inverse of to_bytes).
std::string to_string(BytesView data);

/// Concatenate any number of byte buffers.
Bytes concat(std::initializer_list<BytesView> parts);

/// Constant-time equality (length leak is fine; contents are not leaked).
bool constant_time_equal(BytesView a, BytesView b);

/// Big-endian serializer. All minitls wire formats go through this.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u24(std::uint32_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(BytesView data);
  void raw(const Bytes& data);

  /// Write a length-prefixed vector (prefix_bytes in {1,2,3}).
  void vec(BytesView data, int prefix_bytes);

  /// Write a length-prefixed UTF-8/ASCII string.
  void str(std::string_view text, int prefix_bytes);

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Big-endian deserializer over a borrowed buffer. Throws ParseError on
/// any out-of-bounds read so parsers never need manual bounds checks.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u24();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] Bytes raw(std::size_t n);
  [[nodiscard]] Bytes vec(int prefix_bytes);
  [[nodiscard]] std::string str(int prefix_bytes);

  /// Sub-reader over a length-prefixed slice; advances this reader past it.
  [[nodiscard]] ByteReader sub(int prefix_bytes);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }

  /// Require that the buffer is fully consumed (catches trailing garbage).
  void expect_end(std::string_view context) const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace iotls::common
