// Hex encoding/decoding used for fingerprint strings, key material dumps
// and test vectors.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace iotls::common {

/// Lowercase hex encoding ("deadbeef").
std::string hex_encode(BytesView data);

/// Decode hex (case-insensitive). Throws ParseError on odd length or
/// non-hex characters.
Bytes hex_decode(std::string_view text);

}  // namespace iotls::common
