#include "common/simtime.hpp"

#include <cstdio>

namespace iotls::common {

Month Month::plus(int months) const { return from_index(index() + months); }

Month Month::from_index(int idx) {
  Month m;
  m.year = idx / 12;
  m.month = idx % 12 + 1;
  return m;
}

std::string Month::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d", year, month);
  return buf;
}

std::string Month::short_label() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d/%02d", month, year % 100);
  return buf;
}

std::vector<Month> month_range(Month first, Month last) {
  std::vector<Month> out;
  for (int i = first.index(); i <= last.index(); ++i) {
    out.push_back(Month::from_index(i));
  }
  return out;
}

SimDate SimDate::plus_days(int days) const {
  return from_serial(serial() + days);
}

SimDate SimDate::from_serial(std::int64_t serial) {
  SimDate d;
  d.day = static_cast<int>(serial % 30) + 1;
  const std::int64_t months = serial / 30;
  d.month = static_cast<int>(months % 12) + 1;
  d.year = static_cast<int>(months / 12);
  return d;
}

std::string SimDate::str() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

}  // namespace iotls::common
