#include "common/json.hpp"

#include <cctype>
#include <charconv>

namespace iotls::common {

bool Json::as_bool() const {
  if (kind_ != Kind::Bool) throw JsonError("not a bool", 0);
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::Number) throw JsonError("not a number", 0);
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::String) throw JsonError("not a string", 0);
  return string_;
}

const std::vector<Json>& Json::as_array() const {
  if (kind_ != Kind::Array) throw JsonError("not an array", 0);
  return array_;
}

const std::map<std::string, Json>& Json::as_object() const {
  if (kind_ != Kind::Object) throw JsonError("not an object", 0);
  return object_;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  if (found == nullptr) throw JsonError("missing key '" + key + "'", 0);
  return *found;
}

Json Json::make_bool(bool v) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = v;
  return j;
}

Json Json::make_number(double v) {
  Json j;
  j.kind_ = Kind::Number;
  j.number_ = v;
  return j;
}

Json Json::make_string(std::string v) {
  Json j;
  j.kind_ = Kind::String;
  j.string_ = std::move(v);
  return j;
}

Json Json::make_array(std::vector<Json> v) {
  Json j;
  j.kind_ = Kind::Array;
  j.array_ = std::move(v);
  return j;
}

Json Json::make_object(std::map<std::string, Json> v) {
  Json j;
  j.kind_ = Kind::Object;
  j.object_ = std::move(v);
  return j;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError(message, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) throw JsonError("unexpected end", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json::make_null();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    std::map<std::string, Json> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json::make_object(std::move(members));
    }
  }

  Json parse_array() {
    expect('[');
    std::vector<Json> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json::make_array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // Decode the BMP escape to UTF-8 (no surrogate-pair support —
          // the emitters in this tree never produce one).
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || end != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("bad number");
    }
    return Json::make_number(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace iotls::common
