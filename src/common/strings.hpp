// Small string helpers used across analysis/report code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iotls::common {

std::vector<std::string> split(std::string_view text, char delim);
std::string join(const std::vector<std::string>& parts,
                 std::string_view delim);
std::string trim(std::string_view text);
std::string to_lower(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// printf-style percentage "93%" with round-to-nearest.
std::string percent(double fraction);

/// Wildcard hostname match per RFC 6125 subset: pattern "*.example.com"
/// matches exactly one extra left-most label. Exact matches are
/// case-insensitive.
bool hostname_matches(std::string_view pattern, std::string_view host);

}  // namespace iotls::common
