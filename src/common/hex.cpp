#include "common/hex.hpp"

namespace iotls::common {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw ParseError("invalid hex character");
}

}  // namespace

std::string hex_encode(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0F]);
  }
  return out;
}

Bytes hex_decode(std::string_view text) {
  if (text.size() % 2 != 0) throw ParseError("odd-length hex string");
  Bytes out;
  out.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_nibble(text[i]) << 4) |
                                            hex_nibble(text[i + 1])));
  }
  return out;
}

}  // namespace iotls::common
