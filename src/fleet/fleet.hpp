// Fleet expansion model: the 40 catalog devices become millions of device
// *instances* — the synthetic internet the scan-campaign papers measure
// (PAPERS.md: IPv6 IoT host analysis, IIoT TLS-support scanning).
//
// An instance is a pure function of (fleet seed, instance index): model,
// region, firmware-update skew, clock drift, churn window and NAT re-key
// months are all drawn from `Rng(split_seed(seed, index))` in one fixed
// order. Nothing is ever materialized fleet-wide — any worker can expand
// any index independently, which is what makes shard-parallel synthesis
// byte-identical at every thread count and lets a crashed run regenerate
// exactly the shards it lost.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/simtime.hpp"
#include "devices/catalog.hpp"

namespace iotls::fleet {

/// Deployment region. Drives the sampling strata of the scan campaign and
/// the regional root-store variants (vendors ship different trust bundles
/// per market).
enum class Region : std::uint8_t {
  NorthAmerica,
  Europe,
  AsiaPacific,
  LatinAmerica,
  MiddleEastAfrica,
};

inline constexpr std::size_t kRegionCount = 5;

/// Short stable token used in instance labels and table rows.
std::string region_name(Region region);

/// All regions, in enum order (iteration helper).
std::array<Region, kRegionCount> all_regions();

/// Clock-drift buckets, in days the device clock runs ahead of true time.
/// Bucket 0 (no drift) dominates; the +400d tail models the years-stale
/// clocks that make otherwise-valid certificates look expired.
inline constexpr std::array<int, 4> kDriftDays = {0, -45, 45, 400};

/// Firmware-age bucket derived from update skew — a campaign stratum.
std::string age_bucket_name(int skew_months);

struct FleetOptions {
  std::uint64_t seed = 20210301;
  std::uint64_t instances = 1'000'000;
  /// Restrict expansion to these catalog models (empty = all 40). Tests
  /// use small subsets; the bench runs the whole catalog.
  std::vector<std::string> devices;
  /// Study window instances live in (month offsets are relative to first).
  common::Month first = common::kStudyStart;
  common::Month last = common::kStudyEnd;
};

/// One expanded instance. All month fields are offsets relative to
/// common::kStudyStart (the DeviceProfile::passive_*_offset convention),
/// clamped to the fleet window.
struct InstanceSpec {
  std::uint64_t index = 0;
  /// Stable fleet-unique id: split_seed(seed, index). Different fleet
  /// seeds produce disjoint id sets (64-bit collision odds).
  std::uint64_t uid = 0;
  std::uint32_t model = 0;  ///< index into FleetModel::models()
  Region region = Region::NorthAmerica;
  /// Firmware updates reach this instance `skew_months` late (0 = current).
  int skew_months = 0;
  /// Index into kDriftDays.
  int drift_bucket = 0;
  /// Alive month-offset window [birth, death] (churn: instances appear and
  /// disappear inside their model's passive window).
  int birth = 0;
  int death = 0;
  /// NAT re-key: from this month offset the instance shows up under a new
  /// identity suffix (-1 = keeps one identity for life).
  int rekey_month = -1;
};

/// The (lazily expanded) fleet. Holds only the resolved model list — never
/// the instances.
class FleetModel {
 public:
  explicit FleetModel(FleetOptions options);

  [[nodiscard]] const FleetOptions& options() const { return options_; }
  [[nodiscard]] const std::vector<const devices::DeviceProfile*>& models()
      const {
    return models_;
  }

  /// Expand instance `index` (pure; any order, any thread).
  [[nodiscard]] InstanceSpec instance(std::uint64_t index) const;

  /// Month-offset window a model's instances can be observed in: the
  /// model's passive window intersected with the fleet window. May be
  /// empty (second < first) when they don't overlap.
  [[nodiscard]] std::pair<int, int> window(std::uint32_t model) const;

  /// True if the instance generates traffic in the given month offset.
  [[nodiscard]] static bool alive_at(const InstanceSpec& spec,
                                     int month_offset);

  /// Wire identity of the instance as observed in `when` — encodes model,
  /// region, firmware-age bucket and uid so the store/query layers can
  /// slice by any of them, plus the NAT re-key suffix once the instance
  /// has re-keyed: "Yi Camera#apac#a6mo#1f00ddeadbeef012#k1".
  [[nodiscard]] std::string label(const InstanceSpec& spec,
                                  common::Month when) const;

  /// Vendor stratum of a model (first word of the catalog name).
  [[nodiscard]] std::string vendor(std::uint32_t model) const;

  /// Distinct firmware-update months of a model, sorted — the epoch
  /// boundaries instances slide along when their updates arrive late.
  [[nodiscard]] const std::vector<common::Month>& epochs(
      std::uint32_t model) const;

  /// Firmware epoch the instance runs in `when`: the number of updates
  /// that have reached it, i.e. updates whose month + skew_months ≤ when.
  [[nodiscard]] int epoch_at(const InstanceSpec& spec,
                             common::Month when) const;

  /// The month a given epoch's configuration became current (epoch 0 = the
  /// study start, i.e. no updates applied). Template synthesis freezes
  /// configs at this month.
  [[nodiscard]] common::Month epoch_month(std::uint32_t model,
                                          int epoch) const;

  /// The model profile frozen at `epoch` for probing/synthesis: instance
  /// configs pinned to epoch_month, updates cleared (skew is applied via
  /// epoch selection, not by replaying the update timeline). `seed_salt`
  /// re-keys the profile seed (regional root-store variants derive from
  /// split_seed(model seed, region)).
  [[nodiscard]] devices::DeviceProfile frozen_profile(
      std::uint32_t model, int epoch, std::uint64_t seed_salt = 0) const;

 private:
  FleetOptions options_;
  std::vector<const devices::DeviceProfile*> models_;
  std::vector<std::vector<common::Month>> epochs_;
};

}  // namespace iotls::fleet
