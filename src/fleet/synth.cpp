#include "fleet/synth.hpp"

#include <algorithm>
#include <cstdio>  // snprintf for shard names (not raw file I/O)
#include <filesystem>
#include <numeric>

#include "common/pool.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "store/reader.hpp"
#include "testbed/testbed.hpp"

namespace iotls::fleet {

namespace {

struct FleetMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  obs::Counter& instances = reg.counter(
      "iotls_fleet_instances_synthesized_total",
      "Fleet instances expanded and written to the capture store");

  obs::Counter& template_sets = reg.counter(
      "iotls_fleet_template_sets_total",
      "Template sets computed by sandbox replay (model x epoch x drift)");

  obs::Counter& template_handshakes = reg.counter(
      "iotls_fleet_template_handshakes_total",
      "Real handshakes run while computing fleet template sets");

  static FleetMetrics& get() {
    static FleetMetrics metrics;
    return metrics;
  }
};

/// Pick `want` distinct values from [base, base + size), sorted — partial
/// Fisher-Yates over a scratch index vector, all draws from `rng`.
std::vector<int> sample_sorted(common::Rng& rng, int base, std::size_t size,
                               std::size_t want) {
  std::vector<int> values(size);
  std::iota(values.begin(), values.end(), base);
  const std::size_t picks = std::min(want, size);
  for (std::size_t k = 0; k < picks; ++k) {
    std::swap(values[k], values[k + rng.uniform(size - k)]);
  }
  values.resize(picks);
  std::sort(values.begin(), values.end());
  return values;
}

}  // namespace

TemplateBank::TemplateBank(const FleetModel& fleet,
                           const pki::CaUniverse& universe)
    : fleet_(fleet), universe_(universe) {}

std::shared_ptr<const TemplateSet> TemplateBank::get(TemplateKey key) {
  const std::size_t shard_index =
      (static_cast<std::size_t>(key.model) * 31 +
       static_cast<std::size_t>(key.epoch) * 5 +
       static_cast<std::size_t>(key.drift_bucket)) %
      kShards;
  Shard& shard = shards_[shard_index];
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.sets.find(key);
    if (it != shard.sets.end()) return it->second;
  }
  // Compute outside the lock: a set is deterministic in its key, so two
  // workers racing on the same key do redundant (identical) work at worst.
  std::shared_ptr<const TemplateSet> computed = compute(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [it, inserted] = shard.sets.emplace(key, std::move(computed));
  if (inserted && obs::metrics_enabled()) {
    FleetMetrics::get().template_sets.inc();
    FleetMetrics::get().template_handshakes.inc(it->second->handshakes);
  }
  return it->second;
}

std::shared_ptr<const TemplateSet> TemplateBank::compute(
    TemplateKey key) const {
  const obs::ProfileZone zone("fleet/template_set");
  const devices::DeviceProfile& model = *fleet_.models()[key.model];
  const devices::DeviceProfile frozen =
      fleet_.frozen_profile(key.model, key.epoch);

  // A single-model sandbox supplies the network + evolving cloud farm; the
  // runtime is built over the frozen profile directly so the epoch's
  // configuration — not the live update timeline — drives every handshake.
  testbed::Testbed::Options tb_options;
  tb_options.seed = fleet_.options().seed;
  tb_options.universe = &universe_;
  tb_options.active_only = false;
  tb_options.devices = {model.name};
  testbed::Testbed testbed(tb_options);
  testbed::DeviceRuntime runtime(frozen, universe_, testbed.network());

  auto set = std::make_shared<TemplateSet>();
  const auto [first_off, last_off] = fleet_.window(key.model);
  for (int off = first_off; off <= last_off; ++off) {
    const common::Month month = common::kStudyStart.plus(off);
    // Mid-month sampling date, like the passive generator; the *device*
    // clock additionally drifts — the farm keeps true time, the client
    // validates certificates against what it believes the date is.
    testbed.set_date(common::SimDate::start_of(month).plus_days(14));
    const common::SimDate device_clock =
        testbed.date().plus_days(kDriftDays[static_cast<std::size_t>(
            key.drift_bucket)]);
    for (std::size_t d = 0; d < frozen.destinations.size(); ++d) {
      const std::size_t before = testbed.network().capture().size();
      (void)runtime.connect_to(frozen.destinations[d], device_clock);
      const auto& records = testbed.network().capture().records();
      auto& slot = set->records[{off, static_cast<int>(d)}];
      for (std::size_t i = before; i < records.size(); ++i) {
        net::HandshakeRecord record = records[i];
        record.month = month;
        slot.push_back(std::move(record));
      }
      ++set->handshakes;
    }
  }
  return set;
}

std::uint64_t TemplateBank::sets_computed() const {
  std::uint64_t n = 0;
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.sets.size();
  }
  return n;
}

std::uint64_t TemplateBank::handshakes_run() const {
  std::uint64_t n = 0;
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, set] : shard.sets) n += set->handshakes;
  }
  return n;
}

std::string fleet_shard_name(std::uint32_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "fleet-%06u%s", index,
                store::kShardSuffix);
  return name;
}

SynthReport synthesize_fleet(const SynthOptions& options,
                             const std::string& dir) {
  namespace fs = std::filesystem;
  const pki::CaUniverse& universe =
      options.universe != nullptr ? *options.universe
                                  : pki::CaUniverse::standard();
  const FleetModel fleet(options.fleet);
  TemplateBank bank(fleet, universe);

  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw store::StoreIoError("cannot create fleet store directory " + dir +
                              ": " + ec.message());
  }

  const std::uint64_t count = options.fleet.instances;
  const std::uint64_t per = std::max<std::uint64_t>(options.shard_instances, 1);
  const std::uint32_t shard_count =
      count == 0 ? 1 : static_cast<std::uint32_t>((count + per - 1) / per);

  struct ShardOutcome {
    store::ShardInfo info;
    bool reused = false;
    std::uint64_t connections = 0;
  };

  std::vector<std::uint32_t> indices(shard_count);
  std::iota(indices.begin(), indices.end(), 0u);
  auto outcomes = common::parallel_map(
      options.threads, indices, [&](const std::uint32_t index) {
        const fs::path path = fs::path(dir) / fleet_shard_name(index);
        store::ShardHeader header;
        header.seed = options.fleet.seed;
        header.first = options.fleet.first;
        header.last = options.fleet.last;
        header.shard_index = index;
        header.shard_count = shard_count;
        header.label = "fleet";

        if (fs::exists(path)) {
          if (!options.resume) {
            throw store::StoreIoError(
                "refusing to overwrite existing shard " + path.string() +
                " (set resume to recover a crashed run)");
          }
          // Keep the shard only if it is complete (footer present, every
          // CRC good) and belongs to exactly this fleet; anything else —
          // truncated mid-crash, stale seed — is regenerated in place.
          ShardOutcome outcome;
          bool reusable = false;
          try {
            store::ShardReader reader(path.string());
            if (reader.header() == header) {
              std::vector<testbed::PassiveConnectionGroup> block;
              while (reader.next(&block)) {
                for (const auto& group : block) {
                  outcome.connections += group.count;
                }
              }
              outcome.info.path = path.string();
              outcome.info.header = reader.header();
              outcome.info.groups = reader.groups_read();
              outcome.info.blocks = reader.blocks_read();
              outcome.info.bytes = fs::file_size(path);
              reusable = true;
            }
          } catch (const store::StoreError&) {
            reusable = false;
          }
          if (reusable) {
            outcome.reused = true;
            return outcome;
          }
          fs::remove(path);
        }

        const obs::ProfileZone zone("fleet/synth_shard");
        ShardOutcome outcome;
        store::ShardWriter writer(path.string(), header, options.block_bytes);
        const std::uint64_t begin = static_cast<std::uint64_t>(index) * per;
        const std::uint64_t end = std::min(count, begin + per);
        for (std::uint64_t id = begin; id < end; ++id) {
          const InstanceSpec spec = fleet.instance(id);
          if (spec.death < spec.birth) continue;  // window never overlapped
          // The observation stream is keyed by the instance uid alone —
          // like the spec itself, it is order- and shard-independent.
          common::Rng obs_rng(common::split_seed(spec.uid, "fleet-obs"));
          const std::size_t window_len =
              static_cast<std::size_t>(spec.death - spec.birth) + 1;
          const std::vector<int> months =
              sample_sorted(obs_rng, spec.birth, window_len,
                            options.months_per_instance);
          const auto& model = *fleet.models()[spec.model];
          for (const int off : months) {
            const common::Month month = common::kStudyStart.plus(off);
            const int epoch = fleet.epoch_at(spec, month);
            const auto set =
                bank.get({spec.model, epoch, spec.drift_bucket});
            const std::string device = fleet.label(spec, month);
            const std::vector<int> dests =
                sample_sorted(obs_rng, 0, model.destinations.size(),
                              options.dests_per_month);
            for (const int d : dests) {
              const std::uint64_t group_count = 1 + obs_rng.uniform(24);
              const auto it = set->records.find({off, d});
              if (it == set->records.end()) continue;
              for (const auto& record : it->second) {
                testbed::PassiveConnectionGroup group;
                group.record = record;
                group.record.device = device;
                group.count = group_count;
                outcome.connections += group.count;
                writer.add(group);
              }
            }
          }
        }
        outcome.info = writer.close();
        if (obs::metrics_enabled()) {
          FleetMetrics::get().instances.inc(end - begin);
        }
        return outcome;
      });

  SynthReport report;
  report.instances = count;
  report.shards = shard_count;
  for (const auto& outcome : outcomes) {
    if (outcome.reused) ++report.reused_shards;
    report.groups += outcome.info.groups;
    report.bytes += outcome.info.bytes;
    report.connections += outcome.connections;
  }
  report.template_sets = bank.sets_computed();
  report.template_handshakes = bank.handshakes_run();
  return report;
}

}  // namespace iotls::fleet
