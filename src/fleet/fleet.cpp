#include "fleet/fleet.hpp"

#include <algorithm>
#include <stdexcept>

namespace iotls::fleet {

namespace {

/// Region mix (roughly: consumer-IoT shipment shares). Cumulative
/// thresholds for a single uniform01 draw.
constexpr std::array<double, kRegionCount> kRegionCumulative = {
    0.35, 0.60, 0.80, 0.92, 1.0};

constexpr std::array<const char*, kRegionCount> kRegionNames = {
    "na", "eu", "apac", "latam", "mea"};

}  // namespace

std::string region_name(Region region) {
  return kRegionNames[static_cast<std::size_t>(region)];
}

std::array<Region, kRegionCount> all_regions() {
  return {Region::NorthAmerica, Region::Europe, Region::AsiaPacific,
          Region::LatinAmerica, Region::MiddleEastAfrica};
}

std::string age_bucket_name(int skew_months) {
  if (skew_months <= 0) return "cur";
  if (skew_months <= 6) return "6mo";
  if (skew_months <= 12) return "12mo";
  return "old";
}

FleetModel::FleetModel(FleetOptions options) : options_(std::move(options)) {
  const auto wanted = [this](const devices::DeviceProfile& profile) {
    return options_.devices.empty() ||
           std::find(options_.devices.begin(), options_.devices.end(),
                     profile.name) != options_.devices.end();
  };
  for (const auto& profile : devices::device_catalog()) {
    if (wanted(profile)) models_.push_back(&profile);
  }
  if (models_.empty()) {
    throw std::invalid_argument("fleet: no catalog models selected");
  }
  epochs_.resize(models_.size());
  for (std::size_t m = 0; m < models_.size(); ++m) {
    std::vector<common::Month>& months = epochs_[m];
    for (const auto& update : models_[m]->updates) {
      months.push_back(update.when);
    }
    std::sort(months.begin(), months.end(),
              [](common::Month a, common::Month b) {
                return a.index() < b.index();
              });
    months.erase(std::unique(months.begin(), months.end()), months.end());
  }
}

InstanceSpec FleetModel::instance(std::uint64_t index) const {
  InstanceSpec spec;
  spec.index = index;
  spec.uid = common::split_seed(options_.seed, index);
  // Every draw below comes from the uid-keyed stream in this fixed order —
  // the whole expansion contract lives in these few lines.
  common::Rng rng(spec.uid);
  spec.model = static_cast<std::uint32_t>(rng.uniform(models_.size()));
  const double region_draw = rng.uniform01();
  spec.region = Region::MiddleEastAfrica;
  for (std::size_t r = 0; r < kRegionCount; ++r) {
    if (region_draw < kRegionCumulative[r]) {
      spec.region = static_cast<Region>(r);
      break;
    }
  }
  // Firmware skew: most instances track updates; a tail runs months-old
  // firmware (the age strata of the campaign tables).
  spec.skew_months =
      rng.chance(0.55) ? 0 : 1 + static_cast<int>(rng.uniform(18));
  const double drift_draw = rng.uniform01();
  if (drift_draw < 0.92) {
    spec.drift_bucket = 0;
  } else if (drift_draw < 0.96) {
    spec.drift_bucket = 1;
  } else if (drift_draw < 0.99) {
    spec.drift_bucket = 2;
  } else {
    spec.drift_bucket = 3;
  }
  // Churn: most instances live through their model's whole window; the
  // rest appear and/or disappear inside it. Every draw is unconditional so
  // the stream shape never depends on earlier outcomes.
  const auto [window_start, window_end] = window(spec.model);
  const int span = std::max(0, window_end - window_start);
  const bool full_life = rng.chance(0.7);
  const int birth_draw = static_cast<int>(
      rng.uniform(static_cast<std::uint64_t>(span) + 1));
  const int death_draw = static_cast<int>(
      rng.uniform(static_cast<std::uint64_t>(span - birth_draw) + 1));
  spec.birth = window_start;
  spec.death = window_end;
  if (!full_life) {
    spec.birth = window_start + birth_draw;
    spec.death = spec.birth + death_draw;
  }
  const bool rekeys = rng.chance(0.15);
  const int rekey_draw = static_cast<int>(rng.uniform(
      static_cast<std::uint64_t>(std::max(0, spec.death - spec.birth)) + 1));
  if (rekeys) spec.rekey_month = spec.birth + rekey_draw;
  return spec;
}

std::pair<int, int> FleetModel::window(std::uint32_t model) const {
  const devices::DeviceProfile& profile = *models_[model];
  const int first_off = options_.first.diff(common::kStudyStart);
  const int last_off = options_.last.diff(common::kStudyStart);
  return {std::max(profile.passive_start_offset, first_off),
          std::min(profile.passive_end_offset, last_off)};
}

bool FleetModel::alive_at(const InstanceSpec& spec, int month_offset) {
  return month_offset >= spec.birth && month_offset <= spec.death;
}

std::string FleetModel::label(const InstanceSpec& spec,
                              common::Month when) const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string uid_hex(16, '0');
  for (int nibble = 0; nibble < 16; ++nibble) {
    uid_hex[15 - nibble] = kHex[(spec.uid >> (4 * nibble)) & 0xF];
  }
  std::string out = models_[spec.model]->name;
  out += '#';
  out += region_name(spec.region);
  out += "#a";
  out += age_bucket_name(spec.skew_months);
  out += '#';
  out += uid_hex;
  const int offset = when.diff(common::kStudyStart);
  if (spec.rekey_month >= 0 && offset >= spec.rekey_month) {
    out += "#k1";
  }
  return out;
}

std::string FleetModel::vendor(std::uint32_t model) const {
  const std::string& name = models_[model]->name;
  const std::size_t space = name.find(' ');
  return space == std::string::npos ? name : name.substr(0, space);
}

const std::vector<common::Month>& FleetModel::epochs(
    std::uint32_t model) const {
  return epochs_[model];
}

int FleetModel::epoch_at(const InstanceSpec& spec, common::Month when) const {
  int epoch = 0;
  for (const common::Month update : epochs_[spec.model]) {
    if (update.plus(spec.skew_months).index() <= when.index()) ++epoch;
  }
  return epoch;
}

common::Month FleetModel::epoch_month(std::uint32_t model, int epoch) const {
  if (epoch <= 0) return common::kStudyStart;
  const auto& months = epochs_[model];
  return months[static_cast<std::size_t>(
      std::min<int>(epoch, static_cast<int>(months.size())) - 1)];
}

devices::DeviceProfile FleetModel::frozen_profile(
    std::uint32_t model, int epoch, std::uint64_t seed_salt) const {
  devices::DeviceProfile profile = *models_[model];
  const common::Month frozen_at = epoch_month(model, epoch);
  for (auto& instance : profile.instances) {
    instance.config = models_[model]->config_at(instance.id, frozen_at);
  }
  profile.updates.clear();
  if (seed_salt != 0) {
    profile.seed = common::split_seed(profile.seed, seed_salt);
  }
  return profile;
}

}  // namespace iotls::fleet
