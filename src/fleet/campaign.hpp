// Internet-scale scan campaign over the synthetic fleet.
//
// The scan-campaign analogue of the paper's active experiments: instead of
// 40 lab devices, a sampled cross-section of the whole fleet is actively
// probed at one scan month — TLS support and negotiated posture (a plain
// handshake with the device's own endpoint), interception acceptance (the
// Table 2 NoValidation forgery), and deprecated-CA trust (the §4.2
// alert-differencing probe, fleet-wide). Like synthesis, probing runs once
// per distinct behaviour key (model x firmware epoch x region x drift) and
// fans out through engine::map; per-instance work is a table lookup.
// Results aggregate into per-vendor / per-region / per-firmware-age
// posture tables, and optionally a scan-record store that iotls-query can
// slice like any other capture store.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "net/capture.hpp"
#include "pki/universe.hpp"
#include "store/writer.hpp"
#include "tls/version.hpp"

namespace iotls::fleet {

struct CampaignOptions {
  FleetOptions fleet;
  /// Defaults to CaUniverse::standard().
  const pki::CaUniverse* universe = nullptr;
  /// Worker threads (0 = hardware concurrency). Tables and the scan store
  /// are byte-identical for every value.
  std::size_t threads = 0;
  /// Drive probe handshakes through per-worker session engines
  /// (DESIGN.md §14); outputs are byte-identical either way.
  bool engine = false;
  /// The month the scan runs in (instances dead by then are skipped).
  common::Month scan_month = common::kStudyEnd;
  /// Sampling plan: per-region strata fractions. Each alive instance is
  /// selected by an instance-keyed Bernoulli draw, so the sample — like
  /// everything else — is order- and thread-independent.
  std::array<double, kRegionCount> sample_fraction = {0.02, 0.02, 0.02,
                                                      0.02, 0.02};
  /// Instances per tally range (the fold granularity).
  std::uint64_t range_instances = 65536;
  /// Write sampled scan records here as a capture store (empty = don't).
  std::string scan_store_dir;
  std::size_t store_groups_per_shard = 4096;
};

/// Probe-bank key: instances sharing one are behaviorally identical under
/// active probing, so the campaign runs real handshakes once per key. The
/// region is part of the key (unlike passive synthesis) because regional
/// root-store variants change what the device trusts.
struct ProbeKey {
  std::uint32_t model = 0;
  int epoch = 0;
  Region region = Region::NorthAmerica;
  int drift_bucket = 0;

  auto operator<=>(const ProbeKey&) const = default;
};

/// What one behaviour key's active probes observed.
struct ProbeResult {
  bool tls_support = false;        ///< plain handshake completed
  bool validation_failed = false;  ///< plain handshake failed validation
  bool accepts_interception = false;  ///< NoValidation forgery compromised
  bool trusts_deprecated = false;  ///< deprecated CA present (alert diff)
  std::optional<tls::ProtocolVersion> established_version;
  std::optional<std::uint16_t> established_suite;
  /// Capture records of the plain scan connection (fallback retry
  /// included) — the rows the scan store is stamped from.
  std::vector<net::HandshakeRecord> scan_records;
  /// Real handshakes this key's probes put on the wire.
  std::uint64_t handshakes = 0;
};

/// Commutative posture tally for one stratum (merge = pointwise sum).
struct PostureCounts {
  std::uint64_t scanned = 0;
  std::uint64_t tls_support = 0;
  std::uint64_t tls13 = 0;
  std::uint64_t legacy_version = 0;  ///< established ≤ TLS 1.1
  std::uint64_t pfs = 0;
  std::uint64_t validation_failed = 0;
  std::uint64_t accepts_interception = 0;
  std::uint64_t trusts_deprecated = 0;

  void add(const ProbeResult& probe);
  void merge(const PostureCounts& other);
};

/// The campaign's figure analogues: posture by vendor, region and
/// firmware-age stratum.
struct CampaignTables {
  std::map<std::string, PostureCounts> by_vendor;
  std::map<std::string, PostureCounts> by_region;
  std::map<std::string, PostureCounts> by_age;
  std::uint64_t instances = 0;  ///< fleet size
  std::uint64_t alive = 0;      ///< alive at the scan month
  std::uint64_t scanned = 0;    ///< sampled into the scan

  void merge(const CampaignTables& other);

  /// Rendered tables (deterministic; the campaign determinism suite
  /// compares these byte-for-byte across thread counts).
  [[nodiscard]] std::string render() const;
};

struct CampaignReport {
  CampaignTables tables;
  std::uint64_t probe_keys = 0;        ///< distinct behaviour keys probed
  std::uint64_t probe_handshakes = 0;  ///< real handshakes across probes
  /// Scan-record store totals (empty when no store dir was given).
  store::StoreWriteReport store;
};

/// "scan-0007.iotshard"
std::string scan_shard_name(std::uint32_t index);

/// Run the campaign. Deterministic in (options); byte-identical tables and
/// scan store at any thread count, engine on or off.
CampaignReport run_campaign(const CampaignOptions& options);

}  // namespace iotls::fleet
