#include "fleet/campaign.hpp"

#include <algorithm>
#include <cstdio>  // snprintf for shard names / percent cells (not file I/O)
#include <numeric>

#include "common/pool.hpp"
#include "common/table.hpp"
#include "engine/map.hpp"
#include "mitm/interceptor.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "testbed/testbed.hpp"
#include "tls/ciphersuite.hpp"

namespace iotls::fleet {

namespace {

struct CampaignMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  obs::Counter& keys = reg.counter(
      "iotls_fleet_probe_keys_total",
      "Distinct behaviour keys actively probed by fleet campaigns");

  obs::Counter& scanned = reg.counter(
      "iotls_fleet_instances_scanned_total",
      "Fleet instances sampled into scan campaigns");

  static CampaignMetrics& get() {
    static CampaignMetrics metrics;
    return metrics;
  }
};

/// The campaign's one targeted connection per instance — the device's
/// boot-time first endpoint, like the §4.2 prober.
const devices::DestinationSpec* scan_destination(
    const devices::DeviceProfile& profile) {
  for (const auto& dest : profile.destinations) {
    if (!dest.intermittent) return &dest;
  }
  return profile.destinations.empty() ? nullptr
                                      : &profile.destinations.front();
}

/// One interceptor-mediated connection; returns the alert the device sent
/// (the probe side channel), resetting failure state afterwards.
common::Task<std::optional<tls::Alert>> run_alert_probe(
    testbed::Testbed& testbed, testbed::DeviceRuntime& runtime,
    mitm::Interceptor& interceptor, const devices::DestinationSpec& dest,
    common::SimDate now, mitm::InterceptMode mode) {
  interceptor.set_mode(std::move(mode));
  interceptor.install(testbed.network());
  (void)co_await runtime.connect_to_task(dest, now);
  const auto interceptions = interceptor.drain();
  interceptor.uninstall(testbed.network());
  runtime.reset_failure_state();
  if (interceptions.empty()) co_return std::nullopt;
  co_return interceptions.front().alert_received;
}

/// Probe one behaviour key in its own single-model sandbox: plain scan,
/// Table 2 NoValidation forgery, then the §4.2 alert-differencing
/// deprecated-CA probe.
common::Task<ProbeResult> probe_key_task(const FleetModel& fleet,
                                         const pki::CaUniverse& universe,
                                         const CampaignOptions& options,
                                         ProbeKey key,
                                         engine::Engine* engine) {
  // No ProfileZone here: the frame suspends at every co_await and may
  // resume on another worker, so a zone would cross thread_local stacks.
  // The probe phase is timed as a whole from run_campaign instead.
  const devices::DeviceProfile& model = *fleet.models()[key.model];
  // Regional root-store variant: the profile seed is re-keyed per region,
  // so the runtime assembles a different (deterministic) trust bundle for
  // each market the vendor ships to.
  const devices::DeviceProfile frozen = fleet.frozen_profile(
      key.model, key.epoch, common::fnv1a64(region_name(key.region)));

  testbed::Testbed::Options tb_options;
  tb_options.seed = fleet.options().seed;
  tb_options.universe = &universe;
  tb_options.active_only = false;
  tb_options.devices = {model.name};
  testbed::Testbed testbed(tb_options);
  const common::SimDate scan_date =
      common::SimDate::start_of(options.scan_month).plus_days(14);
  testbed.set_date(scan_date);
  // The scanner and the farm keep true time; the *device* validates
  // against its drifted clock.
  const common::SimDate device_clock = scan_date.plus_days(
      kDriftDays[static_cast<std::size_t>(key.drift_bucket)]);

  testbed::DeviceRuntime runtime(frozen, universe, testbed.network());
  runtime.set_engine(engine);

  ProbeResult result;
  const devices::DestinationSpec* dest = scan_destination(frozen);
  if (dest == nullptr) co_return result;

  // Plain scan connection: TLS support + negotiated posture.
  const std::size_t before = testbed.network().capture().size();
  const testbed::ConnectionOutcome outcome =
      co_await runtime.connect_to_task(*dest, device_clock);
  const auto& records = testbed.network().capture().records();
  for (std::size_t i = before; i < records.size(); ++i) {
    net::HandshakeRecord record = records[i];
    record.month = options.scan_month;
    result.scan_records.push_back(std::move(record));
  }
  const tls::ClientResult& scan = outcome.final_result();
  result.tls_support = scan.success();
  result.validation_failed =
      scan.outcome == tls::HandshakeOutcome::ValidationFailed;
  result.established_version = scan.negotiated_version;
  result.established_suite = scan.negotiated_suite;
  runtime.reset_failure_state();

  // Table 2 forgery: does the instance accept an on-path interceptor?
  mitm::Interceptor interceptor(
      universe, testbed.cloud(),
      common::split_seed(fleet.options().seed, "campaign-mitm"));
  interceptor.set_mode(
      mitm::InterceptMode::make_attack(mitm::AttackKind::NoValidation));
  interceptor.install(testbed.network());
  (void)co_await runtime.connect_to_task(*dest, device_clock);
  for (const auto& interception : interceptor.drain()) {
    if (interception.compromised()) result.accepts_interception = true;
  }
  interceptor.uninstall(testbed.network());
  runtime.reset_failure_state();

  // Deprecated-CA trust via alert differencing: a deprecated root is
  // present iff the spoofed-CA chain draws a *different* alert than the
  // unknown-CA baseline. The candidate root is region-keyed — each
  // regional bundle gets checked against a deprecated CA it could
  // plausibly still carry.
  const auto& deprecated = universe.deprecated_ca_names();
  if (!deprecated.empty()) {
    const std::string& ca_name = deprecated[static_cast<std::size_t>(
        common::split_seed(fleet.options().seed, region_name(key.region)) %
        deprecated.size())];
    const auto alert_unknown = co_await run_alert_probe(
        testbed, runtime, interceptor, *dest, device_clock,
        mitm::InterceptMode::unknown_ca());
    const auto alert_spoofed = co_await run_alert_probe(
        testbed, runtime, interceptor, *dest, device_clock,
        mitm::InterceptMode::spoofed_ca(universe.authority(ca_name).root()));
    result.trusts_deprecated = alert_unknown.has_value() &&
                               alert_spoofed.has_value() &&
                               *alert_unknown != *alert_spoofed;
  }

  result.handshakes = testbed.network().capture().size();
  co_return result;
}

std::string percent_cell(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  char cell[16];
  std::snprintf(cell, sizeof(cell), "%.1f%%",
                100.0 * static_cast<double>(part) /
                    static_cast<double>(whole));
  return cell;
}

void render_stratum_table(std::string* out, const std::string& title,
                          const std::map<std::string, PostureCounts>& rows) {
  common::TextTable table({title, "scanned", "tls", "tls1.3", "legacy",
                           "pfs", "val-fail", "mitm", "depr-ca"});
  for (const auto& [name, counts] : rows) {
    table.add_row({name, std::to_string(counts.scanned),
                   percent_cell(counts.tls_support, counts.scanned),
                   percent_cell(counts.tls13, counts.scanned),
                   percent_cell(counts.legacy_version, counts.scanned),
                   percent_cell(counts.pfs, counts.scanned),
                   percent_cell(counts.validation_failed, counts.scanned),
                   percent_cell(counts.accepts_interception, counts.scanned),
                   percent_cell(counts.trusts_deprecated, counts.scanned)});
  }
  *out += table.render();
  *out += '\n';
}

}  // namespace

void PostureCounts::add(const ProbeResult& probe) {
  ++scanned;
  if (probe.tls_support) ++tls_support;
  if (probe.established_version.has_value()) {
    if (*probe.established_version == tls::ProtocolVersion::Tls1_3) ++tls13;
    if (tls::is_deprecated(*probe.established_version)) ++legacy_version;
  }
  if (probe.established_suite.has_value()) {
    const tls::CipherSuiteInfo* info =
        tls::suite_info(*probe.established_suite);
    if (info != nullptr && info->is_strong()) ++pfs;
  }
  if (probe.validation_failed) ++validation_failed;
  if (probe.accepts_interception) ++accepts_interception;
  if (probe.trusts_deprecated) ++trusts_deprecated;
}

void PostureCounts::merge(const PostureCounts& other) {
  scanned += other.scanned;
  tls_support += other.tls_support;
  tls13 += other.tls13;
  legacy_version += other.legacy_version;
  pfs += other.pfs;
  validation_failed += other.validation_failed;
  accepts_interception += other.accepts_interception;
  trusts_deprecated += other.trusts_deprecated;
}

void CampaignTables::merge(const CampaignTables& other) {
  for (const auto& [name, counts] : other.by_vendor) {
    by_vendor[name].merge(counts);
  }
  for (const auto& [name, counts] : other.by_region) {
    by_region[name].merge(counts);
  }
  for (const auto& [name, counts] : other.by_age) {
    by_age[name].merge(counts);
  }
  instances += other.instances;
  alive += other.alive;
  scanned += other.scanned;
}

std::string CampaignTables::render() const {
  std::string out;
  out += "fleet instances " + std::to_string(instances) + ", alive at scan " +
         std::to_string(alive) + ", scanned " + std::to_string(scanned) +
         "\n\n";
  render_stratum_table(&out, "vendor", by_vendor);
  render_stratum_table(&out, "region", by_region);
  render_stratum_table(&out, "fw-age", by_age);
  return out;
}

std::string scan_shard_name(std::uint32_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "scan-%04u%s", index,
                store::kShardSuffix);
  return name;
}

CampaignReport run_campaign(const CampaignOptions& options) {
  const pki::CaUniverse& universe =
      options.universe != nullptr ? *options.universe
                                  : pki::CaUniverse::standard();
  const FleetModel fleet(options.fleet);

  const std::uint64_t count = options.fleet.instances;
  const std::uint64_t per =
      std::max<std::uint64_t>(options.range_instances, 1);
  const std::size_t range_count =
      count == 0 ? 0 : static_cast<std::size_t>((count + per - 1) / per);
  std::vector<std::size_t> ranges(range_count);
  std::iota(ranges.begin(), ranges.end(), std::size_t{0});

  const int scan_offset =
      options.scan_month.diff(common::kStudyStart);
  // The sampling stream is keyed by (campaign salt, instance uid), so a
  // given instance's inclusion never depends on scan order or threads.
  const std::uint64_t sample_key =
      common::split_seed(options.fleet.seed, "campaign-sample");
  const auto sampled = [&](const InstanceSpec& spec) {
    common::Rng rng(common::split_seed(sample_key, spec.uid));
    return rng.chance(
        options.sample_fraction[static_cast<std::size_t>(spec.region)]);
  };

  // Phase 1 — discover the behaviour keys the sampled fleet spans.
  auto range_keys = common::parallel_map(
      options.threads, ranges, [&](const std::size_t range) {
        const obs::ProfileZone zone("fleet/campaign_discover");
        std::vector<ProbeKey> keys;
        const std::uint64_t begin = static_cast<std::uint64_t>(range) * per;
        const std::uint64_t end = std::min(count, begin + per);
        for (std::uint64_t id = begin; id < end; ++id) {
          const InstanceSpec spec = fleet.instance(id);
          if (!FleetModel::alive_at(spec, scan_offset)) continue;
          if (!sampled(spec)) continue;
          keys.push_back({spec.model, fleet.epoch_at(spec, options.scan_month),
                          spec.region, spec.drift_bucket});
        }
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        return keys;
      });
  std::vector<ProbeKey> keys;
  for (const auto& partial : range_keys) {
    keys.insert(keys.end(), partial.begin(), partial.end());
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  // Phase 2 — probe each key once, fanned through the session engine knob.
  // (Timed here rather than inside probe_key_task: coroutine frames hop
  // workers across co_await, which ProfileZone's thread-local stack
  // cannot span.)
  auto probe_results = [&] {
    const obs::ProfileZone zone("fleet/campaign_probe");
    return engine::map(options.threads, options.engine, keys,
                       [&](const ProbeKey& key, engine::Engine* engine) {
                         return probe_key_task(fleet, universe, options, key,
                                               engine);
                       });
  }();
  std::map<ProbeKey, const ProbeResult*> probes;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    probes.emplace(keys[i], &probe_results[i]);
  }

  // Phase 3 — tally every sampled instance against its key's probe, and
  // collect its scan-store rows, in parallel ranges merged in input order.
  struct TallyRange {
    CampaignTables tables;
    std::vector<testbed::PassiveConnectionGroup> groups;
  };
  const bool want_store = !options.scan_store_dir.empty();
  auto tallies = common::parallel_map(
      options.threads, ranges, [&](const std::size_t range) {
        const obs::ProfileZone zone("fleet/campaign_tally");
        TallyRange tally;
        const std::uint64_t begin = static_cast<std::uint64_t>(range) * per;
        const std::uint64_t end = std::min(count, begin + per);
        for (std::uint64_t id = begin; id < end; ++id) {
          const InstanceSpec spec = fleet.instance(id);
          if (!FleetModel::alive_at(spec, scan_offset)) continue;
          ++tally.tables.alive;
          if (!sampled(spec)) continue;
          const ProbeKey key{spec.model,
                             fleet.epoch_at(spec, options.scan_month),
                             spec.region, spec.drift_bucket};
          const ProbeResult& probe = *probes.at(key);
          ++tally.tables.scanned;
          tally.tables.by_vendor[fleet.vendor(spec.model)].add(probe);
          tally.tables.by_region[region_name(spec.region)].add(probe);
          tally.tables.by_age[age_bucket_name(spec.skew_months)].add(probe);
          if (want_store) {
            const std::string device = fleet.label(spec, options.scan_month);
            for (const auto& record : probe.scan_records) {
              testbed::PassiveConnectionGroup group;
              group.record = record;
              group.record.device = device;
              tally.groups.push_back(std::move(group));
            }
          }
        }
        return tally;
      });

  CampaignReport report;
  for (const auto& tally : tallies) {
    report.tables.merge(tally.tables);
  }
  report.tables.instances = count;
  report.probe_keys = keys.size();
  for (const auto& probe : probe_results) {
    report.probe_handshakes += probe.handshakes;
  }
  if (obs::metrics_enabled()) {
    CampaignMetrics::get().keys.inc(report.probe_keys);
    CampaignMetrics::get().scanned.inc(report.tables.scanned);
  }

  if (want_store) {
    testbed::PassiveDataset dataset;
    for (auto& tally : tallies) {
      for (auto& group : tally.groups) dataset.add(std::move(group));
    }
    store::StoreOptions store_options;
    store_options.layout = store::ShardLayout::FixedSize;
    store_options.groups_per_shard = options.store_groups_per_shard;
    store_options.threads = options.threads;
    store_options.seed = options.fleet.seed;
    store_options.first = options.fleet.first;
    store_options.last = options.fleet.last;
    store_options.shard_namer = scan_shard_name;
    report.store =
        store::write_store(dataset, options.scan_store_dir, store_options);
  }
  return report;
}

}  // namespace iotls::fleet
