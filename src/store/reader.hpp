// Streaming readers for the capture store.
//
// `ShardReader` walks one shard file block by block — at most one decoded
// block is resident — verifying the magic, the header CRC, every block CRC
// and the footer totals as it goes. Any violation raises a typed
// StoreError; a shard can never be silently read as partial data.
//
// `DatasetCursor` strings sorted shards into one logical group stream for
// the out-of-core analyses; per-shard access (`shard_paths()`) is the unit
// of parallel folding.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "store/codec.hpp"
#include "store/format.hpp"
#include "store/io.hpp"
#include "testbed/longitudinal.hpp"

namespace iotls::store {

class ShardReader {
 public:
  /// Open and validate magic + header. Throws StoreFormatError (bad magic,
  /// bad version), StoreCorruptionError (header CRC/truncation) or
  /// StoreIoError (cannot open).
  explicit ShardReader(const std::string& path);

  [[nodiscard]] const ShardHeader& header() const { return header_; }
  [[nodiscard]] const std::string& path() const { return file_.path(); }

  /// Decode the next group block into `out` (replacing its contents).
  /// Returns false once the footer has been reached and verified. Throws a
  /// typed StoreError on any corruption — including EOF before the footer
  /// and trailing bytes after it.
  [[nodiscard]] bool next(std::vector<testbed::PassiveConnectionGroup>* out);

  [[nodiscard]] std::uint64_t groups_read() const { return groups_; }
  [[nodiscard]] std::uint64_t blocks_read() const { return blocks_; }
  [[nodiscard]] bool finished() const { return finished_; }

  /// The parsed footer; valid only once `next()` has returned false.
  [[nodiscard]] const ShardFooter& footer() const { return footer_; }

 private:
  common::Bytes read_block(std::uint8_t* type_out);

  CheckedFile file_;
  ShardHeader header_;
  StringDictionary dict_;
  ShardFooter footer_;
  std::vector<std::uint64_t> block_groups_;  // per-block counts, vs stats
  std::uint64_t groups_ = 0;
  std::uint64_t blocks_ = 0;
  bool finished_ = false;
};

// ---------------------------------------------------------------------------
// Random-access shard index (the query layer's entry point)
// ---------------------------------------------------------------------------

/// Location of one framed group block inside a shard file. `offset` points
/// at the frame's type byte; `length` is the payload length (the frame adds
/// the 9-byte type+length+CRC prelude).
struct BlockRef {
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
};

/// Everything needed to fetch and decode any block of a shard standalone:
/// header, footer (with stats and full dictionary when the shard carries
/// the extension) and the byte offsets of every group block.
struct ShardIndex {
  std::string path;
  ShardHeader header;
  ShardFooter footer;
  std::vector<BlockRef> blocks;
};

/// Build a shard's index by walking frame headers only — each block's
/// payload is seeked over, not read, so indexing costs O(blocks) small
/// reads regardless of shard size. Verifies magic, header CRC, the footer
/// CRC and the footer totals against the walked frames. Block payload CRCs
/// are NOT checked here (BlockFetcher checks each block it actually reads).
ShardIndex read_shard_index(const std::string& path);

/// Random-access reads of individual group blocks, seek + CRC-check per
/// fetch. Keeps its own file handle; not thread-safe (use one per worker).
class BlockFetcher {
 public:
  explicit BlockFetcher(const ShardIndex& index);

  /// Read and CRC-check block `i`'s payload. Throws StoreCorruptionError on
  /// checksum mismatch or truncation, std::out_of_range on a bad index.
  [[nodiscard]] common::Bytes fetch(std::size_t i);

 private:
  const ShardIndex& index_;
  CheckedFile file_;
};

/// Sorted shard paths of a store directory. Throws StoreIoError if the
/// directory cannot be read, or — unless `allow_empty` — if it holds no
/// shards (merge/compact tolerate shard-less inputs; readers do not).
std::vector<std::string> list_shards(const std::string& dir,
                                     bool allow_empty = false);

/// A read-only view over a store: iterate every group in shard order
/// without ever holding a whole shard in memory. Cheap to copy; `for_each`
/// opens its own readers, so a cursor can be consumed repeatedly and
/// concurrently.
class DatasetCursor {
 public:
  explicit DatasetCursor(std::vector<std::string> shard_paths);

  /// Cursor over `list_shards(dir)`.
  static DatasetCursor open(const std::string& dir);

  [[nodiscard]] const std::vector<std::string>& shard_paths() const {
    return shard_paths_;
  }

  /// Visit every group of every shard, in shard order then block order.
  void for_each(
      const std::function<void(const testbed::PassiveConnectionGroup&)>& fn)
      const;

 private:
  std::vector<std::string> shard_paths_;
};

/// Full validation result for one shard or a whole store.
struct ValidateReport {
  std::uint64_t shards = 0;
  std::uint64_t groups = 0;
  std::uint64_t blocks = 0;
  std::uint64_t bytes = 0;
};

/// Stream a shard end to end, checking every frame. Throws on any defect.
ValidateReport validate_shard(const std::string& path);

/// Validate every shard of a store (parallel over shards; 0 = hardware
/// concurrency). Also checks that shard_index/shard_count fields are
/// mutually consistent. Throws on the first defect (lowest shard index).
ValidateReport validate_store(const std::string& dir, std::size_t threads = 0);

/// Materialize a store into memory (the bridge back to the in-memory
/// analyses and the TSV release format).
testbed::PassiveDataset read_store(const std::string& dir);

}  // namespace iotls::store
