// Durable capture store — on-disk format constants and typed errors.
//
// A *store* is a directory of append-only *shard* files holding
// `PassiveConnectionGroup` streams. Every shard is self-describing and
// self-checking so corruption and truncation are detected, never silently
// read (DESIGN.md §11):
//
//   [magic "IOTLSSHD"] [header payload] [header crc32]
//   [block]*                      framed: type, payload length, payload crc
//   [footer block]                group/connection totals; doubles as the
//                                 end-of-shard marker (EOF before the footer
//                                 means the tail was truncated)
//
// Block payloads are codec-compressed (varint + delta + per-shard string
// interning, src/store/codec.hpp). All fixed-width header/frame integers are
// big-endian via common::ByteWriter.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"
#include "common/simtime.hpp"

namespace iotls::store {

/// Root of the store error hierarchy. Every failure the store can produce
/// is a subclass — callers (the CLI, the analyses) can rely on catching
/// `StoreError` and never seeing a raw std::runtime_error or a crash.
class StoreError : public std::runtime_error {
 public:
  explicit StoreError(const std::string& what) : std::runtime_error(what) {}
};

/// Operating-system I/O failure: open/create/read/write/flush errors.
class StoreIoError : public StoreError {
 public:
  explicit StoreIoError(const std::string& what) : StoreError(what) {}
};

/// Structurally invalid data: wrong magic, unsupported format version,
/// malformed codec payload, unknown block type, out-of-range dictionary id.
class StoreFormatError : public StoreError {
 public:
  explicit StoreFormatError(const std::string& what) : StoreError(what) {}
};

/// Damaged data that was once valid: CRC mismatch, truncated tail block,
/// missing footer, footer totals disagreeing with the blocks read.
class StoreCorruptionError : public StoreError {
 public:
  explicit StoreCorruptionError(const std::string& what) : StoreError(what) {}
};

/// Shard file magic: 8 bytes, never versioned (the version is a header
/// field so mismatches produce a typed error, not a failed magic check).
inline constexpr std::array<std::uint8_t, 8> kShardMagic = {
    'I', 'O', 'T', 'L', 'S', 'S', 'H', 'D'};

/// Bumped on any incompatible layout/codec change.
inline constexpr std::uint16_t kFormatVersion = 1;

/// Shard filename suffix; a store directory is scanned for these.
inline constexpr const char* kShardSuffix = ".iotshard";

// Block frame types.
inline constexpr std::uint8_t kBlockGroups = 0x01;
inline constexpr std::uint8_t kBlockFooter = 0xFE;

/// Upper bound on a block payload — a sanity check that turns a corrupted
/// length field into a typed error instead of a giant allocation.
inline constexpr std::uint32_t kMaxBlockPayload = 64u << 20;  // 64 MiB

/// Self-describing shard header (everything after the magic, CRC-protected).
struct ShardHeader {
  /// Seed of the generator run the dataset came from (provenance metadata).
  std::uint64_t seed = 0;
  /// Study window; `first` is also the month-delta baseline for each block.
  common::Month first = common::kStudyStart;
  common::Month last = common::kStudyEnd;
  /// Position of this shard within its store.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Shard label: the device name under the per-device layout, "" otherwise.
  std::string label;

  bool operator==(const ShardHeader&) const = default;
};

/// Serialize / parse the header payload (the bytes between magic and the
/// header CRC). Parsing throws StoreFormatError on malformed input.
common::Bytes encode_shard_header(const ShardHeader& header);
ShardHeader decode_shard_header(common::BytesView payload);

/// CRC-32 (IEEE 802.3, reflected), the per-block checksum.
std::uint32_t crc32(common::BytesView data);

}  // namespace iotls::store
