// Compact record codec for the capture store.
//
// Groups are packed with LEB128 varints, zigzag deltas (months relative to
// the previous group in the block, u16 id lists relative to the previous
// entry) and a per-shard string-interning dictionary: device/destination
// names appear once per shard, groups carry small integer ids. New
// dictionary entries ride in the block that first uses them, so a shard is
// decodable in one forward streaming pass — the reader never needs more
// than one block in memory.
//
// Block payload layout (framed and CRC'd by writer/reader, format.hpp):
//   varint new_dict_entries; [varint len, bytes]*   strings, id = next slot
//   varint group_count; [encoded group]*            month delta base resets
//                                                   to header.first per block
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "store/format.hpp"
#include "testbed/longitudinal.hpp"

namespace iotls::store {

// ---------------------------------------------------------------------------
// Varint primitives (exposed for the codec property tests)
// ---------------------------------------------------------------------------

/// Append an LEB128-encoded unsigned varint.
void put_varint(common::Bytes* out, std::uint64_t value);

/// Zigzag-map a signed value and append it as a varint.
void put_svarint(common::Bytes* out, std::int64_t value);

/// Bounds-checked varint decoder over a borrowed buffer; throws
/// StoreFormatError on overrun or a non-minimal > 10-byte encoding.
class CodecReader {
 public:
  explicit CodecReader(common::BytesView data) : data_(data) {}

  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::int64_t svarint();
  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::string str(std::size_t len);
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }

 private:
  common::BytesView data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Per-shard dictionary
// ---------------------------------------------------------------------------

/// Append-only string interner. Writer and reader grow identical tables:
/// the writer assigns ids in order of first use, the reader replays the
/// dictionary sections block by block.
class StringDictionary {
 public:
  /// Writer side: id of `text`, interning it (and recording it as pending
  /// for the current block) on first use.
  std::uint32_t intern(const std::string& text);

  /// New entries interned since the last `take_pending()`, in id order.
  [[nodiscard]] std::vector<std::string> take_pending();

  /// Reader side: append the next entry (ids are assigned sequentially).
  void append(std::string text);

  /// Lookup; throws StoreFormatError for an out-of-range id.
  [[nodiscard]] const std::string& at(std::uint32_t id) const;

  [[nodiscard]] std::size_t size() const { return by_id_.size(); }

  /// Every entry in id order (the extended footer persists this).
  [[nodiscard]] const std::vector<std::string>& entries() const {
    return by_id_;
  }

 private:
  std::vector<std::string> by_id_;
  std::vector<std::string> pending_;
  // Hashed lookup: fleet-scale shards intern one label per *instance*
  // (hundreds of thousands of distinct strings, nearly every intern a
  // miss), where a flat sorted vector's O(n) insert turns quadratic. Ids
  // are assigned in first-use order either way, so the container choice
  // never reaches the wire format.
  std::unordered_map<std::string, std::uint32_t> ids_;
};

// ---------------------------------------------------------------------------
// Per-block column summaries (extended footer, DESIGN.md §12)
// ---------------------------------------------------------------------------

/// Bit for a protocol version in the stats masks: wire code - 0x0300.
std::uint8_t version_stats_bit(tls::ProtocolVersion v);

/// Min/max + occurrence summaries of one group block's columns, written to
/// the extended shard footer so the query layer can skip whole blocks
/// without reading their payloads. Every field is a *conservative union*
/// over the block's rows: a predicate that cannot match the summary cannot
/// match any row.
struct BlockStats {
  std::uint64_t groups = 0;
  /// Dictionary ids of the lexicographically smallest / largest device and
  /// destination strings in the block.
  std::uint32_t device_min_id = 0, device_max_id = 0;
  std::uint32_t dest_min_id = 0, dest_max_id = 0;
  /// Month::index() range.
  std::uint32_t month_min = 0, month_max = 0;
  std::uint64_t count_min = 0, count_max = 0;
  /// Union of advertised versions (bit = version_stats_bit).
  std::uint8_t adv_version_mask = 0;
  /// Established-version/suite occurrence: bits 0-4 = version present,
  /// kEstNoneBit = a row without an established version, kEstSuiteBit = a
  /// row with an established suite, kEstNoSuiteBit = a row without one.
  std::uint8_t est_version_mask = 0;
  std::uint16_t est_suite_min = 0xFFFF, est_suite_max = 0;
  /// Boolean-column occurrence, one (true-seen, false-seen) bit pair per
  /// column: complete 0-1, appdata 2-3, sni 4-5, staple 6-7.
  std::uint8_t bool_mask = 0;
  /// AlertDirection values present (bit = enum value, 0-2).
  std::uint8_t alert_dir_mask = 0;
  /// Bloom mask of advertised suite ids (bit = id % 64).
  std::uint64_t suite_bloom = 0;

  static constexpr std::uint8_t kEstNoneBit = 1u << 5;
  static constexpr std::uint8_t kEstSuiteBit = 1u << 6;
  static constexpr std::uint8_t kEstNoSuiteBit = 1u << 7;

  bool operator==(const BlockStats&) const = default;
};

// ---------------------------------------------------------------------------
// Block codec
// ---------------------------------------------------------------------------

/// Streaming encoder state for one block: the dictionary persists across
/// blocks, the month-delta baseline resets each block. With `stats`
/// enabled the encoder also accumulates the block's column summaries for
/// the extended footer.
class BlockEncoder {
 public:
  explicit BlockEncoder(common::Month delta_base, bool stats = false)
      : delta_base_(delta_base), stats_enabled_(stats) {}

  /// Append one group to the pending block.
  void add(const testbed::PassiveConnectionGroup& group,
           StringDictionary* dict);

  /// Assemble the block payload (dictionary section + group section) and
  /// reset for the next block.
  [[nodiscard]] common::Bytes finish(StringDictionary* dict);

  /// Column summaries of the block just `finish()`ed (stats mode only).
  [[nodiscard]] const BlockStats& last_stats() const { return last_stats_; }

  [[nodiscard]] std::size_t pending_groups() const { return count_; }
  /// Encoded size of the group section so far (flush heuristic).
  [[nodiscard]] std::size_t pending_bytes() const { return body_.size(); }

 private:
  common::Month delta_base_;
  int prev_month_index_;
  common::Bytes body_;
  std::size_t count_ = 0;
  bool fresh_ = true;
  bool stats_enabled_;
  BlockStats last_stats_;
  // Min/max tracking for the pending block (compared as strings, stored as
  // dictionary ids).
  BlockStats pending_stats_;
  std::string device_min_, device_max_, dest_min_, dest_max_;
};

/// Decode a whole block payload, appending groups to `out`. The dictionary
/// is extended with the block's new entries first (unless `dict_preloaded`,
/// in which case the block's dictionary section is skipped — the caller has
/// already loaded the shard's full dictionary from an extended footer).
/// Throws StoreFormatError on any structural violation (the frame CRC has
/// already been checked, so a failure here means an encoder bug or a forged
/// frame).
///
/// This is the naive decode-everything path — the full-scan oracle the
/// differential query suite measures `ProjectedBlockCursor` against. Keep
/// the two implementations independent.
void decode_block(common::BytesView payload, const ShardHeader& header,
                  StringDictionary* dict,
                  std::vector<testbed::PassiveConnectionGroup>* out,
                  bool dict_preloaded = false);

// ---------------------------------------------------------------------------
// Shard footer
// ---------------------------------------------------------------------------

/// Footer payload. The three totals are the original (v1) footer; shards
/// written with block stats append an extension carrying the per-block
/// summaries and the full dictionary (so any block can be decoded without
/// replaying the ones before it). Both forms parse — old shards simply
/// have `has_stats == false` and take the sequential full-scan path.
struct ShardFooter {
  std::uint64_t groups = 0;
  std::uint64_t blocks = 0;
  std::uint64_t dict_entries = 0;
  bool has_stats = false;
  std::vector<BlockStats> block_stats;   // size == blocks when has_stats
  std::vector<std::string> dictionary;   // size == dict_entries when set
};

/// Version byte introducing the footer extension.
inline constexpr std::uint8_t kFooterStatsVersion = 1;

common::Bytes encode_shard_footer(const ShardFooter& footer);

/// Parse either footer form; throws StoreFormatError on malformed input or
/// internally inconsistent counts.
ShardFooter decode_shard_footer(common::BytesView payload);

// ---------------------------------------------------------------------------
// Projected row cursor (the query scan path)
// ---------------------------------------------------------------------------

/// Which list columns `ProjectedBlockCursor` materializes. Every other
/// field of the row walk is scalar-cheap and always decoded; unselected
/// lists are length-walked without building vectors — that skipped
/// allocation is where column projection wins over `decode_block`.
enum ProjectedFields : std::uint32_t {
  kFieldAdvVersions = 1u << 0,
  kFieldAdvSuites = 1u << 1,
  kFieldExtensions = 1u << 2,
  kFieldAdvGroups = 1u << 3,
  kFieldAdvSigalgs = 1u << 4,
  kFieldAllLists = 0x1F,
};

/// One decoded row, vectors reused across `next()` calls. Strings stay as
/// dictionary ids; the scan resolves them only when a query touches them.
struct ProjectedRow {
  std::uint32_t device_id = 0;
  std::uint32_t dest_id = 0;
  common::Month month;
  std::uint64_t count = 0;
  bool requested_ocsp_staple = false;
  bool sent_sni = false;
  bool handshake_complete = false;
  bool application_data_seen = false;
  net::HandshakeRecord::AlertDirection alert_direction =
      net::HandshakeRecord::AlertDirection::None;
  int alert_ordinal = -1;
  std::optional<tls::ProtocolVersion> established_version;
  std::optional<std::uint16_t> established_suite;
  std::optional<tls::Alert> client_alert, server_alert;
  // Materialized only when the matching ProjectedFields bit is set.
  std::vector<tls::ProtocolVersion> advertised_versions;
  std::vector<std::uint16_t> advertised_suites;
  std::vector<std::uint16_t> extension_types;
  std::vector<std::uint16_t> advertised_groups;
  std::vector<std::uint16_t> advertised_sigalgs;
};

/// Streaming decoder for one block payload that materializes only the
/// requested fields. With `dict_preloaded` the block's dictionary section
/// is skipped (ids resolve against the footer dictionary, so blocks decode
/// standalone after a pushdown skip); otherwise new entries are appended to
/// `dict` exactly like `decode_block`. Throws StoreFormatError on any
/// structural violation. `payload` must outlive the cursor.
class ProjectedBlockCursor {
 public:
  ProjectedBlockCursor(common::BytesView payload, const ShardHeader& header,
                       std::uint32_t fields, StringDictionary* dict,
                       bool dict_preloaded);

  /// Decode the next row into `*row` (reusing its buffers); false at end of
  /// block. The cursor verifies the payload is fully consumed on the last
  /// row.
  [[nodiscard]] bool next(ProjectedRow* row);

  [[nodiscard]] std::uint64_t rows_total() const { return rows_total_; }

 private:
  void skip_u16_list();
  void read_u16_list(std::vector<std::uint16_t>* out);

  CodecReader reader_;
  StringDictionary* dict_;
  std::uint32_t fields_;
  std::uint64_t rows_total_ = 0;
  std::uint64_t rows_done_ = 0;
  int prev_month_index_;
};

}  // namespace iotls::store
