// Compact record codec for the capture store.
//
// Groups are packed with LEB128 varints, zigzag deltas (months relative to
// the previous group in the block, u16 id lists relative to the previous
// entry) and a per-shard string-interning dictionary: device/destination
// names appear once per shard, groups carry small integer ids. New
// dictionary entries ride in the block that first uses them, so a shard is
// decodable in one forward streaming pass — the reader never needs more
// than one block in memory.
//
// Block payload layout (framed and CRC'd by writer/reader, format.hpp):
//   varint new_dict_entries; [varint len, bytes]*   strings, id = next slot
//   varint group_count; [encoded group]*            month delta base resets
//                                                   to header.first per block
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "store/format.hpp"
#include "testbed/longitudinal.hpp"

namespace iotls::store {

// ---------------------------------------------------------------------------
// Varint primitives (exposed for the codec property tests)
// ---------------------------------------------------------------------------

/// Append an LEB128-encoded unsigned varint.
void put_varint(common::Bytes* out, std::uint64_t value);

/// Zigzag-map a signed value and append it as a varint.
void put_svarint(common::Bytes* out, std::int64_t value);

/// Bounds-checked varint decoder over a borrowed buffer; throws
/// StoreFormatError on overrun or a non-minimal > 10-byte encoding.
class CodecReader {
 public:
  explicit CodecReader(common::BytesView data) : data_(data) {}

  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::int64_t svarint();
  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::string str(std::size_t len);
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }

 private:
  common::BytesView data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Per-shard dictionary
// ---------------------------------------------------------------------------

/// Append-only string interner. Writer and reader grow identical tables:
/// the writer assigns ids in order of first use, the reader replays the
/// dictionary sections block by block.
class StringDictionary {
 public:
  /// Writer side: id of `text`, interning it (and recording it as pending
  /// for the current block) on first use.
  std::uint32_t intern(const std::string& text);

  /// New entries interned since the last `take_pending()`, in id order.
  [[nodiscard]] std::vector<std::string> take_pending();

  /// Reader side: append the next entry (ids are assigned sequentially).
  void append(std::string text);

  /// Lookup; throws StoreFormatError for an out-of-range id.
  [[nodiscard]] const std::string& at(std::uint32_t id) const;

  [[nodiscard]] std::size_t size() const { return by_id_.size(); }

 private:
  std::vector<std::string> by_id_;
  std::vector<std::string> pending_;
  // Flat sorted map keeps the hot intern() path allocation-light.
  std::vector<std::pair<std::string, std::uint32_t>> ids_;
};

// ---------------------------------------------------------------------------
// Block codec
// ---------------------------------------------------------------------------

/// Streaming encoder state for one block: the dictionary persists across
/// blocks, the month-delta baseline resets each block.
class BlockEncoder {
 public:
  explicit BlockEncoder(common::Month delta_base)
      : delta_base_(delta_base) {}

  /// Append one group to the pending block.
  void add(const testbed::PassiveConnectionGroup& group,
           StringDictionary* dict);

  /// Assemble the block payload (dictionary section + group section) and
  /// reset for the next block.
  [[nodiscard]] common::Bytes finish(StringDictionary* dict);

  [[nodiscard]] std::size_t pending_groups() const { return count_; }
  /// Encoded size of the group section so far (flush heuristic).
  [[nodiscard]] std::size_t pending_bytes() const { return body_.size(); }

 private:
  common::Month delta_base_;
  int prev_month_index_;
  common::Bytes body_;
  std::size_t count_ = 0;
  bool fresh_ = true;
};

/// Decode a whole block payload, appending groups to `out`. The dictionary
/// is extended with the block's new entries first. Throws StoreFormatError
/// on any structural violation (the frame CRC has already been checked, so
/// a failure here means an encoder bug or a forged frame).
void decode_block(common::BytesView payload, const ShardHeader& header,
                  StringDictionary* dict,
                  std::vector<testbed::PassiveConnectionGroup>* out);

}  // namespace iotls::store
