#include "store/codec.hpp"

#include <algorithm>
#include <utility>

#include "obs/profile.hpp"
#include "tls/version.hpp"

namespace iotls::store {

namespace {

// Group flag bits (flags byte).
constexpr std::uint8_t kFlagOcspStaple = 1u << 0;
constexpr std::uint8_t kFlagSni = 1u << 1;
constexpr std::uint8_t kFlagComplete = 1u << 2;
constexpr std::uint8_t kFlagAppData = 1u << 3;
constexpr std::uint8_t kFlagEstVersion = 1u << 4;
constexpr std::uint8_t kFlagEstSuite = 1u << 5;
constexpr std::uint8_t kFlagClientAlert = 1u << 6;
constexpr std::uint8_t kFlagServerAlert = 1u << 7;

std::uint64_t zigzag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t unzigzag(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1u);
}

/// Id lists (suites, extensions, groups, sigalgs) are mostly ascending, so
/// zigzag deltas from the previous entry pack most values into one byte.
void put_u16_list(common::Bytes* out, const std::vector<std::uint16_t>& ids) {
  put_varint(out, ids.size());
  std::int64_t prev = 0;
  for (const std::uint16_t id : ids) {
    put_svarint(out, static_cast<std::int64_t>(id) - prev);
    prev = id;
  }
}

std::vector<std::uint16_t> read_u16_list(CodecReader* reader) {
  const std::uint64_t n = reader->varint();
  // A list cannot be longer than the remaining payload (≥1 byte/entry) —
  // reject early so a forged count cannot drive a giant allocation.
  if (n > reader->remaining()) {
    throw StoreFormatError("id list length " + std::to_string(n) +
                           " exceeds remaining payload");
  }
  std::vector<std::uint16_t> out;
  out.reserve(static_cast<std::size_t>(n));
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int64_t value = prev + reader->svarint();
    if (value < 0 || value > 0xFFFF) {
      throw StoreFormatError("id list entry out of u16 range: " +
                             std::to_string(value));
    }
    out.push_back(static_cast<std::uint16_t>(value));
    prev = value;
  }
  return out;
}

void put_alert(common::Bytes* out, const tls::Alert& alert) {
  out->push_back(static_cast<std::uint8_t>(alert.level));
  out->push_back(static_cast<std::uint8_t>(alert.description));
}

tls::Alert read_alert(CodecReader* reader) {
  tls::Alert alert;
  const std::uint8_t level = reader->u8();
  if (level != 1 && level != 2) {
    throw StoreFormatError("alert level out of range: " +
                           std::to_string(level));
  }
  alert.level = static_cast<tls::AlertLevel>(level);
  alert.description = static_cast<tls::AlertDescription>(reader->u8());
  return alert;
}

tls::ProtocolVersion read_version(CodecReader* reader) {
  const std::uint64_t wire = reader->varint();
  if (wire > 0xFFFF) {
    throw StoreFormatError("protocol version out of u16 range");
  }
  try {
    return tls::version_from_wire(static_cast<std::uint16_t>(wire));
  } catch (const common::ParseError& e) {
    throw StoreFormatError(std::string("bad protocol version: ") + e.what());
  }
}

}  // namespace

void put_varint(common::Bytes* out, std::uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(value));
}

void put_svarint(common::Bytes* out, std::int64_t value) {
  put_varint(out, zigzag(value));
}

std::uint64_t CodecReader::varint() {
  std::uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (pos_ >= data_.size()) {
      throw StoreFormatError("varint runs past end of payload");
    }
    const std::uint8_t byte = data_[pos_++];
    value |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      if (i == 9 && byte > 1) {
        throw StoreFormatError("varint overflows 64 bits");
      }
      return value;
    }
    shift += 7;
  }
  throw StoreFormatError("varint longer than 10 bytes");
}

std::int64_t CodecReader::svarint() { return unzigzag(varint()); }

std::uint8_t CodecReader::u8() {
  if (pos_ >= data_.size()) {
    throw StoreFormatError("byte read past end of payload");
  }
  return data_[pos_++];
}

std::string CodecReader::str(std::size_t len) {
  if (len > remaining()) {
    throw StoreFormatError("string length " + std::to_string(len) +
                           " exceeds remaining payload");
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

std::uint32_t StringDictionary::intern(const std::string& text) {
  const auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(by_id_.size());
  by_id_.push_back(text);
  pending_.push_back(text);
  ids_.emplace(text, id);
  return id;
}

std::vector<std::string> StringDictionary::take_pending() {
  return std::exchange(pending_, {});
}

void StringDictionary::append(std::string text) {
  by_id_.push_back(std::move(text));
}

const std::string& StringDictionary::at(std::uint32_t id) const {
  if (id >= by_id_.size()) {
    throw StoreFormatError("dictionary id " + std::to_string(id) +
                           " out of range (size " +
                           std::to_string(by_id_.size()) + ")");
  }
  return by_id_[id];
}

std::uint8_t version_stats_bit(tls::ProtocolVersion v) {
  return static_cast<std::uint8_t>(static_cast<std::uint16_t>(v) - 0x0300);
}

namespace {

/// Update a (id, string) lexicographic min/max pair.
void track_string(const std::string& text, std::uint32_t id, bool first,
                  std::string* min_text, std::uint32_t* min_id,
                  std::string* max_text, std::uint32_t* max_id) {
  if (first || text < *min_text) {
    *min_text = text;
    *min_id = id;
  }
  if (first || text > *max_text) {
    *max_text = text;
    *max_id = id;
  }
}

/// (true-seen, false-seen) bit pair for boolean column `column` (0-3).
std::uint8_t bool_pair_bit(int column, bool value) {
  return static_cast<std::uint8_t>(1u << (2 * column + (value ? 0 : 1)));
}

}  // namespace

void BlockEncoder::add(const testbed::PassiveConnectionGroup& group,
                       StringDictionary* dict) {
  if (fresh_) {
    prev_month_index_ = delta_base_.index();
    fresh_ = false;
  }
  const auto& r = group.record;
  const std::uint32_t device_id = dict->intern(r.device);
  const std::uint32_t dest_id = dict->intern(r.destination);
  if (stats_enabled_) {
    BlockStats& s = pending_stats_;
    const bool first = s.groups == 0;
    track_string(r.device, device_id, first, &device_min_, &s.device_min_id,
                 &device_max_, &s.device_max_id);
    track_string(r.destination, dest_id, first, &dest_min_, &s.dest_min_id,
                 &dest_max_, &s.dest_max_id);
    const auto month_index = static_cast<std::uint32_t>(r.month.index());
    if (first || month_index < s.month_min) s.month_min = month_index;
    if (first || month_index > s.month_max) s.month_max = month_index;
    if (first || group.count < s.count_min) s.count_min = group.count;
    if (first || group.count > s.count_max) s.count_max = group.count;
    for (const auto v : r.advertised_versions) {
      s.adv_version_mask |= static_cast<std::uint8_t>(1u
                                                      << version_stats_bit(v));
    }
    for (const auto suite : r.advertised_suites) {
      s.suite_bloom |= 1ull << (suite % 64);
    }
    if (r.established_version.has_value()) {
      s.est_version_mask |= static_cast<std::uint8_t>(
          1u << version_stats_bit(*r.established_version));
    } else {
      s.est_version_mask |= BlockStats::kEstNoneBit;
    }
    if (r.established_suite.has_value()) {
      s.est_version_mask |= BlockStats::kEstSuiteBit;
      if (*r.established_suite < s.est_suite_min) {
        s.est_suite_min = *r.established_suite;
      }
      if (*r.established_suite > s.est_suite_max) {
        s.est_suite_max = *r.established_suite;
      }
    } else {
      s.est_version_mask |= BlockStats::kEstNoSuiteBit;
    }
    s.bool_mask |= bool_pair_bit(0, r.handshake_complete);
    s.bool_mask |= bool_pair_bit(1, r.application_data_seen);
    s.bool_mask |= bool_pair_bit(2, r.sent_sni);
    s.bool_mask |= bool_pair_bit(3, r.requested_ocsp_staple);
    s.alert_dir_mask |= static_cast<std::uint8_t>(
        1u << static_cast<int>(r.first_fatal_alert_direction));
    ++s.groups;
  }
  put_varint(&body_, device_id);
  put_varint(&body_, dest_id);
  put_svarint(&body_, r.month.index() - prev_month_index_);
  prev_month_index_ = r.month.index();
  put_varint(&body_, group.count);

  put_varint(&body_, r.advertised_versions.size());
  for (const auto v : r.advertised_versions) {
    put_varint(&body_, static_cast<std::uint16_t>(v));
  }
  put_u16_list(&body_, r.advertised_suites);
  put_u16_list(&body_, r.extension_types);
  put_u16_list(&body_, r.advertised_groups);
  put_u16_list(&body_, r.advertised_sigalgs);

  std::uint8_t flags = 0;
  if (r.requested_ocsp_staple) flags |= kFlagOcspStaple;
  if (r.sent_sni) flags |= kFlagSni;
  if (r.handshake_complete) flags |= kFlagComplete;
  if (r.application_data_seen) flags |= kFlagAppData;
  if (r.established_version.has_value()) flags |= kFlagEstVersion;
  if (r.established_suite.has_value()) flags |= kFlagEstSuite;
  if (r.client_alert.has_value()) flags |= kFlagClientAlert;
  if (r.server_alert.has_value()) flags |= kFlagServerAlert;
  body_.push_back(flags);
  body_.push_back(
      static_cast<std::uint8_t>(r.first_fatal_alert_direction));
  put_svarint(&body_, r.first_fatal_alert_ordinal);

  if (r.established_version.has_value()) {
    put_varint(&body_, static_cast<std::uint16_t>(*r.established_version));
  }
  if (r.established_suite.has_value()) {
    put_varint(&body_, *r.established_suite);
  }
  if (r.client_alert.has_value()) put_alert(&body_, *r.client_alert);
  if (r.server_alert.has_value()) put_alert(&body_, *r.server_alert);
  ++count_;
}

common::Bytes BlockEncoder::finish(StringDictionary* dict) {
  common::Bytes payload;
  const auto entries = dict->take_pending();
  put_varint(&payload, entries.size());
  for (const auto& entry : entries) {
    put_varint(&payload, entry.size());
    payload.insert(payload.end(), entry.begin(), entry.end());
  }
  put_varint(&payload, count_);
  payload.insert(payload.end(), body_.begin(), body_.end());

  body_.clear();
  count_ = 0;
  fresh_ = true;
  if (stats_enabled_) {
    last_stats_ = pending_stats_;
    pending_stats_ = BlockStats{};
    device_min_.clear();
    device_max_.clear();
    dest_min_.clear();
    dest_max_.clear();
  }
  return payload;
}

void decode_block(common::BytesView payload, const ShardHeader& header,
                  StringDictionary* dict,
                  std::vector<testbed::PassiveConnectionGroup>* out,
                  bool dict_preloaded) {
  const obs::ProfileZone zone("store/decode_block");
  CodecReader reader(payload);

  const std::uint64_t new_entries = reader.varint();
  if (new_entries > reader.remaining()) {
    throw StoreFormatError("dictionary section longer than payload");
  }
  for (std::uint64_t i = 0; i < new_entries; ++i) {
    const std::uint64_t len = reader.varint();
    std::string entry = reader.str(static_cast<std::size_t>(len));
    // With a preloaded (footer) dictionary the entries already exist at
    // their assigned ids; the in-block copies are only walked past.
    if (!dict_preloaded) dict->append(std::move(entry));
  }

  const std::uint64_t group_count = reader.varint();
  if (group_count > reader.remaining()) {
    throw StoreFormatError("group count " + std::to_string(group_count) +
                           " exceeds remaining payload");
  }
  out->reserve(out->size() + static_cast<std::size_t>(group_count));
  int prev_month_index = header.first.index();
  for (std::uint64_t g = 0; g < group_count; ++g) {
    testbed::PassiveConnectionGroup group;
    auto& r = group.record;
    r.device = dict->at(static_cast<std::uint32_t>(reader.varint()));
    r.destination = dict->at(static_cast<std::uint32_t>(reader.varint()));
    const std::int64_t month_index = prev_month_index + reader.svarint();
    if (month_index < 0 || month_index > 12LL * 100000) {
      throw StoreFormatError("month index out of range: " +
                             std::to_string(month_index));
    }
    r.month = common::Month::from_index(static_cast<int>(month_index));
    prev_month_index = static_cast<int>(month_index);
    group.count = reader.varint();

    const std::uint64_t versions = reader.varint();
    if (versions > reader.remaining()) {
      throw StoreFormatError("version list longer than payload");
    }
    r.advertised_versions.reserve(static_cast<std::size_t>(versions));
    for (std::uint64_t i = 0; i < versions; ++i) {
      r.advertised_versions.push_back(read_version(&reader));
    }
    r.advertised_suites = read_u16_list(&reader);
    r.extension_types = read_u16_list(&reader);
    r.advertised_groups = read_u16_list(&reader);
    r.advertised_sigalgs = read_u16_list(&reader);

    const std::uint8_t flags = reader.u8();
    const std::uint8_t direction = reader.u8();
    if (direction > 2) {
      throw StoreFormatError("alert direction out of range: " +
                             std::to_string(direction));
    }
    r.requested_ocsp_staple = (flags & kFlagOcspStaple) != 0;
    r.sent_sni = (flags & kFlagSni) != 0;
    r.handshake_complete = (flags & kFlagComplete) != 0;
    r.application_data_seen = (flags & kFlagAppData) != 0;
    r.first_fatal_alert_direction =
        static_cast<net::HandshakeRecord::AlertDirection>(direction);
    const std::int64_t ordinal = reader.svarint();
    if (ordinal < -1 || ordinal > 1 << 30) {
      throw StoreFormatError("alert ordinal out of range");
    }
    r.first_fatal_alert_ordinal = static_cast<int>(ordinal);

    if ((flags & kFlagEstVersion) != 0) {
      r.established_version = read_version(&reader);
    }
    if ((flags & kFlagEstSuite) != 0) {
      const std::uint64_t suite = reader.varint();
      if (suite > 0xFFFF) {
        throw StoreFormatError("established suite out of u16 range");
      }
      r.established_suite = static_cast<std::uint16_t>(suite);
    }
    if ((flags & kFlagClientAlert) != 0) r.client_alert = read_alert(&reader);
    if ((flags & kFlagServerAlert) != 0) r.server_alert = read_alert(&reader);
    out->push_back(std::move(group));
  }
  if (!reader.empty()) {
    throw StoreFormatError("block payload has " +
                           std::to_string(reader.remaining()) +
                           " trailing bytes");
  }
}

// ---------------------------------------------------------------------------
// Shard footer
// ---------------------------------------------------------------------------

namespace {

void put_block_stats(common::Bytes* out, const BlockStats& s) {
  put_varint(out, s.groups);
  put_varint(out, s.device_min_id);
  put_varint(out, s.device_max_id);
  put_varint(out, s.dest_min_id);
  put_varint(out, s.dest_max_id);
  put_varint(out, s.month_min);
  put_varint(out, s.month_max);
  put_varint(out, s.count_min);
  put_varint(out, s.count_max);
  out->push_back(s.adv_version_mask);
  out->push_back(s.est_version_mask);
  put_varint(out, s.est_suite_min);
  put_varint(out, s.est_suite_max);
  out->push_back(s.bool_mask);
  out->push_back(s.alert_dir_mask);
  put_varint(out, s.suite_bloom);
}

std::uint32_t read_u32_field(CodecReader* reader, const char* what) {
  const std::uint64_t value = reader->varint();
  if (value > 0xFFFFFFFFull) {
    throw StoreFormatError(std::string("footer stats: ") + what +
                           " out of u32 range");
  }
  return static_cast<std::uint32_t>(value);
}

BlockStats read_block_stats(CodecReader* reader) {
  BlockStats s;
  s.groups = reader->varint();
  s.device_min_id = read_u32_field(reader, "device_min_id");
  s.device_max_id = read_u32_field(reader, "device_max_id");
  s.dest_min_id = read_u32_field(reader, "dest_min_id");
  s.dest_max_id = read_u32_field(reader, "dest_max_id");
  s.month_min = read_u32_field(reader, "month_min");
  s.month_max = read_u32_field(reader, "month_max");
  s.count_min = reader->varint();
  s.count_max = reader->varint();
  s.adv_version_mask = reader->u8();
  s.est_version_mask = reader->u8();
  const std::uint64_t suite_min = reader->varint();
  const std::uint64_t suite_max = reader->varint();
  if (suite_min > 0xFFFF || suite_max > 0xFFFF) {
    throw StoreFormatError("footer stats: established suite out of range");
  }
  s.est_suite_min = static_cast<std::uint16_t>(suite_min);
  s.est_suite_max = static_cast<std::uint16_t>(suite_max);
  s.bool_mask = reader->u8();
  s.alert_dir_mask = reader->u8();
  s.suite_bloom = reader->varint();
  return s;
}

}  // namespace

common::Bytes encode_shard_footer(const ShardFooter& footer) {
  common::Bytes payload;
  put_varint(&payload, footer.groups);
  put_varint(&payload, footer.blocks);
  put_varint(&payload, footer.dict_entries);
  if (!footer.has_stats) return payload;
  payload.push_back(kFooterStatsVersion);
  put_varint(&payload, footer.block_stats.size());
  for (const auto& stats : footer.block_stats) {
    put_block_stats(&payload, stats);
  }
  put_varint(&payload, footer.dictionary.size());
  for (const auto& entry : footer.dictionary) {
    put_varint(&payload, entry.size());
    payload.insert(payload.end(), entry.begin(), entry.end());
  }
  return payload;
}

ShardFooter decode_shard_footer(common::BytesView payload) {
  CodecReader reader(payload);
  ShardFooter footer;
  footer.groups = reader.varint();
  footer.blocks = reader.varint();
  footer.dict_entries = reader.varint();
  if (reader.empty()) return footer;  // v1 footer: totals only

  const std::uint8_t version = reader.u8();
  if (version != kFooterStatsVersion) {
    throw StoreFormatError("unsupported footer stats version " +
                           std::to_string(version));
  }
  footer.has_stats = true;
  const std::uint64_t stats_count = reader.varint();
  if (stats_count != footer.blocks) {
    throw StoreFormatError("footer stats cover " +
                           std::to_string(stats_count) + " blocks but the "
                           "footer counts " + std::to_string(footer.blocks));
  }
  if (stats_count > reader.remaining()) {
    throw StoreFormatError("footer stats section longer than payload");
  }
  footer.block_stats.reserve(static_cast<std::size_t>(stats_count));
  for (std::uint64_t i = 0; i < stats_count; ++i) {
    footer.block_stats.push_back(read_block_stats(&reader));
  }
  const std::uint64_t dict_count = reader.varint();
  if (dict_count != footer.dict_entries) {
    throw StoreFormatError("footer dictionary has " +
                           std::to_string(dict_count) + " entries but the "
                           "footer counts " +
                           std::to_string(footer.dict_entries));
  }
  if (dict_count > reader.remaining()) {
    throw StoreFormatError("footer dictionary longer than payload");
  }
  footer.dictionary.reserve(static_cast<std::size_t>(dict_count));
  for (std::uint64_t i = 0; i < dict_count; ++i) {
    const std::uint64_t len = reader.varint();
    footer.dictionary.push_back(reader.str(static_cast<std::size_t>(len)));
  }
  if (!reader.empty()) {
    throw StoreFormatError("trailing bytes in footer payload");
  }
  return footer;
}

// ---------------------------------------------------------------------------
// Projected row cursor
// ---------------------------------------------------------------------------

ProjectedBlockCursor::ProjectedBlockCursor(common::BytesView payload,
                                           const ShardHeader& header,
                                           std::uint32_t fields,
                                           StringDictionary* dict,
                                           bool dict_preloaded)
    : reader_(payload),
      dict_(dict),
      fields_(fields),
      prev_month_index_(header.first.index()) {
  const std::uint64_t new_entries = reader_.varint();
  if (new_entries > reader_.remaining()) {
    throw StoreFormatError("dictionary section longer than payload");
  }
  for (std::uint64_t i = 0; i < new_entries; ++i) {
    const std::uint64_t len = reader_.varint();
    std::string entry = reader_.str(static_cast<std::size_t>(len));
    if (!dict_preloaded) dict_->append(std::move(entry));
  }
  rows_total_ = reader_.varint();
  if (rows_total_ > reader_.remaining() && rows_total_ != 0) {
    throw StoreFormatError("group count " + std::to_string(rows_total_) +
                           " exceeds remaining payload");
  }
}

void ProjectedBlockCursor::skip_u16_list() {
  const std::uint64_t n = reader_.varint();
  if (n > reader_.remaining()) {
    throw StoreFormatError("id list length " + std::to_string(n) +
                           " exceeds remaining payload");
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    (void)reader_.svarint();
  }
}

void ProjectedBlockCursor::read_u16_list(std::vector<std::uint16_t>* out) {
  const std::uint64_t n = reader_.varint();
  if (n > reader_.remaining()) {
    throw StoreFormatError("id list length " + std::to_string(n) +
                           " exceeds remaining payload");
  }
  out->clear();
  out->reserve(static_cast<std::size_t>(n));
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int64_t value = prev + reader_.svarint();
    if (value < 0 || value > 0xFFFF) {
      throw StoreFormatError("id list entry out of u16 range: " +
                             std::to_string(value));
    }
    out->push_back(static_cast<std::uint16_t>(value));
    prev = value;
  }
}

bool ProjectedBlockCursor::next(ProjectedRow* row) {
  if (rows_done_ >= rows_total_) {
    if (!reader_.empty()) {
      throw StoreFormatError("block payload has " +
                             std::to_string(reader_.remaining()) +
                             " trailing bytes");
    }
    return false;
  }
  ++rows_done_;

  const std::uint64_t device_id = reader_.varint();
  const std::uint64_t dest_id = reader_.varint();
  const std::size_t dict_size = dict_->size();
  if (device_id >= dict_size || dest_id >= dict_size) {
    throw StoreFormatError(
        "dictionary id " +
        std::to_string(device_id >= dict_size ? device_id : dest_id) +
        " out of range (size " + std::to_string(dict_size) + ")");
  }
  row->device_id = static_cast<std::uint32_t>(device_id);
  row->dest_id = static_cast<std::uint32_t>(dest_id);

  const std::int64_t month_index = prev_month_index_ + reader_.svarint();
  if (month_index < 0 || month_index > 12LL * 100000) {
    throw StoreFormatError("month index out of range: " +
                           std::to_string(month_index));
  }
  row->month = common::Month::from_index(static_cast<int>(month_index));
  prev_month_index_ = static_cast<int>(month_index);
  row->count = reader_.varint();

  const std::uint64_t versions = reader_.varint();
  if (versions > reader_.remaining()) {
    throw StoreFormatError("version list longer than payload");
  }
  if ((fields_ & kFieldAdvVersions) != 0) {
    row->advertised_versions.clear();
    row->advertised_versions.reserve(static_cast<std::size_t>(versions));
  }
  for (std::uint64_t i = 0; i < versions; ++i) {
    const std::uint64_t wire = reader_.varint();
    if (wire > 0xFFFF) {
      throw StoreFormatError("protocol version out of u16 range");
    }
    if ((fields_ & kFieldAdvVersions) != 0) {
      try {
        row->advertised_versions.push_back(
            tls::version_from_wire(static_cast<std::uint16_t>(wire)));
      } catch (const common::ParseError& e) {
        throw StoreFormatError(std::string("bad protocol version: ") +
                               e.what());
      }
    }
  }
  if ((fields_ & kFieldAdvSuites) != 0) {
    read_u16_list(&row->advertised_suites);
  } else {
    skip_u16_list();
  }
  if ((fields_ & kFieldExtensions) != 0) {
    read_u16_list(&row->extension_types);
  } else {
    skip_u16_list();
  }
  if ((fields_ & kFieldAdvGroups) != 0) {
    read_u16_list(&row->advertised_groups);
  } else {
    skip_u16_list();
  }
  if ((fields_ & kFieldAdvSigalgs) != 0) {
    read_u16_list(&row->advertised_sigalgs);
  } else {
    skip_u16_list();
  }

  const std::uint8_t flags = reader_.u8();
  const std::uint8_t direction = reader_.u8();
  if (direction > 2) {
    throw StoreFormatError("alert direction out of range: " +
                           std::to_string(direction));
  }
  row->requested_ocsp_staple = (flags & kFlagOcspStaple) != 0;
  row->sent_sni = (flags & kFlagSni) != 0;
  row->handshake_complete = (flags & kFlagComplete) != 0;
  row->application_data_seen = (flags & kFlagAppData) != 0;
  row->alert_direction =
      static_cast<net::HandshakeRecord::AlertDirection>(direction);
  const std::int64_t ordinal = reader_.svarint();
  if (ordinal < -1 || ordinal > 1 << 30) {
    throw StoreFormatError("alert ordinal out of range");
  }
  row->alert_ordinal = static_cast<int>(ordinal);

  row->established_version.reset();
  row->established_suite.reset();
  row->client_alert.reset();
  row->server_alert.reset();
  if ((flags & kFlagEstVersion) != 0) {
    row->established_version = read_version(&reader_);
  }
  if ((flags & kFlagEstSuite) != 0) {
    const std::uint64_t suite = reader_.varint();
    if (suite > 0xFFFF) {
      throw StoreFormatError("established suite out of u16 range");
    }
    row->established_suite = static_cast<std::uint16_t>(suite);
  }
  if ((flags & kFlagClientAlert) != 0) row->client_alert = read_alert(&reader_);
  if ((flags & kFlagServerAlert) != 0) row->server_alert = read_alert(&reader_);
  return true;
}

}  // namespace iotls::store
