#include "store/codec.hpp"

#include <algorithm>
#include <utility>

#include "tls/version.hpp"

namespace iotls::store {

namespace {

// Group flag bits (flags byte).
constexpr std::uint8_t kFlagOcspStaple = 1u << 0;
constexpr std::uint8_t kFlagSni = 1u << 1;
constexpr std::uint8_t kFlagComplete = 1u << 2;
constexpr std::uint8_t kFlagAppData = 1u << 3;
constexpr std::uint8_t kFlagEstVersion = 1u << 4;
constexpr std::uint8_t kFlagEstSuite = 1u << 5;
constexpr std::uint8_t kFlagClientAlert = 1u << 6;
constexpr std::uint8_t kFlagServerAlert = 1u << 7;

std::uint64_t zigzag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t unzigzag(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1u);
}

/// Id lists (suites, extensions, groups, sigalgs) are mostly ascending, so
/// zigzag deltas from the previous entry pack most values into one byte.
void put_u16_list(common::Bytes* out, const std::vector<std::uint16_t>& ids) {
  put_varint(out, ids.size());
  std::int64_t prev = 0;
  for (const std::uint16_t id : ids) {
    put_svarint(out, static_cast<std::int64_t>(id) - prev);
    prev = id;
  }
}

std::vector<std::uint16_t> read_u16_list(CodecReader* reader) {
  const std::uint64_t n = reader->varint();
  // A list cannot be longer than the remaining payload (≥1 byte/entry) —
  // reject early so a forged count cannot drive a giant allocation.
  if (n > reader->remaining()) {
    throw StoreFormatError("id list length " + std::to_string(n) +
                           " exceeds remaining payload");
  }
  std::vector<std::uint16_t> out;
  out.reserve(static_cast<std::size_t>(n));
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int64_t value = prev + reader->svarint();
    if (value < 0 || value > 0xFFFF) {
      throw StoreFormatError("id list entry out of u16 range: " +
                             std::to_string(value));
    }
    out.push_back(static_cast<std::uint16_t>(value));
    prev = value;
  }
  return out;
}

void put_alert(common::Bytes* out, const tls::Alert& alert) {
  out->push_back(static_cast<std::uint8_t>(alert.level));
  out->push_back(static_cast<std::uint8_t>(alert.description));
}

tls::Alert read_alert(CodecReader* reader) {
  tls::Alert alert;
  const std::uint8_t level = reader->u8();
  if (level != 1 && level != 2) {
    throw StoreFormatError("alert level out of range: " +
                           std::to_string(level));
  }
  alert.level = static_cast<tls::AlertLevel>(level);
  alert.description = static_cast<tls::AlertDescription>(reader->u8());
  return alert;
}

tls::ProtocolVersion read_version(CodecReader* reader) {
  const std::uint64_t wire = reader->varint();
  if (wire > 0xFFFF) {
    throw StoreFormatError("protocol version out of u16 range");
  }
  try {
    return tls::version_from_wire(static_cast<std::uint16_t>(wire));
  } catch (const common::ParseError& e) {
    throw StoreFormatError(std::string("bad protocol version: ") + e.what());
  }
}

}  // namespace

void put_varint(common::Bytes* out, std::uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(value));
}

void put_svarint(common::Bytes* out, std::int64_t value) {
  put_varint(out, zigzag(value));
}

std::uint64_t CodecReader::varint() {
  std::uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (pos_ >= data_.size()) {
      throw StoreFormatError("varint runs past end of payload");
    }
    const std::uint8_t byte = data_[pos_++];
    value |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      if (i == 9 && byte > 1) {
        throw StoreFormatError("varint overflows 64 bits");
      }
      return value;
    }
    shift += 7;
  }
  throw StoreFormatError("varint longer than 10 bytes");
}

std::int64_t CodecReader::svarint() { return unzigzag(varint()); }

std::uint8_t CodecReader::u8() {
  if (pos_ >= data_.size()) {
    throw StoreFormatError("byte read past end of payload");
  }
  return data_[pos_++];
}

std::string CodecReader::str(std::size_t len) {
  if (len > remaining()) {
    throw StoreFormatError("string length " + std::to_string(len) +
                           " exceeds remaining payload");
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

std::uint32_t StringDictionary::intern(const std::string& text) {
  const auto it = std::lower_bound(
      ids_.begin(), ids_.end(), text,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it != ids_.end() && it->first == text) return it->second;
  const auto id = static_cast<std::uint32_t>(by_id_.size());
  by_id_.push_back(text);
  pending_.push_back(text);
  ids_.insert(it, {text, id});
  return id;
}

std::vector<std::string> StringDictionary::take_pending() {
  return std::exchange(pending_, {});
}

void StringDictionary::append(std::string text) {
  by_id_.push_back(std::move(text));
}

const std::string& StringDictionary::at(std::uint32_t id) const {
  if (id >= by_id_.size()) {
    throw StoreFormatError("dictionary id " + std::to_string(id) +
                           " out of range (size " +
                           std::to_string(by_id_.size()) + ")");
  }
  return by_id_[id];
}

void BlockEncoder::add(const testbed::PassiveConnectionGroup& group,
                       StringDictionary* dict) {
  if (fresh_) {
    prev_month_index_ = delta_base_.index();
    fresh_ = false;
  }
  const auto& r = group.record;
  put_varint(&body_, dict->intern(r.device));
  put_varint(&body_, dict->intern(r.destination));
  put_svarint(&body_, r.month.index() - prev_month_index_);
  prev_month_index_ = r.month.index();
  put_varint(&body_, group.count);

  put_varint(&body_, r.advertised_versions.size());
  for (const auto v : r.advertised_versions) {
    put_varint(&body_, static_cast<std::uint16_t>(v));
  }
  put_u16_list(&body_, r.advertised_suites);
  put_u16_list(&body_, r.extension_types);
  put_u16_list(&body_, r.advertised_groups);
  put_u16_list(&body_, r.advertised_sigalgs);

  std::uint8_t flags = 0;
  if (r.requested_ocsp_staple) flags |= kFlagOcspStaple;
  if (r.sent_sni) flags |= kFlagSni;
  if (r.handshake_complete) flags |= kFlagComplete;
  if (r.application_data_seen) flags |= kFlagAppData;
  if (r.established_version.has_value()) flags |= kFlagEstVersion;
  if (r.established_suite.has_value()) flags |= kFlagEstSuite;
  if (r.client_alert.has_value()) flags |= kFlagClientAlert;
  if (r.server_alert.has_value()) flags |= kFlagServerAlert;
  body_.push_back(flags);
  body_.push_back(
      static_cast<std::uint8_t>(r.first_fatal_alert_direction));
  put_svarint(&body_, r.first_fatal_alert_ordinal);

  if (r.established_version.has_value()) {
    put_varint(&body_, static_cast<std::uint16_t>(*r.established_version));
  }
  if (r.established_suite.has_value()) {
    put_varint(&body_, *r.established_suite);
  }
  if (r.client_alert.has_value()) put_alert(&body_, *r.client_alert);
  if (r.server_alert.has_value()) put_alert(&body_, *r.server_alert);
  ++count_;
}

common::Bytes BlockEncoder::finish(StringDictionary* dict) {
  common::Bytes payload;
  const auto entries = dict->take_pending();
  put_varint(&payload, entries.size());
  for (const auto& entry : entries) {
    put_varint(&payload, entry.size());
    payload.insert(payload.end(), entry.begin(), entry.end());
  }
  put_varint(&payload, count_);
  payload.insert(payload.end(), body_.begin(), body_.end());

  body_.clear();
  count_ = 0;
  fresh_ = true;
  return payload;
}

void decode_block(common::BytesView payload, const ShardHeader& header,
                  StringDictionary* dict,
                  std::vector<testbed::PassiveConnectionGroup>* out) {
  CodecReader reader(payload);

  const std::uint64_t new_entries = reader.varint();
  if (new_entries > reader.remaining()) {
    throw StoreFormatError("dictionary section longer than payload");
  }
  for (std::uint64_t i = 0; i < new_entries; ++i) {
    const std::uint64_t len = reader.varint();
    dict->append(reader.str(static_cast<std::size_t>(len)));
  }

  const std::uint64_t group_count = reader.varint();
  if (group_count > reader.remaining()) {
    throw StoreFormatError("group count " + std::to_string(group_count) +
                           " exceeds remaining payload");
  }
  out->reserve(out->size() + static_cast<std::size_t>(group_count));
  int prev_month_index = header.first.index();
  for (std::uint64_t g = 0; g < group_count; ++g) {
    testbed::PassiveConnectionGroup group;
    auto& r = group.record;
    r.device = dict->at(static_cast<std::uint32_t>(reader.varint()));
    r.destination = dict->at(static_cast<std::uint32_t>(reader.varint()));
    const std::int64_t month_index = prev_month_index + reader.svarint();
    if (month_index < 0 || month_index > 12LL * 100000) {
      throw StoreFormatError("month index out of range: " +
                             std::to_string(month_index));
    }
    r.month = common::Month::from_index(static_cast<int>(month_index));
    prev_month_index = static_cast<int>(month_index);
    group.count = reader.varint();

    const std::uint64_t versions = reader.varint();
    if (versions > reader.remaining()) {
      throw StoreFormatError("version list longer than payload");
    }
    r.advertised_versions.reserve(static_cast<std::size_t>(versions));
    for (std::uint64_t i = 0; i < versions; ++i) {
      r.advertised_versions.push_back(read_version(&reader));
    }
    r.advertised_suites = read_u16_list(&reader);
    r.extension_types = read_u16_list(&reader);
    r.advertised_groups = read_u16_list(&reader);
    r.advertised_sigalgs = read_u16_list(&reader);

    const std::uint8_t flags = reader.u8();
    const std::uint8_t direction = reader.u8();
    if (direction > 2) {
      throw StoreFormatError("alert direction out of range: " +
                             std::to_string(direction));
    }
    r.requested_ocsp_staple = (flags & kFlagOcspStaple) != 0;
    r.sent_sni = (flags & kFlagSni) != 0;
    r.handshake_complete = (flags & kFlagComplete) != 0;
    r.application_data_seen = (flags & kFlagAppData) != 0;
    r.first_fatal_alert_direction =
        static_cast<net::HandshakeRecord::AlertDirection>(direction);
    const std::int64_t ordinal = reader.svarint();
    if (ordinal < -1 || ordinal > 1 << 30) {
      throw StoreFormatError("alert ordinal out of range");
    }
    r.first_fatal_alert_ordinal = static_cast<int>(ordinal);

    if ((flags & kFlagEstVersion) != 0) {
      r.established_version = read_version(&reader);
    }
    if ((flags & kFlagEstSuite) != 0) {
      const std::uint64_t suite = reader.varint();
      if (suite > 0xFFFF) {
        throw StoreFormatError("established suite out of u16 range");
      }
      r.established_suite = static_cast<std::uint16_t>(suite);
    }
    if ((flags & kFlagClientAlert) != 0) r.client_alert = read_alert(&reader);
    if ((flags & kFlagServerAlert) != 0) r.server_alert = read_alert(&reader);
    out->push_back(std::move(group));
  }
  if (!reader.empty()) {
    throw StoreFormatError("block payload has " +
                           std::to_string(reader.remaining()) +
                           " trailing bytes");
  }
}

}  // namespace iotls::store
