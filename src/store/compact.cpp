#include "store/compact.hpp"

#include <algorithm>
#include <filesystem>

#include "common/pool.hpp"
#include "store/reader.hpp"

namespace iotls::store {

namespace {

/// One input shard with its position in the concatenated group sequence.
struct InputShard {
  std::string path;
  std::uint64_t first_group = 0;  // global index of its first group
  std::uint64_t groups = 0;
};

}  // namespace

CompactReport compact_store(const std::vector<std::string>& input_dirs,
                            const std::string& out_dir,
                            const CompactOptions& options) {
  namespace fs = std::filesystem;

  // Index every input shard (frame walk only — no payload decode) to learn
  // the global group layout and the merged header window.
  std::vector<InputShard> inputs;
  ShardHeader header;
  bool first_header = true;
  std::uint64_t total_groups = 0;
  std::uint64_t bytes_in = 0;
  for (const std::string& dir : input_dirs) {
    for (const std::string& path : list_shards(dir, /*allow_empty=*/true)) {
      const ShardIndex index = read_shard_index(path);
      if (first_header) {
        header.seed = index.header.seed;
        header.first = index.header.first;
        header.last = index.header.last;
        first_header = false;
      } else {
        header.first = std::min(header.first, index.header.first);
        header.last = std::max(header.last, index.header.last);
      }
      inputs.push_back({path, total_groups, index.footer.groups});
      total_groups += index.footer.groups;
      bytes_in += file_size(path);
    }
  }

  const std::uint64_t per_shard =
      std::max<std::uint64_t>(options.groups_per_shard, 1);
  const std::uint64_t output_count =
      std::max<std::uint64_t>((total_groups + per_shard - 1) / per_shard, 1);
  header.shard_index = 0;
  header.shard_count = static_cast<std::uint32_t>(output_count);
  header.label.clear();

  std::error_code ec;
  fs::create_directories(out_dir, ec);
  if (ec) {
    throw StoreIoError("cannot create store directory " + out_dir + ": " +
                       ec.message());
  }
  for (std::uint64_t k = 0; k < output_count; ++k) {
    const fs::path path =
        fs::path(out_dir) / shard_filename(static_cast<std::uint32_t>(k));
    if (fs::exists(path)) {
      throw StoreIoError("refusing to overwrite existing shard " +
                         path.string());
    }
  }

  // Each output shard covers the contiguous global range
  // [k * per_shard, min((k+1) * per_shard, total)); a worker re-streams
  // exactly the input shards overlapping its range. Re-encoding from a
  // fresh ShardWriter re-interns the dictionary per output shard.
  std::vector<std::uint32_t> indices(static_cast<std::size_t>(output_count));
  for (std::uint32_t i = 0; i < output_count; ++i) indices[i] = i;
  const auto shard_infos = common::parallel_map(
      options.threads, indices, [&](const std::uint32_t k) {
        const std::uint64_t begin = static_cast<std::uint64_t>(k) * per_shard;
        const std::uint64_t end = std::min(begin + per_shard, total_groups);
        ShardHeader out_header = header;
        out_header.shard_index = k;
        ShardWriter writer(
            (fs::path(out_dir) / shard_filename(k)).string(), out_header,
            options.block_bytes);
        std::vector<testbed::PassiveConnectionGroup> block;
        for (const InputShard& input : inputs) {
          if (input.first_group + input.groups <= begin) continue;
          if (input.first_group >= end) break;
          ShardReader reader(input.path);
          std::uint64_t pos = input.first_group;
          while (reader.next(&block)) {
            for (const auto& group : block) {
              if (pos >= begin && pos < end) writer.add(group);
              ++pos;
            }
            if (pos >= end) break;
          }
        }
        return writer.close();
      });

  CompactReport report;
  report.input_shards = inputs.size();
  report.output_shards = output_count;
  report.bytes_in = bytes_in;
  for (const ShardInfo& info : shard_infos) {
    report.groups += info.groups;
    report.bytes_out += info.bytes;
  }
  return report;
}

}  // namespace iotls::store
