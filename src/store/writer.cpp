#include "store/writer.hpp"

#include <algorithm>
#include <cstdio>  // snprintf for shard names (not raw file I/O)
#include <filesystem>
#include <utility>

#include "common/pool.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace iotls::store {

namespace {

void count_blocks(std::uint64_t n) {
  if (!obs::metrics_enabled() || n == 0) return;
  obs::MetricsRegistry::global()
      .counter("iotls_store_blocks_written_total",
               "Capture-store blocks framed and written")
      .inc(n);
}

void write_frame(CheckedFile* file, std::uint8_t type,
                 common::BytesView payload) {
  if (payload.size() > kMaxBlockPayload) {
    throw StoreFormatError("block payload of " +
                           std::to_string(payload.size()) +
                           " bytes exceeds the format cap");
  }
  common::ByteWriter frame;
  frame.u8(type);
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(crc32(payload));
  file->write(frame.bytes());
  file->write(payload);
}

}  // namespace

ShardWriter::ShardWriter(const std::string& path, ShardHeader header,
                         std::size_t block_bytes, bool block_stats)
    : file_(CheckedFile::create(path)),
      header_(std::move(header)),
      block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes),
      block_stats_(block_stats),
      encoder_(header_.first, block_stats) {
  file_.write(common::BytesView(kShardMagic.data(), kShardMagic.size()));
  const common::Bytes head = encode_shard_header(header_);
  common::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(head.size()));
  frame.u32(crc32(head));
  file_.write(frame.bytes());
  file_.write(head);
}

void ShardWriter::add(const testbed::PassiveConnectionGroup& group) {
  encoder_.add(group, &dict_);
  ++groups_;
  if (encoder_.pending_bytes() >= block_bytes_) flush_block();
}

void ShardWriter::flush_block() {
  if (encoder_.pending_groups() == 0) return;
  const obs::ProfileZone zone("store/flush_block");
  const common::Bytes payload = encoder_.finish(&dict_);
  write_frame(&file_, kBlockGroups, payload);
  if (block_stats_) stats_.push_back(encoder_.last_stats());
  ++blocks_;
}

ShardInfo ShardWriter::close() {
  if (closed_) throw StoreIoError("shard " + file_.path() + " already closed");
  closed_ = true;
  flush_block();
  ShardFooter footer;
  footer.groups = groups_;
  footer.blocks = blocks_;
  footer.dict_entries = dict_.size();
  if (block_stats_) {
    footer.has_stats = true;
    footer.block_stats = stats_;
    footer.dictionary = dict_.entries();
  }
  write_frame(&file_, kBlockFooter, encode_shard_footer(footer));
  count_blocks(blocks_ + 1);
  ShardInfo info;
  info.path = file_.path();
  info.header = header_;
  info.groups = groups_;
  info.blocks = blocks_;
  info.bytes = file_.bytes_written();
  file_.close();
  return info;
}

std::uint64_t StoreWriteReport::total_groups() const {
  std::uint64_t n = 0;
  for (const auto& s : shards) n += s.groups;
  return n;
}

std::uint64_t StoreWriteReport::total_blocks() const {
  std::uint64_t n = 0;
  for (const auto& s : shards) n += s.blocks;
  return n;
}

std::uint64_t StoreWriteReport::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& s : shards) n += s.bytes;
  return n;
}

std::string shard_filename(std::uint32_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04u%s", index, kShardSuffix);
  return name;
}

StoreWriteReport write_store(const testbed::PassiveDataset& dataset,
                             const std::string& dir,
                             const StoreOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw StoreIoError("cannot create store directory " + dir + ": " +
                       ec.message());
  }

  // One work item per shard: an ordered list of groups plus a label.
  struct ShardPlan {
    std::vector<const testbed::PassiveConnectionGroup*> groups;
    std::string label;
  };
  const auto& groups = dataset.groups();
  std::vector<ShardPlan> plans;
  switch (options.layout) {
    case ShardLayout::Single: {
      ShardPlan plan;
      plan.groups.reserve(groups.size());
      for (const auto& group : groups) plan.groups.push_back(&group);
      plans.push_back(std::move(plan));
      break;
    }
    case ShardLayout::PerDevice: {
      for (const auto& device : dataset.devices()) {
        ShardPlan plan;
        plan.label = device;
        plan.groups = dataset.for_device(device);
        plans.push_back(std::move(plan));
      }
      break;
    }
    case ShardLayout::FixedSize: {
      const std::size_t per_shard =
          std::max<std::size_t>(options.groups_per_shard, 1);
      for (std::size_t begin = 0; begin < groups.size(); begin += per_shard) {
        ShardPlan plan;
        const std::size_t end = std::min(groups.size(), begin + per_shard);
        for (std::size_t i = begin; i < end; ++i) {
          plan.groups.push_back(&groups[i]);
        }
        plans.push_back(std::move(plan));
      }
      break;
    }
  }
  if (plans.empty()) plans.emplace_back();  // empty dataset: one empty shard

  const auto name_for = [&options](std::uint32_t index) {
    if (!options.shard_namer) return shard_filename(index);
    std::string name = options.shard_namer(index);
    const std::string suffix(kShardSuffix);
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      throw StoreFormatError("shard_namer produced \"" + name +
                             "\" without the " + suffix + " suffix");
    }
    return name;
  };

  for (std::uint32_t index = 0; index < plans.size(); ++index) {
    const fs::path path = fs::path(dir) / name_for(index);
    if (fs::exists(path)) {
      throw StoreIoError("refusing to overwrite existing shard " +
                         path.string());
    }
  }

  std::vector<std::uint32_t> indices(plans.size());
  for (std::uint32_t i = 0; i < plans.size(); ++i) indices[i] = i;
  StoreWriteReport report;
  report.shards = common::parallel_map(
      options.threads, indices, [&](const std::uint32_t index) {
        const ShardPlan& plan = plans[index];
        ShardHeader header;
        header.seed = options.seed;
        header.first = options.first;
        header.last = options.last;
        header.shard_index = index;
        header.shard_count = static_cast<std::uint32_t>(plans.size());
        header.label = plan.label;
        ShardWriter writer((fs::path(dir) / name_for(index)).string(),
                           header, options.block_bytes, options.block_stats);
        for (const auto* group : plan.groups) writer.add(*group);
        return writer.close();
      });
  return report;
}

}  // namespace iotls::store
