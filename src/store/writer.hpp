// Sharded append-only writers for the capture store.
//
// A shard file is: 8-byte magic, a CRC'd header frame, CRC'd group blocks,
// and a CRC'd footer frame carrying the shard's totals (the footer doubles
// as the truncation detector — a shard that ends without one is corrupt).
//
// `write_store` fans a dataset out over shards (one file, one per device,
// or fixed-size slices) using `common::parallel_map`; every shard file is
// encoded independently from an ordered slice of the dataset, so the bytes
// on disk are identical at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "store/codec.hpp"
#include "store/format.hpp"
#include "store/io.hpp"
#include "testbed/longitudinal.hpp"

namespace iotls::store {

/// Default flush threshold for a block's encoded group section.
inline constexpr std::size_t kDefaultBlockBytes = 64u * 1024;

/// Totals for one written shard.
struct ShardInfo {
  std::string path;
  ShardHeader header;
  std::uint64_t groups = 0;
  std::uint64_t blocks = 0;
  std::uint64_t bytes = 0;
};

/// Streaming writer for one shard file. `add()` groups, then `close()`
/// (mandatory — it writes the footer; an unclosed shard reads as truncated).
class ShardWriter {
 public:
  /// With `block_stats` (the default) the footer carries per-block column
  /// summaries plus the full dictionary — the extension the query layer's
  /// pushdown and standalone block decode need. Disable it only to write
  /// old-format shards (backward-compat tests).
  ShardWriter(const std::string& path, ShardHeader header,
              std::size_t block_bytes = kDefaultBlockBytes,
              bool block_stats = true);

  ShardWriter(ShardWriter&&) = default;
  ShardWriter& operator=(ShardWriter&&) = delete;

  void add(const testbed::PassiveConnectionGroup& group);

  /// Flush the pending block, write the footer and close the file.
  ShardInfo close();

 private:
  void flush_block();

  CheckedFile file_;
  ShardHeader header_;
  std::size_t block_bytes_;
  bool block_stats_;
  StringDictionary dict_;
  BlockEncoder encoder_;
  std::vector<BlockStats> stats_;
  std::uint64_t groups_ = 0;
  std::uint64_t blocks_ = 0;
  bool closed_ = false;
};

/// How `write_store` partitions a dataset into shard files.
enum class ShardLayout {
  Single,    ///< one shard, dataset order
  PerDevice, ///< one shard per device (sorted names), label = device
  FixedSize, ///< dataset-order slices of `groups_per_shard`
};

struct StoreOptions {
  ShardLayout layout = ShardLayout::Single;
  std::size_t groups_per_shard = 4096;  // FixedSize only
  /// Worker threads for the shard fan-out (0 = hardware concurrency,
  /// 1 = serial). Output bytes are identical for every value.
  std::size_t threads = 0;
  std::size_t block_bytes = kDefaultBlockBytes;
  /// Write the extended footer (per-block stats + full dictionary). Off
  /// reproduces the original footer byte-for-byte.
  bool block_stats = true;
  /// Recorded in every shard header (self-description, not re-generation).
  std::uint64_t seed = 0;
  common::Month first = common::kStudyStart;
  common::Month last = common::kStudyEnd;
  /// Names the file for shard `index`. Null (the default) uses
  /// shard_filename ("shard-NNNN.iotshard") — byte-for-byte the historical
  /// layout. A custom name must keep the `.iotshard` suffix so list_shards
  /// discovers it, and must sort in index order if validate_store is to
  /// accept the result; write_store enforces the suffix. Shard *contents*
  /// are independent of the name, so renaming never changes stored bytes.
  std::function<std::string(std::uint32_t)> shard_namer;
};

struct StoreWriteReport {
  std::vector<ShardInfo> shards;

  [[nodiscard]] std::uint64_t total_groups() const;
  [[nodiscard]] std::uint64_t total_blocks() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
};

/// Write `dataset` into `dir` (created if missing) as shard-NNNN files.
/// Pre-existing shards in `dir` are an error — shards are append-only
/// artifacts, never silently overwritten.
StoreWriteReport write_store(const testbed::PassiveDataset& dataset,
                             const std::string& dir,
                             const StoreOptions& options = StoreOptions{});

/// "shard-0007.iotshard"
std::string shard_filename(std::uint32_t index);

}  // namespace iotls::store
