// Shard compaction: coalesce many small shards into few large ones.
//
// Grown out of `iotls-store merge`: where merge streams everything into a
// single shard serially, compaction plans fixed-size output shards over
// the concatenated group sequence of all inputs and writes them in
// parallel — each output is encoded independently by a fresh ShardWriter
// (dictionaries re-interned per output shard, block stats and the footer
// dictionary regenerated), so the output bytes are identical at any thread
// count.
//
// Inputs are opened read-only and are never modified; a compaction killed
// mid-write leaves the sources intact and the partial output detectable
// (its shards end without a footer, which `iotls-store validate` reports
// as truncation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/writer.hpp"

namespace iotls::store {

struct CompactOptions {
  /// Target groups per output shard (the coalescing knob).
  std::uint64_t groups_per_shard = 1u << 16;
  /// Worker threads for the per-output-shard fan-out (0 = hardware
  /// concurrency). Output bytes are identical for every value.
  std::size_t threads = 0;
  std::size_t block_bytes = kDefaultBlockBytes;
};

struct CompactReport {
  std::uint64_t input_shards = 0;
  std::uint64_t output_shards = 0;
  std::uint64_t groups = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

/// Compact every shard of `input_dirs` (in argument order, shards sorted
/// within each) into `out_dir`. Inputs with no shards are tolerated; zero
/// groups total still produces a valid single-shard empty store. The
/// output directory must not already contain shards. Throws typed
/// StoreErrors on any input defect or output failure.
CompactReport compact_store(const std::vector<std::string>& input_dirs,
                            const std::string& out_dir,
                            const CompactOptions& options = CompactOptions{});

}  // namespace iotls::store
