#include "store/format.hpp"

namespace iotls::store {

namespace {

struct Crc32Table {
  std::array<std::uint32_t, 256> entries;
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

common::Month read_month(common::ByteReader& reader) {
  common::Month m;
  m.year = static_cast<int>(reader.u16());
  m.month = static_cast<int>(reader.u8());
  if (m.month < 1 || m.month > 12) {
    throw StoreFormatError("shard header: month out of range: " +
                           std::to_string(m.month));
  }
  return m;
}

void write_month(common::ByteWriter& writer, common::Month m) {
  writer.u16(static_cast<std::uint16_t>(m.year));
  writer.u8(static_cast<std::uint8_t>(m.month));
}

}  // namespace

std::uint32_t crc32(common::BytesView data) {
  static const Crc32Table table;
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc = table.entries[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

common::Bytes encode_shard_header(const ShardHeader& header) {
  common::ByteWriter writer;
  writer.u16(kFormatVersion);
  writer.u64(header.seed);
  write_month(writer, header.first);
  write_month(writer, header.last);
  writer.u32(header.shard_index);
  writer.u32(header.shard_count);
  writer.str(header.label, 2);
  return writer.take();
}

ShardHeader decode_shard_header(common::BytesView payload) {
  try {
    common::ByteReader reader(payload);
    const std::uint16_t version = reader.u16();
    if (version != kFormatVersion) {
      throw StoreFormatError("unsupported shard format version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kFormatVersion) + ")");
    }
    ShardHeader header;
    header.seed = reader.u64();
    header.first = read_month(reader);
    header.last = read_month(reader);
    header.shard_index = reader.u32();
    header.shard_count = reader.u32();
    header.label = reader.str(2);
    reader.expect_end("shard header");
    return header;
  } catch (const common::ParseError& e) {
    throw StoreFormatError(std::string("shard header: ") + e.what());
  }
}

}  // namespace iotls::store
