// Checked file I/O — the store's single chokepoint for raw stdio.
//
// Every byte the capture store reads or writes flows through CheckedFile:
// OS failures become typed StoreIoError, short reads inside a structure
// become StoreCorruptionError (a truncated tail, not a crash), and the
// iotls_store_bytes_{read,written}_total metrics are fed in one place.
//
// The `raw-io` lint rule enforces the chokepoint: src/store/io.cpp is the
// only file under src/store/ + tools/store/ allowed to call fopen/fread/
// fwrite and friends.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/bytes.hpp"
#include "store/format.hpp"

namespace iotls::store {

class CheckedFile {
 public:
  /// Open an existing file for reading; StoreIoError if it cannot be opened.
  static CheckedFile open_read(const std::string& path);

  /// Create (truncate) a file for writing; StoreIoError on failure.
  static CheckedFile create(const std::string& path);

  CheckedFile(CheckedFile&& other) noexcept;
  CheckedFile& operator=(CheckedFile&& other) noexcept;
  CheckedFile(const CheckedFile&) = delete;
  CheckedFile& operator=(const CheckedFile&) = delete;
  ~CheckedFile();

  /// Append `data`; throws StoreIoError on any short or failed write.
  void write(common::BytesView data);
  void write(const std::string& text);

  /// Read up to `n` bytes; returns the count actually read (short only at
  /// end-of-file). Throws StoreIoError on a stream error.
  [[nodiscard]] std::size_t read(void* out, std::size_t n);

  /// Read exactly `n` bytes or throw StoreCorruptionError naming `context`
  /// — a short read inside a framed structure means the tail is truncated.
  void read_exact(void* out, std::size_t n, const std::string& context);

  /// True once a read returned 0 bytes.
  [[nodiscard]] bool at_eof() const { return eof_; }

  /// Reposition the read head to an absolute byte offset (read-only files;
  /// the query layer's block skipping). Clears the EOF latch. Throws
  /// StoreIoError on failure.
  void seek(std::uint64_t offset);

  /// Current byte offset; StoreIoError on failure.
  [[nodiscard]] std::uint64_t tell() const;

  /// Flush buffered writes to the OS; StoreIoError on failure.
  void flush();

  /// Flush and close. Idempotent; the destructor closes without throwing.
  void close();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return written_; }
  [[nodiscard]] std::uint64_t bytes_read() const { return read_count_; }

 private:
  CheckedFile(std::FILE* file, std::string path);

  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t written_ = 0;
  std::uint64_t read_count_ = 0;
  bool eof_ = false;
};

/// Size of a file in bytes (StoreIoError if it cannot be stat'ed).
std::uint64_t file_size(const std::string& path);

}  // namespace iotls::store
