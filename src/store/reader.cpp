#include "store/reader.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/pool.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace iotls::store {

namespace {

void count_metric(const char* name, const char* help, std::uint64_t n) {
  if (!obs::metrics_enabled() || n == 0) return;
  obs::MetricsRegistry::global().counter(name, help).inc(n);
}

std::uint32_t read_u32(CheckedFile* file, const std::string& context) {
  std::uint8_t raw[4];
  file->read_exact(raw, sizeof(raw), context);
  return (static_cast<std::uint32_t>(raw[0]) << 24) |
         (static_cast<std::uint32_t>(raw[1]) << 16) |
         (static_cast<std::uint32_t>(raw[2]) << 8) |
         static_cast<std::uint32_t>(raw[3]);
}

/// Read a length+CRC framed payload; validates the length cap and the CRC.
common::Bytes read_framed_payload(CheckedFile* file,
                                  const std::string& context) {
  const obs::ProfileZone zone("store/read_frame");
  const std::uint32_t len = read_u32(file, context + " length");
  const std::uint32_t expected_crc = read_u32(file, context + " checksum");
  if (len > kMaxBlockPayload) {
    throw StoreFormatError(file->path() + ": " + context + " length " +
                           std::to_string(len) + " exceeds the format cap");
  }
  common::Bytes payload(len);
  if (len != 0) file->read_exact(payload.data(), len, context + " payload");
  if (crc32(payload) != expected_crc) {
    count_metric("iotls_store_crc_failures_total",
                 "Capture-store frames rejected by checksum", 1);
    throw StoreCorruptionError(file->path() + ": " + context +
                               " checksum mismatch");
  }
  return payload;
}

}  // namespace

ShardReader::ShardReader(const std::string& path)
    : file_(CheckedFile::open_read(path)) {
  std::array<std::uint8_t, kShardMagic.size()> magic{};
  file_.read_exact(magic.data(), magic.size(), "shard magic");
  if (magic != kShardMagic) {
    throw StoreFormatError(path + ": bad shard magic (not a capture-store "
                           "shard file)");
  }
  try {
    header_ = decode_shard_header(read_framed_payload(&file_, "shard header"));
  } catch (const StoreFormatError& e) {
    throw StoreFormatError(path + ": " + e.what());
  }
}

bool ShardReader::next(std::vector<testbed::PassiveConnectionGroup>* out) {
  out->clear();
  if (finished_) return false;

  std::uint8_t type = 0;
  if (file_.read(&type, 1) != 1) {
    throw StoreCorruptionError(file_.path() +
                               ": shard truncated before footer");
  }
  if (type == kBlockGroups) {
    const common::Bytes payload = read_framed_payload(&file_, "group block");
    try {
      decode_block(payload, header_, &dict_, out);
    } catch (const StoreFormatError& e) {
      throw StoreFormatError(file_.path() + ": " + e.what());
    }
    ++blocks_;
    block_groups_.push_back(out->size());
    groups_ += out->size();
    count_metric("iotls_store_blocks_read_total",
                 "Capture-store blocks decoded", 1);
    return true;
  }
  if (type == kBlockFooter) {
    const common::Bytes payload = read_framed_payload(&file_, "shard footer");
    try {
      footer_ = decode_shard_footer(payload);
    } catch (const StoreFormatError& e) {
      throw StoreFormatError(file_.path() + ": footer: " + e.what());
    }
    if (footer_.groups != groups_ || footer_.blocks != blocks_ ||
        footer_.dict_entries != dict_.size()) {
      throw StoreCorruptionError(
          file_.path() + ": footer totals disagree with blocks read (footer " +
          std::to_string(footer_.groups) + " groups / " +
          std::to_string(footer_.blocks) + " blocks / " +
          std::to_string(footer_.dict_entries) + " dict entries; read " +
          std::to_string(groups_) + " / " + std::to_string(blocks_) + " / " +
          std::to_string(dict_.size()) + ")");
    }
    if (footer_.has_stats) {
      for (std::size_t i = 0; i < block_groups_.size(); ++i) {
        if (footer_.block_stats[i].groups != block_groups_[i]) {
          throw StoreCorruptionError(
              file_.path() + ": footer stats claim " +
              std::to_string(footer_.block_stats[i].groups) +
              " groups in block " + std::to_string(i) + " but it decoded " +
              std::to_string(block_groups_[i]));
        }
      }
      if (footer_.dictionary != dict_.entries()) {
        throw StoreCorruptionError(
            file_.path() +
            ": footer dictionary disagrees with the in-block entries");
      }
    }
    std::uint8_t extra = 0;
    if (file_.read(&extra, 1) != 0) {
      throw StoreCorruptionError(file_.path() +
                                 ": trailing bytes after the shard footer");
    }
    count_metric("iotls_store_blocks_read_total",
                 "Capture-store blocks decoded", 1);
    finished_ = true;
    return false;
  }
  throw StoreFormatError(file_.path() + ": unknown block type " +
                         std::to_string(type));
}

ShardIndex read_shard_index(const std::string& path) {
  ShardIndex index;
  index.path = path;
  CheckedFile file = CheckedFile::open_read(path);
  std::array<std::uint8_t, kShardMagic.size()> magic{};
  file.read_exact(magic.data(), magic.size(), "shard magic");
  if (magic != kShardMagic) {
    throw StoreFormatError(path + ": bad shard magic (not a capture-store "
                           "shard file)");
  }
  try {
    index.header =
        decode_shard_header(read_framed_payload(&file, "shard header"));
  } catch (const StoreFormatError& e) {
    throw StoreFormatError(path + ": " + e.what());
  }
  for (;;) {
    const std::uint64_t frame_offset = file.tell();
    std::uint8_t type = 0;
    if (file.read(&type, 1) != 1) {
      throw StoreCorruptionError(path + ": shard truncated before footer");
    }
    if (type == kBlockGroups) {
      const std::uint32_t len = read_u32(&file, "group block length");
      (void)read_u32(&file, "group block checksum");
      if (len > kMaxBlockPayload) {
        throw StoreFormatError(path + ": group block length " +
                               std::to_string(len) +
                               " exceeds the format cap");
      }
      // Seek over the payload instead of reading it — BlockFetcher CRC-
      // checks the blocks a scan actually touches.
      file.seek(file.tell() + len);
      index.blocks.push_back(BlockRef{frame_offset, len});
      continue;
    }
    if (type == kBlockFooter) {
      const common::Bytes payload = read_framed_payload(&file, "shard footer");
      try {
        index.footer = decode_shard_footer(payload);
      } catch (const StoreFormatError& e) {
        throw StoreFormatError(path + ": footer: " + e.what());
      }
      if (index.footer.blocks != index.blocks.size()) {
        throw StoreCorruptionError(
            path + ": footer counts " + std::to_string(index.footer.blocks) +
            " blocks but the shard frames " +
            std::to_string(index.blocks.size()));
      }
      std::uint8_t extra = 0;
      if (file.read(&extra, 1) != 0) {
        throw StoreCorruptionError(path +
                                   ": trailing bytes after the shard footer");
      }
      return index;
    }
    throw StoreFormatError(path + ": unknown block type " +
                           std::to_string(type));
  }
}

BlockFetcher::BlockFetcher(const ShardIndex& index)
    : index_(index), file_(CheckedFile::open_read(index.path)) {}

common::Bytes BlockFetcher::fetch(std::size_t i) {
  const BlockRef& ref = index_.blocks.at(i);
  file_.seek(ref.offset);
  std::uint8_t type = 0;
  file_.read_exact(&type, 1, "group block type");
  if (type != kBlockGroups) {
    throw StoreCorruptionError(file_.path() + ": block " + std::to_string(i) +
                               " frame type changed under the index");
  }
  common::Bytes payload = read_framed_payload(&file_, "group block");
  if (payload.size() != ref.length) {
    throw StoreCorruptionError(file_.path() + ": block " + std::to_string(i) +
                               " length changed under the index");
  }
  return payload;
}

std::vector<std::string> list_shards(const std::string& dir,
                                     bool allow_empty) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    throw StoreIoError("cannot read store directory " + dir + ": " +
                       ec.message());
  }
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() >= std::string(kShardSuffix).size() &&
        name.ends_with(kShardSuffix)) {
      paths.push_back(entry.path().string());
    }
  }
  if (paths.empty() && !allow_empty) {
    throw StoreIoError("no " + std::string(kShardSuffix) + " shards in " +
                       dir);
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

DatasetCursor::DatasetCursor(std::vector<std::string> shard_paths)
    : shard_paths_(std::move(shard_paths)) {}

DatasetCursor DatasetCursor::open(const std::string& dir) {
  return DatasetCursor(list_shards(dir));
}

void DatasetCursor::for_each(
    const std::function<void(const testbed::PassiveConnectionGroup&)>& fn)
    const {
  std::vector<testbed::PassiveConnectionGroup> block;
  for (const auto& path : shard_paths_) {
    ShardReader reader(path);
    while (reader.next(&block)) {
      for (const auto& group : block) fn(group);
    }
  }
}

ValidateReport validate_shard(const std::string& path) {
  ShardReader reader(path);
  std::vector<testbed::PassiveConnectionGroup> block;
  while (reader.next(&block)) {
  }
  ValidateReport report;
  report.shards = 1;
  report.groups = reader.groups_read();
  report.blocks = reader.blocks_read();
  report.bytes = file_size(path);
  return report;
}

ValidateReport validate_store(const std::string& dir, std::size_t threads) {
  const std::vector<std::string> paths = list_shards(dir);
  struct ShardCheck {
    ValidateReport report;
    ShardHeader header;
  };
  const auto checks =
      common::parallel_map(threads, paths, [](const std::string& path) {
        ShardCheck check;
        check.header = ShardReader(path).header();
        check.report = validate_shard(path);
        return check;
      });

  ValidateReport total;
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const auto& header = checks[i].header;
    if (header.shard_count != checks.size()) {
      throw StoreFormatError(
          paths[i] + ": header claims " + std::to_string(header.shard_count) +
          " shards but the store has " + std::to_string(checks.size()));
    }
    if (header.shard_index != i) {
      throw StoreFormatError(paths[i] + ": header shard_index " +
                             std::to_string(header.shard_index) +
                             " does not match its position " +
                             std::to_string(i));
    }
    if (header.seed != checks[0].header.seed ||
        header.first != checks[0].header.first ||
        header.last != checks[0].header.last) {
      throw StoreFormatError(paths[i] +
                             ": header seed/window disagrees with shard 0");
    }
    total.shards += 1;
    total.groups += checks[i].report.groups;
    total.blocks += checks[i].report.blocks;
    total.bytes += checks[i].report.bytes;
  }
  return total;
}

testbed::PassiveDataset read_store(const std::string& dir) {
  testbed::PassiveDataset dataset;
  DatasetCursor::open(dir).for_each(
      [&](const testbed::PassiveConnectionGroup& group) {
        dataset.add(group);
      });
  return dataset;
}

}  // namespace iotls::store
