// The one file under src/store/ + tools/store/ allowed to touch raw stdio
// (enforced by the iotls-lint `raw-io` rule).
#include "store/io.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"

namespace iotls::store {

namespace {

std::string errno_text() { return std::strerror(errno); }

void count_bytes(const char* name, std::size_t n) {
  if (!obs::metrics_enabled() || n == 0) return;
  obs::MetricsRegistry::global()
      .counter(name, "Capture-store bytes through CheckedFile")
      .inc(static_cast<std::uint64_t>(n));
}

}  // namespace

CheckedFile::CheckedFile(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

CheckedFile::CheckedFile(CheckedFile&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)),
      written_(other.written_),
      read_count_(other.read_count_),
      eof_(other.eof_) {}

CheckedFile& CheckedFile::operator=(CheckedFile&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
    written_ = other.written_;
    read_count_ = other.read_count_;
    eof_ = other.eof_;
  }
  return *this;
}

CheckedFile::~CheckedFile() {
  if (file_ != nullptr) std::fclose(file_);
}

CheckedFile CheckedFile::open_read(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw StoreIoError("cannot open " + path + " for reading: " +
                       errno_text());
  }
  return CheckedFile(file, path);
}

CheckedFile CheckedFile::create(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw StoreIoError("cannot create " + path + ": " + errno_text());
  }
  return CheckedFile(file, path);
}

void CheckedFile::write(common::BytesView data) {
  if (data.empty()) return;
  if (file_ == nullptr) throw StoreIoError("write to closed file " + path_);
  const std::size_t n = std::fwrite(data.data(), 1, data.size(), file_);
  if (n != data.size()) {
    throw StoreIoError("short write to " + path_ + " (" + std::to_string(n) +
                       "/" + std::to_string(data.size()) + " bytes): " +
                       errno_text());
  }
  written_ += n;
  count_bytes("iotls_store_bytes_written_total", n);
}

void CheckedFile::write(const std::string& text) {
  write(common::BytesView(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::size_t CheckedFile::read(void* out, std::size_t n) {
  if (file_ == nullptr) throw StoreIoError("read from closed file " + path_);
  const std::size_t got = std::fread(out, 1, n, file_);
  if (got < n) {
    if (std::ferror(file_) != 0) {
      throw StoreIoError("read error on " + path_ + ": " + errno_text());
    }
    eof_ = true;
  }
  read_count_ += got;
  count_bytes("iotls_store_bytes_read_total", got);
  return got;
}

void CheckedFile::read_exact(void* out, std::size_t n,
                             const std::string& context) {
  const std::size_t got = read(out, n);
  if (got != n) {
    throw StoreCorruptionError(path_ + ": truncated " + context + " (got " +
                               std::to_string(got) + " of " +
                               std::to_string(n) + " bytes)");
  }
}

void CheckedFile::seek(std::uint64_t offset) {
  if (file_ == nullptr) throw StoreIoError("seek on closed file " + path_);
  if (offset > static_cast<std::uint64_t>(
                   std::numeric_limits<long>::max()) ||
      std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    throw StoreIoError("cannot seek to offset " + std::to_string(offset) +
                       " in " + path_ + ": " + errno_text());
  }
  eof_ = false;
}

std::uint64_t CheckedFile::tell() const {
  if (file_ == nullptr) throw StoreIoError("tell on closed file " + path_);
  const long pos = std::ftell(file_);
  if (pos < 0) {
    throw StoreIoError("cannot tell position in " + path_ + ": " +
                       errno_text());
  }
  return static_cast<std::uint64_t>(pos);
}

void CheckedFile::flush() {
  if (file_ == nullptr) return;
  if (std::fflush(file_) != 0) {
    throw StoreIoError("flush failed on " + path_ + ": " + errno_text());
  }
}

void CheckedFile::close() {
  if (file_ == nullptr) return;
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    throw StoreIoError("close failed on " + path_ + ": " + errno_text());
  }
}

std::uint64_t file_size(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw StoreIoError("cannot stat " + path + ": " + ec.message());
  }
  return static_cast<std::uint64_t>(size);
}

}  // namespace iotls::store
