#include "x509/certificate.hpp"

#include "common/hex.hpp"
#include "common/strings.hpp"
#include "crypto/sha256.hpp"

namespace iotls::x509 {

namespace {

common::Bytes serialize_date(const common::SimDate& d) {
  common::ByteWriter w;
  w.u16(static_cast<std::uint16_t>(d.year));
  w.u8(static_cast<std::uint8_t>(d.month));
  w.u8(static_cast<std::uint8_t>(d.day));
  return w.take();
}

common::SimDate parse_date(common::ByteReader& r) {
  common::SimDate d;
  d.year = r.u16();
  d.month = r.u8();
  d.day = r.u8();
  return d;
}

}  // namespace

common::Bytes TbsCertificate::serialize() const {
  common::ByteWriter w;
  w.vec(serial, 1);
  w.raw(issuer.serialize());
  w.raw(subject.serialize());
  w.raw(serialize_date(validity.not_before));
  w.raw(serialize_date(validity.not_after));
  w.vec(subject_public_key.serialize(), 2);
  w.vec(extensions.serialize(), 2);
  return w.take();
}

TbsCertificate TbsCertificate::parse(common::ByteReader& r) {
  TbsCertificate tbs;
  tbs.serial = r.vec(1);
  tbs.issuer = DistinguishedName::parse(r);
  tbs.subject = DistinguishedName::parse(r);
  tbs.validity.not_before = parse_date(r);
  tbs.validity.not_after = parse_date(r);
  tbs.subject_public_key = crypto::RsaPublicKey::parse(r.vec(2));
  const common::Bytes ext_bytes = r.vec(2);
  common::ByteReader ext_reader(ext_bytes);
  tbs.extensions = CertExtensions::parse(ext_reader);
  ext_reader.expect_end("CertExtensions");
  return tbs;
}

std::string Certificate::fingerprint() const {
  crypto::Sha256 h;
  h.update(tbs.serialize());
  h.update(signature);
  const auto d = h.finish();
  return common::hex_encode(common::BytesView(d.data(), d.size()));
}

common::Bytes Certificate::serialize() const {
  common::ByteWriter w;
  w.vec(tbs.serialize(), 3);
  w.vec(signature, 2);
  return w.take();
}

Certificate Certificate::parse(common::ByteReader& r) {
  Certificate cert;
  const common::Bytes tbs_bytes = r.vec(3);
  common::ByteReader tbs_reader(tbs_bytes);
  cert.tbs = TbsCertificate::parse(tbs_reader);
  tbs_reader.expect_end("TbsCertificate");
  cert.signature = r.vec(2);
  return cert;
}

Certificate Certificate::parse(common::BytesView data) {
  common::ByteReader r(data);
  Certificate cert = parse(r);
  r.expect_end("Certificate");
  return cert;
}

bool Certificate::matches_hostname(std::string_view hostname) const {
  if (!tbs.extensions.subject_alt_names.empty()) {
    for (const auto& san : tbs.extensions.subject_alt_names) {
      if (common::hostname_matches(san, hostname)) return true;
    }
    return false;
  }
  return common::hostname_matches(tbs.subject.common_name, hostname);
}

Certificate issue_certificate(const TbsCertificate& tbs,
                              const crypto::RsaPrivateKey& issuer_key) {
  Certificate cert;
  cert.tbs = tbs;
  cert.signature = crypto::rsa_sign(issuer_key, tbs.serialize());
  return cert;
}

Certificate make_self_signed_root(const DistinguishedName& subject,
                                  common::Bytes serial,
                                  const crypto::RsaKeyPair& keypair,
                                  Validity validity) {
  TbsCertificate tbs;
  tbs.serial = std::move(serial);
  tbs.issuer = subject;
  tbs.subject = subject;
  tbs.validity = validity;
  tbs.subject_public_key = keypair.pub;
  tbs.extensions.basic_constraints = BasicConstraints{true, std::nullopt};
  tbs.extensions.key_usage = KeyUsage{
      .digital_signature = true,
      .key_encipherment = false,
      .key_cert_sign = true,
      .crl_sign = true,
  };
  return issue_certificate(tbs, keypair.priv);
}

}  // namespace iotls::x509
