#include "x509/name.hpp"

namespace iotls::x509 {

std::string DistinguishedName::str() const {
  std::string out = "CN=" + common_name;
  if (!organization.empty()) out += ", O=" + organization;
  if (!country.empty()) out += ", C=" + country;
  return out;
}

common::Bytes DistinguishedName::serialize() const {
  common::ByteWriter w;
  w.str(common_name, 2);
  w.str(organization, 2);
  w.str(country, 1);
  return w.take();
}

DistinguishedName DistinguishedName::parse(common::ByteReader& r) {
  DistinguishedName dn;
  dn.common_name = r.str(2);
  dn.organization = r.str(2);
  dn.country = r.str(1);
  return dn;
}

}  // namespace iotls::x509
