// Certificate-chain verification with a pluggable policy.
//
// The policy knobs model the exact validation flaws the paper measures
// (Table 7): devices that skip validation entirely, devices that validate
// the chain but not the hostname (the Amazon family), and devices that
// ignore BasicConstraints. The error taxonomy deliberately separates
// UnknownIssuer from BadSignature — the distinction that powers the
// root-store probing side channel (§4.2).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/simtime.hpp"
#include "obs/trace.hpp"
#include "x509/certificate.hpp"

namespace iotls::x509 {

enum class VerifyError {
  Ok,
  EmptyChain,
  /// No trust anchor with a subject matching the chain's top issuer.
  UnknownIssuer,
  /// Anchor (or intermediate) found, but the signature does not verify
  /// under its key — the spoofed-CA case.
  BadSignature,
  Expired,
  NotYetValid,
  HostnameMismatch,
  /// An issuing certificate in the chain lacks CA=true BasicConstraints.
  InvalidBasicConstraints,
  /// The leaf's serial appears on a revocation list (§6 extension).
  Revoked,
  /// The presented leaf does not match the client's pin (§6 extension:
  /// "the interception attacks we presented could have been prevented
  /// with the proper use of certificate pinning").
  PinMismatch,
};

std::string verify_error_name(VerifyError err);

/// The pipeline stage a given error comes from ("validity", "signature",
/// "hostname", ...) — the `failing_check` attribute in traces.
std::string verify_check_name(VerifyError err);

/// Which checks a client performs. Defaults are a correct validator.
struct VerifyPolicy {
  /// Master switch — false models devices with no validation at all
  /// (Table 7 "NoValidation" rows). Every other knob is then ignored.
  bool validate = true;
  bool check_signature = true;
  bool check_hostname = true;
  bool check_basic_constraints = true;
  bool check_validity = true;

  static VerifyPolicy strict() { return VerifyPolicy{}; }
  static VerifyPolicy none() { return VerifyPolicy{.validate = false}; }
  static VerifyPolicy no_hostname() {
    return VerifyPolicy{.check_hostname = false};
  }
};

struct VerifyResult {
  VerifyError error = VerifyError::Ok;
  /// Chain index (0 = leaf) where the failure occurred, -1 if n/a.
  int failed_depth = -1;

  [[nodiscard]] bool ok() const { return error == VerifyError::Ok; }
};

/// Verify a server chain (leaf first, optionally ending in a root) against
/// a set of trust anchors.
///
/// Trust anchors are looked up by subject DN; a presented self-signed root
/// is ignored in favour of the store's copy of the key — precisely how the
/// spoofed-CA probe forces a BadSignature instead of a silent accept.
///
/// `span` (non-owning, may be null) receives one `x509_check` event per
/// pipeline stage at TraceLevel::Full, in check order, each marked
/// pass/fail/skipped/not_reached.
VerifyResult verify_chain(std::span<const Certificate> chain,
                          std::string_view hostname,
                          std::span<const Certificate> trust_anchors,
                          common::SimDate now,
                          const VerifyPolicy& policy = VerifyPolicy::strict(),
                          obs::Span* span = nullptr);

}  // namespace iotls::x509
