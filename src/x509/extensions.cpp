#include "x509/extensions.hpp"

namespace iotls::x509 {

common::Bytes CertExtensions::serialize() const {
  common::ByteWriter w;

  w.u8(basic_constraints.has_value() ? 1 : 0);
  if (basic_constraints) {
    w.u8(basic_constraints->is_ca ? 1 : 0);
    w.u8(basic_constraints->path_len_constraint.has_value() ? 1 : 0);
    if (basic_constraints->path_len_constraint) {
      w.u8(static_cast<std::uint8_t>(*basic_constraints->path_len_constraint));
    }
  }

  if (subject_alt_names.size() > 0xFF) {
    throw common::ParseError("too many subject alt names");
  }
  w.u8(static_cast<std::uint8_t>(subject_alt_names.size()));
  for (const auto& san : subject_alt_names) w.str(san, 1);

  w.u8(key_usage.has_value() ? 1 : 0);
  if (key_usage) {
    std::uint8_t bits = 0;
    if (key_usage->digital_signature) bits |= 0x01;
    if (key_usage->key_encipherment) bits |= 0x02;
    if (key_usage->key_cert_sign) bits |= 0x04;
    if (key_usage->crl_sign) bits |= 0x08;
    w.u8(bits);
  }

  w.str(crl_distribution_point, 1);
  w.str(ocsp_responder, 1);
  w.u8(must_staple ? 1 : 0);
  return w.take();
}

CertExtensions CertExtensions::parse(common::ByteReader& r) {
  CertExtensions ext;

  if (r.u8()) {
    BasicConstraints bc;
    bc.is_ca = r.u8() != 0;
    if (r.u8()) bc.path_len_constraint = r.u8();
    ext.basic_constraints = bc;
  }

  const std::size_t n_sans = r.u8();
  for (std::size_t i = 0; i < n_sans; ++i) {
    ext.subject_alt_names.push_back(r.str(1));
  }

  if (r.u8()) {
    const std::uint8_t bits = r.u8();
    KeyUsage ku;
    ku.digital_signature = bits & 0x01;
    ku.key_encipherment = bits & 0x02;
    ku.key_cert_sign = bits & 0x04;
    ku.crl_sign = bits & 0x08;
    ext.key_usage = ku;
  }

  ext.crl_distribution_point = r.str(1);
  ext.ocsp_responder = r.str(1);
  ext.must_staple = r.u8() != 0;
  return ext;
}

}  // namespace iotls::x509
