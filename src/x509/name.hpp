// X.509 distinguished names, modelled structurally (no ASN.1).
//
// The root-store probe spoofs a root's Subject Name / Issuer Name / Serial
// Number (§4.2), so DN identity and equality are load-bearing here.
#pragma once

#include <compare>
#include <string>

#include "common/bytes.hpp"

namespace iotls::x509 {

/// Subset of RDN attributes the study needs. Equality is field-wise —
/// exactly what a root-store lookup keys on.
struct DistinguishedName {
  std::string common_name;
  std::string organization;
  std::string country;

  auto operator<=>(const DistinguishedName&) const = default;

  /// "CN=GlobalRoot CA, O=Example Trust, C=US"
  [[nodiscard]] std::string str() const;

  [[nodiscard]] common::Bytes serialize() const;
  static DistinguishedName parse(common::ByteReader& r);

  static DistinguishedName cn(std::string common_name) {
    return DistinguishedName{std::move(common_name), "", ""};
  }
};

}  // namespace iotls::x509
