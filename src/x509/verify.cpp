#include "x509/verify.hpp"

#include <algorithm>
#include <vector>

#include "crypto/cache.hpp"
#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"

namespace iotls::x509 {

std::string verify_error_name(VerifyError err) {
  switch (err) {
    case VerifyError::Ok: return "ok";
    case VerifyError::EmptyChain: return "empty_chain";
    case VerifyError::UnknownIssuer: return "unknown_issuer";
    case VerifyError::BadSignature: return "bad_signature";
    case VerifyError::Expired: return "expired";
    case VerifyError::NotYetValid: return "not_yet_valid";
    case VerifyError::HostnameMismatch: return "hostname_mismatch";
    case VerifyError::InvalidBasicConstraints:
      return "invalid_basic_constraints";
    case VerifyError::Revoked: return "revoked";
    case VerifyError::PinMismatch: return "pin_mismatch";
  }
  return "unknown";
}

std::string verify_check_name(VerifyError err) {
  switch (err) {
    case VerifyError::Ok: return "none";
    case VerifyError::EmptyChain: return "chain_present";
    case VerifyError::NotYetValid:
    case VerifyError::Expired: return "validity";
    case VerifyError::UnknownIssuer:
    case VerifyError::BadSignature: return "signature";
    case VerifyError::InvalidBasicConstraints: return "basic_constraints";
    case VerifyError::HostnameMismatch: return "hostname";
    case VerifyError::Revoked: return "revocation";
    case VerifyError::PinMismatch: return "pinning";
  }
  return "unknown";
}

namespace {

const Certificate* find_anchor(std::span<const Certificate> anchors,
                               const DistinguishedName& subject) {
  const auto it =
      std::find_if(anchors.begin(), anchors.end(), [&](const Certificate& c) {
        return c.tbs.subject == subject;
      });
  return it == anchors.end() ? nullptr : &*it;
}

/// The per-call state the expensive stages depend on, computed once: the
/// effective chain (presented self-signed root dropped when the store has
/// it) and, when signatures are checked, the issuer key each certificate
/// verifies under. Two trust stores that resolve the same issuer keys are
/// interchangeable for verification — which is exactly what lets the chain
/// cache key on the *resolved* keys instead of hashing the whole store.
struct ResolvedChain {
  std::span<const Certificate> certs;
  /// Parallel to `certs` while resolution succeeds; a trailing nullptr
  /// marks the first UnknownIssuer (resolution stops there). Empty when
  /// the policy skips signature checks.
  std::vector<const crypto::RsaPublicKey*> issuer_keys;
};

ResolvedChain resolve_chain(std::span<const Certificate> chain,
                            std::span<const Certificate> trust_anchors,
                            const VerifyPolicy& policy) {
  ResolvedChain resolved;
  std::size_t effective_len = chain.size();
  if (effective_len > 1 && chain[effective_len - 1].is_self_signed() &&
      find_anchor(trust_anchors, chain[effective_len - 1].tbs.subject)) {
    --effective_len;
  }
  resolved.certs = chain.first(effective_len);

  if (policy.check_signature) {
    for (std::size_t i = 0; i < resolved.certs.size(); ++i) {
      const Certificate& cert = resolved.certs[i];
      const crypto::RsaPublicKey* issuer_key = nullptr;
      if (i + 1 < resolved.certs.size() &&
          resolved.certs[i + 1].tbs.subject == cert.tbs.issuer) {
        issuer_key = &resolved.certs[i + 1].tbs.subject_public_key;
      } else if (const Certificate* anchor =
                     find_anchor(trust_anchors, cert.tbs.issuer)) {
        issuer_key = &anchor->tbs.subject_public_key;
      }
      resolved.issuer_keys.push_back(issuer_key);
      if (issuer_key == nullptr) break;
    }
  }
  return resolved;
}

VerifyResult verify_resolved(const ResolvedChain& resolved,
                             std::string_view hostname, common::SimDate now,
                             const VerifyPolicy& policy) {
  const std::span<const Certificate> certs = resolved.certs;

  if (policy.check_validity) {
    for (std::size_t i = 0; i < certs.size(); ++i) {
      if (now < certs[i].tbs.validity.not_before) {
        return VerifyResult{VerifyError::NotYetValid, static_cast<int>(i)};
      }
      if (now > certs[i].tbs.validity.not_after) {
        return VerifyResult{VerifyError::Expired, static_cast<int>(i)};
      }
    }
  }

  if (policy.check_signature) {
    for (std::size_t i = 0; i < certs.size(); ++i) {
      if (resolved.issuer_keys[i] == nullptr) {
        return VerifyResult{VerifyError::UnknownIssuer, static_cast<int>(i)};
      }
      if (!crypto::rsa_verify(*resolved.issuer_keys[i],
                              certs[i].tbs.serialize(), certs[i].signature)) {
        return VerifyResult{VerifyError::BadSignature, static_cast<int>(i)};
      }
    }
  }

  if (policy.check_basic_constraints) {
    // Every certificate that issues another one in this chain must be a CA.
    for (std::size_t i = 1; i < certs.size(); ++i) {
      const auto& bc = certs[i].tbs.extensions.basic_constraints;
      if (!bc.has_value() || !bc->is_ca) {
        return VerifyResult{VerifyError::InvalidBasicConstraints,
                            static_cast<int>(i)};
      }
      if (bc->path_len_constraint.has_value() &&
          static_cast<int>(i) - 1 > *bc->path_len_constraint) {
        return VerifyResult{VerifyError::InvalidBasicConstraints,
                            static_cast<int>(i)};
      }
    }
  }

  if (policy.check_hostname && !hostname.empty()) {
    if (!certs[0].matches_hostname(hostname)) {
      return VerifyResult{VerifyError::HostnameMismatch, 0};
    }
  }

  return VerifyResult{};
}

// ---- chain-verification cache ----
//
// The full pipeline over a resolved chain is a pure function of: the
// effective certificates, the issuer keys they verify under, the policy
// knobs, the hostname, and — for validity — only *where* `now` sits
// relative to each certificate's window (before / within / after). Keying
// on that tristate instead of the raw date means a chain verified on many
// simulated days hits the same entry while it stays inside (or outside)
// its window, yet crossing not_before/not_after lands in a fresh slot —
// expiry semantics are untouched.

std::uint64_t pack_result(const VerifyResult& result) {
  return (static_cast<std::uint64_t>(static_cast<std::uint8_t>(result.error))
          << 32) |
         static_cast<std::uint32_t>(result.failed_depth);
}

VerifyResult unpack_result(std::uint64_t packed) {
  VerifyResult result;
  result.error =
      static_cast<VerifyError>(static_cast<std::uint8_t>(packed >> 32));
  result.failed_depth =
      static_cast<int>(static_cast<std::int32_t>(
          static_cast<std::uint32_t>(packed)));
  return result;
}

crypto::DigestCache::Key chain_cache_key(const ResolvedChain& resolved,
                                         std::string_view hostname,
                                         common::SimDate now,
                                         const VerifyPolicy& policy) {
  common::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(
      (policy.check_signature ? 1U : 0U) |
      (policy.check_hostname ? 2U : 0U) |
      (policy.check_basic_constraints ? 4U : 0U) |
      (policy.check_validity ? 8U : 0U)));
  w.str(hostname, 2);
  w.u8(static_cast<std::uint8_t>(resolved.certs.size()));
  for (const Certificate& cert : resolved.certs) {
    w.vec(cert.serialize(), 3);
    // Validity tristate: 0 = before the window, 1 = inside, 2 = after.
    std::uint8_t tristate = 1;
    if (now < cert.tbs.validity.not_before) {
      tristate = 0;
    } else if (now > cert.tbs.validity.not_after) {
      tristate = 2;
    }
    w.u8(tristate);
  }
  w.u8(static_cast<std::uint8_t>(resolved.issuer_keys.size()));
  for (const crypto::RsaPublicKey* key : resolved.issuer_keys) {
    if (key == nullptr) {
      w.u8(0);
    } else {
      w.u8(1);
      w.vec(key->serialize(), 2);
    }
  }
  return crypto::Sha256::digest(w.bytes());
}

VerifyResult verify_impl(std::span<const Certificate> chain,
                         std::string_view hostname,
                         std::span<const Certificate> trust_anchors,
                         common::SimDate now, const VerifyPolicy& policy) {
  if (!policy.validate) return VerifyResult{};
  if (chain.empty()) return VerifyResult{VerifyError::EmptyChain, -1};

  const ResolvedChain resolved = resolve_chain(chain, trust_anchors, policy);

  if (!crypto::crypto_cache_enabled()) {
    return verify_resolved(resolved, hostname, now, policy);
  }
  const crypto::DigestCache::Key key =
      chain_cache_key(resolved, hostname, now, policy);
  if (const auto cached = crypto::chain_verify_cache().lookup(key)) {
    return unpack_result(*cached);
  }
  const VerifyResult result = verify_resolved(resolved, hostname, now, policy);
  crypto::chain_verify_cache().store(key, pack_result(result));
  return result;
}

struct VerifyMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  obs::Counter& result(const std::string& name) {
    return reg.counter("iotls_x509_verifications_total",
                       "Chain verifications by result", "result", name);
  }

  static VerifyMetrics& get() {
    static VerifyMetrics metrics;
    return metrics;
  }
};

/// Emit one `x509_check` event per pipeline stage, in the order the
/// verifier runs them, reconstructed from the final result (the pipeline
/// is short-circuiting, so the result pins down every stage's status).
void trace_checks(obs::Span& span, const VerifyPolicy& policy,
                  const VerifyResult& result) {
  struct Stage {
    const char* name;
    bool enabled;
  };
  const Stage stages[] = {
      {"chain_present", true},
      {"validity", policy.check_validity},
      {"signature", policy.check_signature},
      {"basic_constraints", policy.check_basic_constraints},
      {"hostname", policy.check_hostname},
  };
  const std::string failing = verify_check_name(result.error);
  bool reached = true;
  for (const auto& stage : stages) {
    std::string status;
    if (!stage.enabled) {
      status = "skipped";
    } else if (!reached) {
      status = "not_reached";
    } else if (!result.ok() && failing == stage.name) {
      status = "fail";
      reached = false;
    } else {
      status = "pass";
    }
    std::vector<obs::Attr> attrs{{"check", stage.name}, {"status", status}};
    if (status == "fail") {
      attrs.emplace_back("error", verify_error_name(result.error));
      attrs.emplace_back("depth", std::to_string(result.failed_depth));
    }
    span.event("x509_check", std::move(attrs));
  }
}

}  // namespace

VerifyResult verify_chain(std::span<const Certificate> chain,
                          std::string_view hostname,
                          std::span<const Certificate> trust_anchors,
                          common::SimDate now, const VerifyPolicy& policy,
                          obs::Span* span) {
  const VerifyResult result =
      verify_impl(chain, hostname, trust_anchors, now, policy);
  if (obs::metrics_enabled()) {
    VerifyMetrics::get().result(verify_error_name(result.error)).inc();
  }
  if (span != nullptr && span->full() && policy.validate) {
    trace_checks(*span, policy, result);
  }
  return result;
}

}  // namespace iotls::x509
