#include "x509/verify.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace iotls::x509 {

std::string verify_error_name(VerifyError err) {
  switch (err) {
    case VerifyError::Ok: return "ok";
    case VerifyError::EmptyChain: return "empty_chain";
    case VerifyError::UnknownIssuer: return "unknown_issuer";
    case VerifyError::BadSignature: return "bad_signature";
    case VerifyError::Expired: return "expired";
    case VerifyError::NotYetValid: return "not_yet_valid";
    case VerifyError::HostnameMismatch: return "hostname_mismatch";
    case VerifyError::InvalidBasicConstraints:
      return "invalid_basic_constraints";
    case VerifyError::Revoked: return "revoked";
    case VerifyError::PinMismatch: return "pin_mismatch";
  }
  return "unknown";
}

std::string verify_check_name(VerifyError err) {
  switch (err) {
    case VerifyError::Ok: return "none";
    case VerifyError::EmptyChain: return "chain_present";
    case VerifyError::NotYetValid:
    case VerifyError::Expired: return "validity";
    case VerifyError::UnknownIssuer:
    case VerifyError::BadSignature: return "signature";
    case VerifyError::InvalidBasicConstraints: return "basic_constraints";
    case VerifyError::HostnameMismatch: return "hostname";
    case VerifyError::Revoked: return "revocation";
    case VerifyError::PinMismatch: return "pinning";
  }
  return "unknown";
}

namespace {

const Certificate* find_anchor(std::span<const Certificate> anchors,
                               const DistinguishedName& subject) {
  const auto it =
      std::find_if(anchors.begin(), anchors.end(), [&](const Certificate& c) {
        return c.tbs.subject == subject;
      });
  return it == anchors.end() ? nullptr : &*it;
}

VerifyResult verify_impl(std::span<const Certificate> chain,
                         std::string_view hostname,
                         std::span<const Certificate> trust_anchors,
                         common::SimDate now, const VerifyPolicy& policy) {
  if (!policy.validate) return VerifyResult{};

  if (chain.empty()) return VerifyResult{VerifyError::EmptyChain, -1};

  // A presented self-signed root at the end of the chain is dropped; the
  // store's copy is authoritative (see header).
  std::size_t effective_len = chain.size();
  if (effective_len > 1 && chain[effective_len - 1].is_self_signed() &&
      find_anchor(trust_anchors, chain[effective_len - 1].tbs.subject)) {
    --effective_len;
  }
  const std::span<const Certificate> certs = chain.first(effective_len);

  if (policy.check_validity) {
    for (std::size_t i = 0; i < certs.size(); ++i) {
      if (now < certs[i].tbs.validity.not_before) {
        return VerifyResult{VerifyError::NotYetValid, static_cast<int>(i)};
      }
      if (now > certs[i].tbs.validity.not_after) {
        return VerifyResult{VerifyError::Expired, static_cast<int>(i)};
      }
    }
  }

  if (policy.check_signature) {
    for (std::size_t i = 0; i < certs.size(); ++i) {
      const Certificate& cert = certs[i];
      const crypto::RsaPublicKey* issuer_key = nullptr;
      if (i + 1 < certs.size() &&
          certs[i + 1].tbs.subject == cert.tbs.issuer) {
        issuer_key = &certs[i + 1].tbs.subject_public_key;
      } else {
        const Certificate* anchor =
            find_anchor(trust_anchors, cert.tbs.issuer);
        if (anchor == nullptr) {
          return VerifyResult{VerifyError::UnknownIssuer,
                              static_cast<int>(i)};
        }
        issuer_key = &anchor->tbs.subject_public_key;
      }
      if (!crypto::rsa_verify(*issuer_key, cert.tbs.serialize(),
                              cert.signature)) {
        return VerifyResult{VerifyError::BadSignature, static_cast<int>(i)};
      }
    }
  }

  if (policy.check_basic_constraints) {
    // Every certificate that issues another one in this chain must be a CA.
    for (std::size_t i = 1; i < certs.size(); ++i) {
      const auto& bc = certs[i].tbs.extensions.basic_constraints;
      if (!bc.has_value() || !bc->is_ca) {
        return VerifyResult{VerifyError::InvalidBasicConstraints,
                            static_cast<int>(i)};
      }
      if (bc->path_len_constraint.has_value() &&
          static_cast<int>(i) - 1 > *bc->path_len_constraint) {
        return VerifyResult{VerifyError::InvalidBasicConstraints,
                            static_cast<int>(i)};
      }
    }
  }

  if (policy.check_hostname && !hostname.empty()) {
    if (!certs[0].matches_hostname(hostname)) {
      return VerifyResult{VerifyError::HostnameMismatch, 0};
    }
  }

  return VerifyResult{};
}

struct VerifyMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  obs::Counter& result(const std::string& name) {
    return reg.counter("iotls_x509_verifications_total",
                       "Chain verifications by result", "result", name);
  }

  static VerifyMetrics& get() {
    static VerifyMetrics metrics;
    return metrics;
  }
};

/// Emit one `x509_check` event per pipeline stage, in the order the
/// verifier runs them, reconstructed from the final result (the pipeline
/// is short-circuiting, so the result pins down every stage's status).
void trace_checks(obs::Span& span, const VerifyPolicy& policy,
                  const VerifyResult& result) {
  struct Stage {
    const char* name;
    bool enabled;
  };
  const Stage stages[] = {
      {"chain_present", true},
      {"validity", policy.check_validity},
      {"signature", policy.check_signature},
      {"basic_constraints", policy.check_basic_constraints},
      {"hostname", policy.check_hostname},
  };
  const std::string failing = verify_check_name(result.error);
  bool reached = true;
  for (const auto& stage : stages) {
    std::string status;
    if (!stage.enabled) {
      status = "skipped";
    } else if (!reached) {
      status = "not_reached";
    } else if (!result.ok() && failing == stage.name) {
      status = "fail";
      reached = false;
    } else {
      status = "pass";
    }
    std::vector<obs::Attr> attrs{{"check", stage.name}, {"status", status}};
    if (status == "fail") {
      attrs.emplace_back("error", verify_error_name(result.error));
      attrs.emplace_back("depth", std::to_string(result.failed_depth));
    }
    span.event("x509_check", std::move(attrs));
  }
}

}  // namespace

VerifyResult verify_chain(std::span<const Certificate> chain,
                          std::string_view hostname,
                          std::span<const Certificate> trust_anchors,
                          common::SimDate now, const VerifyPolicy& policy,
                          obs::Span* span) {
  const VerifyResult result =
      verify_impl(chain, hostname, trust_anchors, now, policy);
  if (obs::metrics_enabled()) {
    VerifyMetrics::get().result(verify_error_name(result.error)).inc();
  }
  if (span != nullptr && span->full() && policy.validate) {
    trace_checks(*span, policy, result);
  }
  return result;
}

}  // namespace iotls::x509
