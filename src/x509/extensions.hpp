// X.509 v3 extensions relevant to the study: BasicConstraints (the
// InvalidBasicConstraints attack), SubjectAltName (hostname validation),
// KeyUsage, and the revocation pointers the Table-8 analysis looks for
// (CRL distribution point, OCSP responder URL, TLS-feature/Must-Staple).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace iotls::x509 {

/// RFC 5280 §4.2.1.9.
struct BasicConstraints {
  bool is_ca = false;
  /// Max number of intermediate CAs below this one; nullopt = unlimited.
  std::optional<int> path_len_constraint;

  bool operator==(const BasicConstraints&) const = default;
};

/// RFC 5280 §4.2.1.3 (subset).
struct KeyUsage {
  bool digital_signature = false;
  bool key_encipherment = false;
  bool key_cert_sign = false;
  bool crl_sign = false;

  bool operator==(const KeyUsage&) const = default;
};

struct CertExtensions {
  std::optional<BasicConstraints> basic_constraints;
  std::vector<std::string> subject_alt_names;  // DNS names, may contain "*."
  std::optional<KeyUsage> key_usage;
  /// RFC 5280 §4.2.1.13 — where to fetch the CRL.
  std::string crl_distribution_point;
  /// RFC 5280 §4.2.2.1 AIA — OCSP responder URL.
  std::string ocsp_responder;
  /// RFC 7633 TLS feature extension requesting a stapled OCSP response.
  bool must_staple = false;

  bool operator==(const CertExtensions&) const = default;

  [[nodiscard]] common::Bytes serialize() const;
  static CertExtensions parse(common::ByteReader& r);
};

}  // namespace iotls::x509
