// Structural X.509 certificates with real RSA signatures.
//
// Certificates are modelled as plain structs with a deterministic TBS
// ("to-be-signed") serialization; the signature is RSA over SHA-256 of those
// bytes. No ASN.1/DER — the study never parses DER, it only needs identity,
// validity, extensions, and a signature that genuinely verifies or fails
// (DESIGN.md §6).
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/simtime.hpp"
#include "crypto/rsa.hpp"
#include "x509/extensions.hpp"
#include "x509/name.hpp"

namespace iotls::x509 {

struct Validity {
  common::SimDate not_before{2015, 1, 1};
  common::SimDate not_after{2035, 1, 1};

  bool operator==(const Validity&) const = default;

  [[nodiscard]] bool contains(common::SimDate when) const {
    return not_before <= when && when <= not_after;
  }
};

/// The signed portion of a certificate.
struct TbsCertificate {
  common::Bytes serial;  // opaque, issuer-assigned
  DistinguishedName issuer;
  DistinguishedName subject;
  Validity validity;
  crypto::RsaPublicKey subject_public_key;
  CertExtensions extensions;

  bool operator==(const TbsCertificate&) const = default;

  [[nodiscard]] common::Bytes serialize() const;
  static TbsCertificate parse(common::ByteReader& r);
};

struct Certificate {
  TbsCertificate tbs;
  common::Bytes signature;

  bool operator==(const Certificate&) const = default;

  [[nodiscard]] bool is_self_signed() const {
    return tbs.issuer == tbs.subject;
  }

  /// SHA-256 over TBS||signature — stable identity for stores/logs.
  [[nodiscard]] std::string fingerprint() const;

  [[nodiscard]] common::Bytes serialize() const;
  static Certificate parse(common::ByteReader& r);
  static Certificate parse(common::BytesView data);

  /// True if `hostname` matches any SAN, or (when no SANs are present)
  /// the subject CN — the RFC 2818 fallback most IoT clients implement.
  [[nodiscard]] bool matches_hostname(std::string_view hostname) const;
};

/// Sign `tbs` with the issuer's private key.
Certificate issue_certificate(const TbsCertificate& tbs,
                              const crypto::RsaPrivateKey& issuer_key);

/// Convenience builder for a self-signed CA root.
Certificate make_self_signed_root(const DistinguishedName& subject,
                                  common::Bytes serial,
                                  const crypto::RsaKeyPair& keypair,
                                  Validity validity = Validity{});

}  // namespace iotls::x509
