// IotlsStudy — the top-level orchestrator and public entry point.
//
// One object owns the testbed and lazily runs each of the paper's
// experiments; every table and figure has a structured accessor (for code)
// and a `render_*` method (for humans / the bench binaries).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/fpstudy.hpp"
#include "analysis/longitudinal.hpp"
#include "analysis/party.hpp"
#include "analysis/revocation.hpp"
#include "analysis/staleness.hpp"
#include "analysis/summary.hpp"
#include "core/table4.hpp"
#include "mitm/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "probe/prober.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "testbed/testbed.hpp"

namespace iotls::core {

/// Wall/CPU cost of one lazily-run experiment (the parallel engine's
/// speedup report; `tasks` = per-device units fanned out over the pool).
struct ExperimentTiming {
  std::string name;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  std::size_t tasks = 0;
  std::size_t threads = 0;
};

class IotlsStudy {
 public:
  struct Options {
    std::uint64_t seed = 42;
    /// Scales the synthetic passive dataset's connection counts.
    double passive_scale = 1.0;
    /// Restrict the passive window (full study by default).
    common::Month passive_first = common::kStudyStart;
    common::Month passive_last = common::kStudyEnd;
    /// Worker threads for the per-device experiment fan-out: 0 = hardware
    /// concurrency, 1 = serial. Every table and figure is byte-identical
    /// across all values (see DESIGN.md, "Concurrency model").
    std::size_t threads = 0;
    /// Drive every experiment's connections through per-worker session
    /// engines (src/engine/): whole-device chains interleave on each
    /// thread and each engine tick batches its crypto. Every table,
    /// figure, trace, and store artifact is byte-identical to the
    /// synchronous path (DESIGN.md §14; bench_engine gates on parity).
    bool engine = false;
    /// CA universe override (nullptr = CaUniverse::standard()); mostly for
    /// tests that want a smaller, faster universe.
    const pki::CaUniverse* universe = nullptr;
    /// Handshake tracing level (IOTLS_TRACE in the bench binaries). Traces
    /// are deterministic: byte-identical at any `threads` value, and every
    /// table/figure is byte-identical whether tracing is on or off.
    obs::TraceLevel trace_level = obs::TraceLevel::Off;
    /// Enables the hot-path metric counters (IOTLS_METRICS in the bench
    /// binaries). Process-wide: the constructor flips the global
    /// obs::set_metrics_enabled() switch, so the most recent study wins.
    /// Metrics are an operator surface — wall-clock/scheduling dependent,
    /// never an input to any table, figure, or trace.
    bool metrics_enabled = false;
    /// Load the passive dataset from this capture-store directory instead
    /// of generating it (the seed/scale/window knobs above then describe
    /// the run that *wrote* the store, not a fresh generation).
    std::string passive_store;
  };

  IotlsStudy() : IotlsStudy(Options{}) {}
  explicit IotlsStudy(Options options);

  [[nodiscard]] testbed::Testbed& testbed() { return *testbed_; }
  [[nodiscard]] const pki::CaUniverse& universe() const {
    return testbed_->universe();
  }

  // ---- datasets & experiment results (lazily computed, cached) ----
  const testbed::PassiveDataset& passive_dataset();
  /// Write the passive dataset into `dir` as a sharded capture store
  /// (seed/window metadata filled from this study's options).
  store::StoreWriteReport export_passive_store(const std::string& dir,
                                               store::StoreOptions options =
                                                   store::StoreOptions{});
  const std::vector<LibraryProbeRow>& library_probe_rows();       // Table 4
  const mitm::DowngradeReport& downgrade_report();                // Table 5
  const mitm::OldVersionReport& old_version_report();             // Table 6
  const mitm::InterceptionReport& interception_report();          // Table 7
  const analysis::RevocationSummary& revocation_summary();        // Table 8
  /// device → (common-set result, deprecated-set result).
  struct RootStoreExploration {
    probe::ExplorationResult common;
    probe::ExplorationResult deprecated;
  };
  const std::map<std::string, RootStoreExploration>& root_store_results();
  const analysis::StalenessReport& staleness();                   // Fig 4
  const analysis::FingerprintStudy& fingerprint_study();          // Fig 5
  const analysis::StudySummary& summary();

  // ---- paper-style renderings ----
  std::string render_table1() const;
  std::string render_table2() const;
  std::string render_table3() const;
  std::string render_table4();
  std::string render_table5();
  std::string render_table6();
  std::string render_table7();
  std::string render_table8();
  std::string render_table9();
  std::string render_fig1();
  std::string render_fig2();
  std::string render_fig3();
  std::string render_fig4();
  std::string render_fig5();
  std::string render_summary();

  // ---- observability ----
  /// The process-wide metrics registry (scrape with render_prometheus()).
  [[nodiscard]] obs::MetricsRegistry& metrics() const {
    return obs::MetricsRegistry::global();
  }
  /// Structured handshake traces collected so far (merged in catalog order
  /// by the experiment engine — byte-identical at any thread count).
  [[nodiscard]] const obs::TraceLog& traces() const { return trace_log_; }

  /// Timings of the experiments run so far, in execution order. The data
  /// lives in the metrics registry (iotls_experiment_* gauges); this view
  /// reconstructs the familiar struct form.
  [[nodiscard]] std::vector<ExperimentTiming> timings() const;
  /// The timing report render_summary() appends (also used by the bench
  /// binaries). Non-deterministic by nature — never part of a table/figure.
  [[nodiscard]] std::string render_timings() const;

 private:
  /// Run one experiment under the wall/CPU stopwatch.
  template <typename Fn>
  auto timed(std::string name, std::size_t tasks, Fn&& fn);
  /// Publish one experiment's timing into the registry gauges.
  void record_timing(const std::string& name, double wall_ms, double cpu_ms,
                     std::size_t tasks);

  Options options_;
  obs::TraceLog trace_log_;
  /// Names of experiments run, in order — the keys timings() reads back
  /// from the iotls_experiment_* gauge families.
  std::vector<std::string> experiment_order_;
  std::unique_ptr<testbed::Testbed> testbed_;
  std::unique_ptr<probe::RootStoreProber> prober_;

  std::optional<testbed::PassiveDataset> passive_;
  std::optional<std::vector<LibraryProbeRow>> table4_;
  std::optional<mitm::DowngradeReport> downgrade_;
  std::optional<mitm::OldVersionReport> old_versions_;
  std::optional<mitm::InterceptionReport> interception_;
  std::optional<analysis::RevocationSummary> revocation_;
  std::optional<std::map<std::string, RootStoreExploration>> root_stores_;
  std::optional<analysis::StalenessReport> staleness_;
  std::optional<analysis::FingerprintStudy> fingerprints_;
  std::optional<analysis::StudySummary> summary_;
};

}  // namespace iotls::core
