// Table 4: validating the probing technique against the TLS library
// behaviour profiles themselves (no devices involved) — which alerts does
// each library emit for (known CA, invalid signature) vs (unknown CA)?
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tls/alert.hpp"
#include "tls/profile.hpp"

namespace iotls::core {

struct LibraryProbeRow {
  tls::TlsLibrary library = tls::TlsLibrary::Generic;
  std::string label;  // Table 4 row label with version
  std::optional<tls::Alert> alert_known_ca_bad_signature;
  std::optional<tls::Alert> alert_unknown_ca;
  bool amenable = false;
};

/// Run real handshakes (client with each library profile against a prober
/// server) and record the observed alerts.
std::vector<LibraryProbeRow> run_library_probe_matrix(
    std::uint64_t seed = 0x7AB1E4);

}  // namespace iotls::core
