#include "core/table4.hpp"

#include <memory>

#include "pki/ca.hpp"
#include "pki/spoof.hpp"
#include "tls/client.hpp"
#include "tls/server.hpp"

namespace iotls::core {

namespace {

/// One probe handshake: client (library profile, trusting `trusted_root`)
/// against a server presenting `chain`. Returns the client's alert.
std::optional<tls::Alert> probe_once(tls::TlsLibrary library,
                                     const pki::RootStore& roots,
                                     std::vector<x509::Certificate> chain,
                                     const crypto::RsaKeyPair& server_keys,
                                     std::uint64_t seed) {
  tls::ServerConfig server_cfg;
  server_cfg.chain = std::move(chain);
  server_cfg.keys = server_keys;
  server_cfg.seed = seed;
  auto server = std::make_shared<tls::TlsServer>(server_cfg);
  tls::Transport transport(server);

  tls::ClientConfig client_cfg;
  client_cfg.library = library;
  tls::TlsClient client(client_cfg, &roots, common::Rng(seed ^ 0xC11E),
                        common::SimDate{2021, 3, 1});
  (void)client.connect(transport, "probe-target.example.com");
  return server->observation().alert_received;
}

}  // namespace

std::vector<LibraryProbeRow> run_library_probe_matrix(std::uint64_t seed) {
  common::Rng rng(seed);
  // A known CA the client trusts, and the two §4.2 probe chains.
  pki::CertificateAuthority known_ca(
      x509::DistinguishedName{"Known Trusted Root", "Probe Lab", "US"}, rng);
  pki::RootStore roots;
  roots.add(known_ca.root());

  const auto attacker = crypto::rsa_generate(rng);
  const auto spoofed = pki::make_spoofed_ca(known_ca.root(), attacker);
  const auto spoofed_chain =
      pki::forge_chain(spoofed, attacker.priv, "probe-target.example.com",
                       attacker.pub);

  common::Rng unknown_rng(seed ^ 1);
  pki::CertificateAuthority unknown_ca(
      x509::DistinguishedName{"Totally Unknown Root", "Probe Lab", "US"},
      unknown_rng);
  const auto unknown_chain = pki::forge_chain(
      unknown_ca.root(), unknown_ca.keypair().priv,
      "probe-target.example.com", attacker.pub);

  std::vector<LibraryProbeRow> rows;
  for (const auto library : tls::table4_libraries()) {
    LibraryProbeRow row;
    row.library = library;
    row.label = tls::library_version_label(library);
    row.alert_known_ca_bad_signature =
        probe_once(library, roots, spoofed_chain, attacker, seed ^ 2);
    row.alert_unknown_ca =
        probe_once(library, roots, unknown_chain, attacker, seed ^ 3);
    row.amenable = row.alert_known_ca_bad_signature.has_value() &&
                   row.alert_unknown_ca.has_value() &&
                   *row.alert_known_ca_bad_signature != *row.alert_unknown_ca;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace iotls::core
