#include "core/study.hpp"

#include <algorithm>
#include <cstdio>
#include <ctime>

#include "common/pool.hpp"
#include "common/rng.hpp"
#include "common/task.hpp"
#include "engine/map.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "devices/catalog.hpp"
#include "obs/profile.hpp"

namespace iotls::core {

template <typename Fn>
auto IotlsStudy::timed(std::string name, std::size_t tasks, Fn&& fn) {
  const obs::ProfileZone zone("study/" + name);
  const obs::WallTimer wall;
  // CPU time feeds only the timing report, never a study table.
  const std::clock_t cpu0 = std::clock();  // iotls-lint: allow(determinism)
  auto result = fn();
  const std::clock_t cpu1 = std::clock();  // iotls-lint: allow(determinism)

  const double cpu_ms =
      1000.0 * static_cast<double>(cpu1 - cpu0) / CLOCKS_PER_SEC;
  record_timing(name, wall.elapsed_ms(), cpu_ms, tasks);
  return result;
}

void IotlsStudy::record_timing(const std::string& name, double wall_ms,
                               double cpu_ms, std::size_t tasks) {
  // Timings live in the metrics registry (one gauge family per column,
  // labelled by experiment). Unconditional — render_timings() must work
  // even when the hot-path metric counters are switched off.
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("iotls_experiment_wall_ms", "Experiment wall-clock time",
            "experiment", name)
      .set(wall_ms);
  reg.gauge("iotls_experiment_cpu_ms", "Experiment CPU time (all threads)",
            "experiment", name)
      .set(cpu_ms);
  reg.gauge("iotls_experiment_tasks", "Per-device tasks fanned out",
            "experiment", name)
      .set(static_cast<double>(tasks));
  reg.gauge("iotls_experiment_threads", "Worker threads used", "experiment",
            name)
      .set(static_cast<double>(common::resolve_threads(options_.threads)));
  experiment_order_.push_back(name);
}

std::vector<ExperimentTiming> IotlsStudy::timings() const {
  const auto& reg = obs::MetricsRegistry::global();
  std::vector<ExperimentTiming> out;
  out.reserve(experiment_order_.size());
  for (const auto& name : experiment_order_) {
    ExperimentTiming t;
    t.name = name;
    if (const auto* g = reg.find_gauge("iotls_experiment_wall_ms", name)) {
      t.wall_ms = g->value();
    }
    if (const auto* g = reg.find_gauge("iotls_experiment_cpu_ms", name)) {
      t.cpu_ms = g->value();
    }
    if (const auto* g = reg.find_gauge("iotls_experiment_tasks", name)) {
      t.tasks = static_cast<std::size_t>(g->value());
    }
    if (const auto* g = reg.find_gauge("iotls_experiment_threads", name)) {
      t.threads = static_cast<std::size_t>(g->value());
    }
    out.push_back(std::move(t));
  }
  return out;
}

IotlsStudy::IotlsStudy(Options options)
    : options_(options), trace_log_(options.trace_level) {
  obs::set_metrics_enabled(options_.metrics_enabled);
  testbed::Testbed::Options tb;
  tb.seed = options_.seed;
  tb.universe = options_.universe;
  tb.trace = &trace_log_;
  testbed_ = std::make_unique<testbed::Testbed>(tb);
  prober_ = std::make_unique<probe::RootStoreProber>(*testbed_,
                                                     options_.seed ^ 0xF00D);
}

const testbed::PassiveDataset& IotlsStudy::passive_dataset() {
  if (!passive_) {
    if (!options_.passive_store.empty()) {
      passive_ = timed("passive-dataset", 0, [&] {
        return store::read_store(options_.passive_store);
      });
    } else {
      testbed::GeneratorOptions gen;
      gen.seed = options_.seed ^ 0x9A55;
      gen.universe = options_.universe;
      gen.count_scale = options_.passive_scale;
      gen.first = options_.passive_first;
      gen.last = options_.passive_last;
      gen.threads = options_.threads;
      gen.engine = options_.engine;
      passive_ = timed("passive-dataset", devices::device_catalog().size(),
                       [&] { return testbed::generate_passive_dataset(gen); });
    }
  }
  return *passive_;
}

store::StoreWriteReport IotlsStudy::export_passive_store(
    const std::string& dir, store::StoreOptions options) {
  options.seed = options_.seed ^ 0x9A55;
  options.first = options_.passive_first;
  options.last = options_.passive_last;
  if (options.threads == 0) options.threads = options_.threads;
  return store::write_store(passive_dataset(), dir, options);
}

const std::vector<LibraryProbeRow>& IotlsStudy::library_probe_rows() {
  if (!table4_) {
    table4_ = timed("library-probe-matrix", 0,
                    [&] { return run_library_probe_matrix(options_.seed); });
  }
  return *table4_;
}

const mitm::DowngradeReport& IotlsStudy::downgrade_report() {
  if (!downgrade_) {
    downgrade_ = timed("downgrade", devices::active_devices().size(), [&] {
      return mitm::run_downgrade_experiments(*testbed_, options_.threads,
                                             options_.engine);
    });
  }
  return *downgrade_;
}

const mitm::OldVersionReport& IotlsStudy::old_version_report() {
  if (!old_versions_) {
    old_versions_ =
        timed("old-version", devices::active_devices().size(), [&] {
          return mitm::run_old_version_experiments(*testbed_,
                                                   options_.threads,
                                                   options_.engine);
        });
  }
  return *old_versions_;
}

const mitm::InterceptionReport& IotlsStudy::interception_report() {
  if (!interception_) {
    interception_ =
        timed("interception", devices::active_devices().size(), [&] {
          return mitm::run_interception_experiments(*testbed_, 4,
                                                    options_.threads,
                                                    options_.engine);
        });
  }
  return *interception_;
}

const analysis::RevocationSummary& IotlsStudy::revocation_summary() {
  if (!revocation_) {
    const auto& dataset = passive_dataset();
    revocation_ = timed("revocation", 0, [&] {
      return analysis::analyze_revocation(dataset);
    });
  }
  return *revocation_;
}

const std::map<std::string, IotlsStudy::RootStoreExploration>&
IotlsStudy::root_store_results() {
  if (!root_stores_) {
    // Three stages. (1) Amenability fans out per eligible device — each
    // task probes inside its own sandbox testbed, so ordering cannot leak
    // between devices. (2) Inconclusive-probe draws are made serially, on
    // the coordinating thread, from the exact RNG stream the serial prober
    // consumes (amenable-device order, common set then deprecated set).
    // (3) The explorations themselves fan out with the pre-drawn masks.
    const auto& universe = testbed_->universe();
    const auto common_names = universe.common_ca_names();
    const auto deprecated_names = universe.deprecated_ca_names();

    const auto eligible = prober_->eligible_devices();
    const std::size_t amenability_tasks = eligible.size();

    root_stores_ = timed(
        "root-store-exploration", amenability_tasks, [&] {
          // Each task traces into a local log; the merge below happens
          // serially, in eligible-device order, so the study trace is
          // byte-identical at any thread count.
          auto amenable_mask = engine::map(
              options_.threads, options_.engine, eligible,
              [&](const std::string& device, engine::Engine* eng)
                  -> common::Task<std::pair<bool, obs::TraceLog>> {
                testbed::Testbed sandbox(testbed_->sandbox_options(device));
                if (eng != nullptr) sandbox.set_engine(eng);
                obs::TraceLog local(trace_log_.level());
                sandbox.set_trace(&local);
                probe::RootStoreProber prober(sandbox,
                                              options_.seed ^ 0xF00D);
                const bool amenable =
                    co_await prober.device_amenable_task(device);
                co_return std::make_pair(amenable, std::move(local));
              });
          std::vector<std::string> amenable;
          for (std::size_t i = 0; i < eligible.size(); ++i) {
            if (amenable_mask[i].first) amenable.push_back(eligible[i]);
          }
          for (auto& [flag, local] : amenable_mask) {
            trace_log_.merge(std::move(local));
          }

          // Mask pre-draw: replicates RootStoreProber's private stream so
          // results are bit-identical to the serial-prober seed behaviour.
          common::Rng mask_rng = common::Rng::derive(
              options_.seed ^ 0xF00D, "root-store-prober");
          struct DeviceMasks {
            std::vector<bool> common;
            std::vector<bool> deprecated;
          };
          std::vector<DeviceMasks> masks(amenable.size());
          for (std::size_t i = 0; i < amenable.size(); ++i) {
            const auto* profile = devices::find_device(amenable[i]);
            masks[i].common.resize(common_names.size());
            for (std::size_t c = 0; c < common_names.size(); ++c) {
              masks[i].common[c] =
                  mask_rng.chance(profile->root_store.inconclusive_common);
            }
            masks[i].deprecated.resize(deprecated_names.size());
            for (std::size_t c = 0; c < deprecated_names.size(); ++c) {
              masks[i].deprecated[c] = mask_rng.chance(
                  profile->root_store.inconclusive_deprecated);
            }
          }

          std::vector<std::size_t> indices(amenable.size());
          for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
          auto explorations = engine::map(
              options_.threads, options_.engine, indices,
              [&](std::size_t i, engine::Engine* eng)
                  -> common::Task<
                      std::pair<RootStoreExploration, obs::TraceLog>> {
                const auto& device = amenable[i];
                testbed::Testbed sandbox(testbed_->sandbox_options(device));
                if (eng != nullptr) sandbox.set_engine(eng);
                obs::TraceLog local(trace_log_.level());
                sandbox.set_trace(&local);
                probe::RootStoreProber prober(sandbox,
                                              options_.seed ^ 0xF00D);
                RootStoreExploration exploration;
                exploration.common = co_await prober.explore_task(
                    device, common_names, masks[i].common);
                exploration.deprecated = co_await prober.explore_task(
                    device, deprecated_names, masks[i].deprecated);
                co_return std::make_pair(std::move(exploration),
                                         std::move(local));
              });

          std::map<std::string, RootStoreExploration> results;
          for (std::size_t i = 0; i < amenable.size(); ++i) {
            results.emplace(amenable[i], std::move(explorations[i].first));
            trace_log_.merge(std::move(explorations[i].second));
          }
          return results;
        });
  }
  return *root_stores_;
}

const analysis::StalenessReport& IotlsStudy::staleness() {
  if (!staleness_) {
    std::map<std::string, probe::ExplorationResult> deprecated_only;
    for (const auto& [device, exploration] : root_store_results()) {
      deprecated_only.emplace(device, exploration.deprecated);
    }
    staleness_ =
        analysis::staleness_report(testbed_->universe(), deprecated_only);
  }
  return *staleness_;
}

const analysis::FingerprintStudy& IotlsStudy::fingerprint_study() {
  if (!fingerprints_) {
    fingerprints_ =
        timed("fingerprint", testbed_->device_names().size(), [&] {
          return analysis::run_fingerprint_study(*testbed_,
                                                 options_.threads,
                                                 options_.engine);
        });
  }
  return *fingerprints_;
}

const analysis::StudySummary& IotlsStudy::summary() {
  if (!summary_) summary_ = analysis::summarize(passive_dataset());
  return *summary_;
}

// ---------------- renderings ----------------

std::string IotlsStudy::render_table1() const {
  common::TextTable table({"Device", "Category", "Experiments"});
  for (const auto& d : devices::device_catalog()) {
    table.add_row({d.name, d.category,
                   d.active ? "active + passive" : "passive only"});
  }
  return "Table 1: the 40 TLS-supporting devices\n" + table.render();
}

std::string IotlsStudy::render_table2() const {
  common::TextTable table({"Attack", "Description"});
  for (const auto kind : mitm::all_attacks()) {
    table.add_row({mitm::attack_name(kind), mitm::attack_description(kind)});
  }
  return "Table 2: TLS interception attacks\n" + table.render();
}

std::string IotlsStudy::render_table3() const {
  common::TextTable table(
      {"Platform", "Total versions", "Earliest year", "Comments"});
  for (const auto& h : testbed_->universe().histories()) {
    table.add_row({h.platform, std::to_string(h.versions.size()),
                   std::to_string(h.earliest().year), h.source_comment});
  }
  return "Table 3: historical root-store sources\n" + table.render();
}

std::string IotlsStudy::render_table4() {
  common::TextTable table({"Library", "Known CA w/ invalid signature",
                           "Unknown CA", "Amenable"});
  for (const auto& row : library_probe_rows()) {
    table.add_row({row.label,
                   tls::alert_display(row.alert_known_ca_bad_signature),
                   tls::alert_display(row.alert_unknown_ca),
                   row.amenable ? "yes" : "no"});
  }
  return "Table 4: root-store probing across TLS libraries\n" +
         table.render();
}

std::string IotlsStudy::render_table5() {
  common::TextTable table({"Device", "Failed HS", "Incomplete HS",
                           "Behavior", "Downgraded/Total"});
  for (const auto& row : downgrade_report().rows) {
    table.add_row({row.device, row.on_failed_handshake ? "yes" : "no",
                   row.on_incomplete_handshake ? "yes" : "no", row.behavior,
                   std::to_string(row.downgraded_destinations) + " / " +
                       std::to_string(row.total_destinations)});
  }
  return "Table 5: devices that downgrade security on failures\n" +
         table.render();
}

std::string IotlsStudy::render_table6() {
  common::TextTable table({"Device", "TLS 1.0", "TLS 1.1"});
  for (const auto& row : old_version_report().rows) {
    table.add_row({row.device, row.tls10 ? "yes" : "no",
                   row.tls11 ? "yes" : "no"});
  }
  return "Table 6: devices supporting older TLS versions (" +
         std::to_string(old_version_report().rows.size()) + " devices)\n" +
         table.render();
}

std::string IotlsStudy::render_table7() {
  common::TextTable table({"Device", "No-Validation", "InvalidBC",
                           "Wrong-Hostname", "Vulnerable/Total"});
  for (const auto& row : interception_report().rows) {
    table.add_row({row.device, row.no_validation ? "yes" : "no",
                   row.invalid_basic_constraints ? "yes" : "no",
                   row.wrong_hostname ? "yes" : "no",
                   std::to_string(row.vulnerable_destinations) + " / " +
                       std::to_string(row.total_destinations)});
  }
  auto out = "Table 7: devices vulnerable to TLS interception (" +
             std::to_string(interception_report().rows.size()) +
             " devices)\n" + table.render();
  out += "devices with sensitive data exposed: " +
         std::to_string(interception_report().devices_with_sensitive_leaks) +
         "/" + std::to_string(interception_report().rows.size()) + "\n";
  return out;
}

std::string IotlsStudy::render_table8() {
  return analysis::render_table8(revocation_summary(), 40);
}

std::string IotlsStudy::render_table9() {
  const auto& universe = testbed_->universe();
  common::TextTable table({"Device",
                           "Common certs (total = " +
                               std::to_string(
                                   universe.common_ca_names().size()) +
                               ")",
                           "Deprecated certs (total = " +
                               std::to_string(
                                   universe.deprecated_ca_names().size()) +
                               ")"});
  auto cell = [](const probe::ExplorationResult& r) {
    return common::percent(r.fraction()) + " (" + std::to_string(r.present) +
           "/" + std::to_string(r.checked) + ")";
  };
  // Paper row order: ascending deprecated fraction.
  std::vector<const std::pair<const std::string, RootStoreExploration>*>
      rows;
  for (const auto& kv : root_store_results()) rows.push_back(&kv);
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    return a->second.deprecated.fraction() < b->second.deprecated.fraction();
  });
  for (const auto* kv : rows) {
    table.add_row({kv->first, cell(kv->second.common),
                   cell(kv->second.deprecated)});
  }
  return "Table 9: root stores of " + std::to_string(rows.size()) +
         " probeable devices\n" + table.render();
}

std::string IotlsStudy::render_fig1() {
  const auto months = analysis::study_months();
  return analysis::render_fig1(
      analysis::all_version_series(passive_dataset(), months), months);
}

std::string IotlsStudy::render_fig2() {
  return analysis::render_fig2(
      analysis::all_cipher_series(passive_dataset(),
                                  analysis::study_months()));
}

std::string IotlsStudy::render_fig3() {
  return analysis::render_fig3(
      analysis::all_cipher_series(passive_dataset(),
                                  analysis::study_months()));
}

std::string IotlsStudy::render_fig4() {
  return "Fig 4: removal year of deprecated roots still present\n" +
         analysis::render_staleness(staleness());
}

std::string IotlsStudy::render_fig5() {
  const auto& study = fingerprint_study();
  std::string out = "Fig 5: shared TLS fingerprints\n";
  out += "devices with a single fingerprint: " +
         std::to_string(study.single_instance_devices()) +
         " (paper: 18/32)\n";
  out += "devices with multiple fingerprints: " +
         std::to_string(study.multi_instance_devices()) +
         " (paper: 14/32)\n";
  out += "devices sharing a fingerprint with others: " +
         std::to_string(study.sharing_devices()) + " (paper: 19)\n\n";
  out += analysis::render_sharing_graph(study);
  return out;
}

std::string IotlsStudy::render_summary() {
  std::string out = analysis::render_summary(summary());
  out += "\n";
  out += analysis::render_party_breakdown(
      analysis::party_version_breakdown(passive_dataset()));
  out += "\n" + render_timings();
  return out;
}

std::string IotlsStudy::render_timings() const {
  auto ms = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return std::string(buf);
  };
  common::TextTable table(
      {"Experiment", "Wall ms", "CPU ms", "Tasks", "Threads"});
  double wall_total = 0.0;
  double cpu_total = 0.0;
  for (const auto& t : timings()) {
    wall_total += t.wall_ms;
    cpu_total += t.cpu_ms;
    table.add_row({t.name, ms(t.wall_ms), ms(t.cpu_ms),
                   std::to_string(t.tasks), std::to_string(t.threads)});
  }
  table.add_row({"total", ms(wall_total), ms(cpu_total), "", ""});
  return "Experiment timings (" +
         std::to_string(common::resolve_threads(options_.threads)) +
         " worker threads)\n" + table.render();
}

}  // namespace iotls::core
