// Active experiment drivers reproducing Tables 5, 6 and 7.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "mitm/interceptor.hpp"
#include "testbed/testbed.hpp"

namespace iotls::mitm {

/// Per-device interception results (Table 7 rows).
struct InterceptionRow {
  std::string device;
  bool no_validation = false;
  bool invalid_basic_constraints = false;
  bool wrong_hostname = false;
  int vulnerable_destinations = 0;
  int total_destinations = 0;
  /// Sensitive plaintext recovered from compromised connections (§5.2).
  std::vector<std::string> leaked_samples;

  [[nodiscard]] bool vulnerable() const {
    return no_validation || invalid_basic_constraints || wrong_hostname;
  }
};

struct InterceptionReport {
  std::vector<InterceptionRow> rows;  // vulnerable devices only
  int devices_tested = 0;
  int devices_without_any_validation = 0;  // §5.2: "seven devices"
  int devices_with_sensitive_leaks = 0;    // §5.2: 7/11
};

/// Run all three Table 2 attacks against every active device.
/// `boots_per_attack` models the repeated reboots of §4.1 (the Yi Camera
/// needs ≥4 to expose its disable-after-3-failures behaviour).
/// `threads` fans the devices out over a worker pool (0 = hardware
/// concurrency, 1 = serial); results are identical for any value.
/// `use_engine` routes every device's connections through a per-worker
/// session engine (src/engine/) so whole-device experiment chains
/// interleave on each thread; all reports are byte-identical either way.
InterceptionReport run_interception_experiments(testbed::Testbed& testbed,
                                                int boots_per_attack = 4,
                                                std::size_t threads = 0,
                                                bool use_engine = false);

/// Per-device downgrade results (Table 5 rows).
struct DowngradeRow {
  std::string device;
  bool on_failed_handshake = false;
  bool on_incomplete_handshake = false;
  std::string behavior;
  int downgraded_destinations = 0;
  int total_destinations = 0;
};

struct DowngradeReport {
  std::vector<DowngradeRow> rows;  // downgrading devices only
  int devices_tested = 0;
};

DowngradeReport run_downgrade_experiments(testbed::Testbed& testbed,
                                          std::size_t threads = 0,
                                          bool use_engine = false);

/// Per-device old-version acceptance (Table 6 rows).
struct OldVersionRow {
  std::string device;
  bool tls10 = false;
  bool tls11 = false;
};

struct OldVersionReport {
  std::vector<OldVersionRow> rows;  // devices accepting any old version
  int devices_tested = 0;
};

OldVersionReport run_old_version_experiments(testbed::Testbed& testbed,
                                             std::size_t threads = 0,
                                             bool use_engine = false);

/// §4.2 TrafficPassthrough validation: repeat the attacks while passing
/// through connections that previously failed; report the extra
/// destinations observed and whether any new validation failure appeared.
struct PassthroughReport {
  double extra_destination_fraction = 0.0;  // paper: ≈20.4%
  bool new_failures_found = false;          // paper: none
  int devices_tested = 0;
};

PassthroughReport run_passthrough_experiments(testbed::Testbed& testbed,
                                              std::size_t threads = 0,
                                              bool use_engine = false);

/// A ClientHello is a downgrade of another if it advertises a lower
/// maximum version, or a strictly weaker ciphersuite set, or weaker
/// signature algorithms (exposed for tests).
bool is_downgraded_hello(const tls::ClientHello& original,
                         const tls::ClientHello& retry);

}  // namespace iotls::mitm
