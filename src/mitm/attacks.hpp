// The interception attacks of Table 2 — certificate forgery recipes.
#pragma once

#include <string>
#include <vector>

#include "pki/universe.hpp"
#include "x509/certificate.hpp"

namespace iotls::mitm {

/// Table 2 attack kinds.
enum class AttackKind {
  /// Self-signed leaf: defeated by any validation at all.
  NoValidation,
  /// Legitimate chain for a domain *we* control: defeated only by
  /// hostname validation.
  WrongHostname,
  /// Our legitimate leaf used as an issuing CA: defeated only by
  /// BasicConstraints validation.
  InvalidBasicConstraints,
};

std::string attack_name(AttackKind kind);
std::string attack_description(AttackKind kind);  // Table 2 text
const std::vector<AttackKind>& all_attacks();

/// Connection-failure injections used by the downgrade experiments (§5.1).
enum class FailureKind {
  /// Never answer the ClientHello.
  IncompleteHandshake,
  /// Present a self-signed certificate so validation fails.
  FailedHandshake,
};

std::string failure_name(FailureKind kind);

/// What the interceptor presents as its server identity.
struct ForgedIdentity {
  std::vector<x509::Certificate> chain;  // leaf first
  crypto::RsaKeyPair keys;               // leaf private key
};

/// Builds forged identities. Owns the attacker keypair and — mirroring the
/// paper's free ZeroSSL certificate — a legitimate CA-issued certificate
/// for a domain the attacker controls.
class AttackForge {
 public:
  AttackForge(const pki::CaUniverse& universe, std::uint64_t seed);

  /// The attacker's own (legitimately certified) domain.
  [[nodiscard]] const std::string& attacker_domain() const {
    return attacker_domain_;
  }

  [[nodiscard]] ForgedIdentity forge(AttackKind kind,
                                     const std::string& victim_host) const;

  /// Self-signed identity for the FailedHandshake injection.
  [[nodiscard]] ForgedIdentity self_signed(
      const std::string& victim_host) const;

  /// Probe payloads (§4.2): a chain anchored at a *spoofed* copy of
  /// `real_root`, and one anchored at a CA nobody trusts.
  [[nodiscard]] ForgedIdentity spoofed_ca_chain(
      const x509::Certificate& real_root,
      const std::string& victim_host) const;
  [[nodiscard]] ForgedIdentity unknown_ca_chain(
      const std::string& victim_host) const;

 private:
  crypto::RsaKeyPair attacker_keys_;
  std::string attacker_domain_;
  x509::Certificate attacker_cert_;         // legit, for attacker_domain_
  std::vector<x509::Certificate> attacker_chain_;
  x509::Certificate unknown_root_;          // self-signed, arbitrary subject
};

}  // namespace iotls::mitm
