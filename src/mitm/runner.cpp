#include "mitm/runner.hpp"

#include <algorithm>
#include <set>

#include "common/pool.hpp"
#include "common/task.hpp"
#include "engine/map.hpp"

namespace iotls::mitm {

namespace {

constexpr common::SimDate kExperimentDate{2021, 3, 15};  // §4.1

/// Max versions / weaker-set comparison used by is_downgraded_hello.
bool suite_set_weaker(const std::vector<std::uint16_t>& original,
                      const std::vector<std::uint16_t>& retry) {
  // Strictly fewer suites offered, or newly-insecure-only selection.
  if (retry.size() < original.size()) return true;
  const bool orig_strong = std::any_of(original.begin(), original.end(),
                                       tls::suite_is_strong);
  const bool retry_strong = std::any_of(retry.begin(), retry.end(),
                                        tls::suite_is_strong);
  return orig_strong && !retry_strong;
}

bool sigalgs_weaker(const tls::ClientHello& original,
                    const tls::ClientHello& retry) {
  auto schemes = [](const tls::ClientHello& hello) {
    std::vector<tls::SignatureScheme> out;
    const auto* ext = tls::find_extension(
        hello.extensions, tls::ExtensionType::SignatureAlgorithms);
    if (ext != nullptr) out = tls::parse_signature_algorithms(ext->payload);
    return out;
  };
  const auto orig = schemes(original);
  const auto now = schemes(retry);
  const auto has_sha1_only = [](const std::vector<tls::SignatureScheme>& v) {
    return !v.empty() &&
           std::all_of(v.begin(), v.end(), [](tls::SignatureScheme s) {
             return s == tls::SignatureScheme::RsaPkcs1Sha1;
           });
  };
  return !has_sha1_only(orig) && has_sha1_only(now);
}

/// One device's isolated experiment environment: an own network, runtime
/// and interceptor over the parent testbed's (const) CA universe and
/// revocation list. Every per-device task builds one, so a fan-out shares
/// no mutable state and its results are independent of scheduling order.
///
/// Tracing follows the same pattern: the lab records into its own local
/// TraceLog (at the parent's level) and the coordinator merges the labs'
/// logs back into the parent in catalog order — traces stay byte-identical
/// at any thread count.
struct DeviceLab {
  testbed::Testbed bed;
  Interceptor interceptor;
  obs::TraceLog trace;

  DeviceLab(const testbed::Testbed& parent,
            const devices::DeviceProfile& profile)
      : bed(parent.sandbox_options(profile.name)),
        interceptor(bed.universe(), bed.cloud()),
        trace(parent.trace() != nullptr ? parent.trace()->level()
                                        : obs::TraceLevel::Off) {
    if (trace.enabled()) bed.set_trace(&trace);
    bed.set_date(kExperimentDate);
  }

  [[nodiscard]] testbed::DeviceRuntime& runtime(
      const devices::DeviceProfile& profile) {
    return bed.runtime(profile.name);
  }
};

/// Serial catalog-order merge of per-lab trace logs into the parent.
template <typename Item>
void merge_lab_traces(testbed::Testbed& testbed, std::vector<Item>& items) {
  obs::TraceLog* parent = testbed.trace();
  if (parent == nullptr) return;
  for (auto& item : items) parent->merge(std::move(item.second));
}

}  // namespace

bool is_downgraded_hello(const tls::ClientHello& original,
                         const tls::ClientHello& retry) {
  if (retry.max_advertised_version() < original.max_advertised_version()) {
    return true;
  }
  if (suite_set_weaker(original.cipher_suites, retry.cipher_suites)) {
    return true;
  }
  return sigalgs_weaker(original, retry);
}

InterceptionReport run_interception_experiments(testbed::Testbed& testbed,
                                                int boots_per_attack,
                                                std::size_t threads,
                                                bool use_engine) {
  testbed.set_date(kExperimentDate);
  const auto profiles = devices::active_devices();

  auto rows = engine::map(
      threads, use_engine, profiles,
      [&](const devices::DeviceProfile* profile, engine::Engine* eng)
          -> common::Task<std::pair<InterceptionRow, obs::TraceLog>> {
        DeviceLab lab(testbed, *profile);
        if (eng != nullptr) lab.bed.set_engine(eng);
        auto& runtime = lab.runtime(*profile);
        InterceptionRow row;
        row.device = profile->name;
        row.total_destinations =
            static_cast<int>(profile->destinations.size());
        std::set<std::string> vulnerable_hosts;

        for (const AttackKind attack : all_attacks()) {
          runtime.reset_failure_state();
          lab.interceptor.set_mode(InterceptMode::make_attack(attack));
          lab.interceptor.install(lab.bed.network());

          for (int boot = 0; boot < boots_per_attack; ++boot) {
            (void)co_await runtime.boot_task(kExperimentDate,
                                             /*include_intermittent=*/true);
          }
          const auto interceptions = lab.interceptor.drain();
          lab.interceptor.uninstall(lab.bed.network());

          bool attack_succeeded = false;
          for (const auto& inter : interceptions) {
            if (!inter.compromised()) continue;
            attack_succeeded = true;
            vulnerable_hosts.insert(inter.hostname);
            const std::string plaintext =
                common::to_string(inter.recovered_plaintext);
            // Record recovered payloads that carry secrets (not mere
            // telemetry GETs).
            if (plaintext.find("GET /telemetry") == std::string::npos &&
                std::find(row.leaked_samples.begin(),
                          row.leaked_samples.end(),
                          plaintext) == row.leaked_samples.end()) {
              row.leaked_samples.push_back(plaintext);
            }
          }
          switch (attack) {
            case AttackKind::NoValidation:
              row.no_validation = attack_succeeded;
              break;
            case AttackKind::WrongHostname:
              row.wrong_hostname = attack_succeeded;
              break;
            case AttackKind::InvalidBasicConstraints:
              row.invalid_basic_constraints = attack_succeeded;
              break;
          }
          runtime.reset_failure_state();
        }

        row.vulnerable_destinations =
            static_cast<int>(vulnerable_hosts.size());
        co_return std::make_pair(std::move(row), std::move(lab.trace));
      });

  // Deterministic merge in catalog order.
  merge_lab_traces(testbed, rows);
  InterceptionReport report;
  for (const auto& [row, trace] : rows) {
    ++report.devices_tested;
    // §5.2: "seven devices do not perform any certificate validation" —
    // i.e. the self-signed attack succeeded against them.
    if (row.no_validation) ++report.devices_without_any_validation;
    if (row.vulnerable()) {
      if (!row.leaked_samples.empty()) ++report.devices_with_sensitive_leaks;
      report.rows.push_back(row);
    }
  }
  // Paper order: fully-vulnerable devices first, by vulnerable count desc.
  std::sort(report.rows.begin(), report.rows.end(),
            [](const InterceptionRow& a, const InterceptionRow& b) {
              if (a.no_validation != b.no_validation) return a.no_validation;
              if (a.vulnerable_destinations != b.vulnerable_destinations) {
                return a.vulnerable_destinations > b.vulnerable_destinations;
              }
              return a.device < b.device;
            });
  return report;
}

DowngradeReport run_downgrade_experiments(testbed::Testbed& testbed,
                                          std::size_t threads,
                                          bool use_engine) {
  testbed.set_date(kExperimentDate);
  const auto profiles = devices::active_devices();

  auto rows = engine::map(
      threads, use_engine, profiles,
      [&](const devices::DeviceProfile* profile, engine::Engine* eng)
          -> common::Task<std::pair<DowngradeRow, obs::TraceLog>> {
        DeviceLab lab(testbed, *profile);
        if (eng != nullptr) lab.bed.set_engine(eng);
        auto& runtime = lab.runtime(*profile);
        DowngradeRow row;
        row.device = profile->name;
        if (profile->fallback) row.behavior = profile->fallback->behavior;
        std::set<std::string> downgraded_hosts;
        std::set<std::string> contacted_hosts;

        for (const FailureKind failure :
             {FailureKind::FailedHandshake,
              FailureKind::IncompleteHandshake}) {
          runtime.reset_failure_state();
          lab.interceptor.set_mode(InterceptMode::make_failure(failure));
          lab.interceptor.install(lab.bed.network());
          const auto boot = co_await runtime.boot_task(kExperimentDate);
          lab.interceptor.uninstall(lab.bed.network());
          runtime.reset_failure_state();

          bool downgrade_seen = false;
          for (const auto& conn : boot.connections) {
            contacted_hosts.insert(conn.destination->hostname);
            if (!conn.used_fallback) continue;
            if (is_downgraded_hello(conn.result.hello,
                                    conn.fallback_result->hello)) {
              downgrade_seen = true;
              downgraded_hosts.insert(conn.destination->hostname);
            }
          }
          if (failure == FailureKind::FailedHandshake) {
            row.on_failed_handshake = downgrade_seen;
          } else {
            row.on_incomplete_handshake = downgrade_seen;
          }
        }

        row.downgraded_destinations =
            static_cast<int>(downgraded_hosts.size());
        row.total_destinations = static_cast<int>(contacted_hosts.size());
        co_return std::make_pair(std::move(row), std::move(lab.trace));
      });

  merge_lab_traces(testbed, rows);
  DowngradeReport report;
  for (const auto& [row, trace] : rows) {
    ++report.devices_tested;
    if (row.on_failed_handshake || row.on_incomplete_handshake) {
      report.rows.push_back(row);
    }
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const DowngradeRow& a, const DowngradeRow& b) {
              return a.device < b.device;
            });
  return report;
}

OldVersionReport run_old_version_experiments(testbed::Testbed& testbed,
                                             std::size_t threads,
                                             bool use_engine) {
  testbed.set_date(kExperimentDate);
  const auto profiles = devices::active_devices();

  auto rows = engine::map(
      threads, use_engine, profiles,
      [&](const devices::DeviceProfile* profile, engine::Engine* eng)
          -> common::Task<std::pair<OldVersionRow, obs::TraceLog>> {
        DeviceLab lab(testbed, *profile);
        if (eng != nullptr) lab.bed.set_engine(eng);
        auto& runtime = lab.runtime(*profile);
        OldVersionRow row;
        row.device = profile->name;

        for (const auto version :
             {tls::ProtocolVersion::Tls1_0, tls::ProtocolVersion::Tls1_1}) {
          lab.interceptor.set_mode(InterceptMode::make_old_version(version));
          lab.interceptor.install(lab.bed.network());
          runtime.reset_failure_state();
          const auto boot = co_await runtime.boot_task(kExperimentDate);
          lab.interceptor.uninstall(lab.bed.network());
          runtime.reset_failure_state();

          // The device "supports" the version if any connection
          // *established* it (completed the handshake at that version).
          const bool accepted = std::any_of(
              boot.connections.begin(), boot.connections.end(),
              [&](const testbed::ConnectionOutcome& conn) {
                return conn.result.success() &&
                       conn.result.negotiated_version == version;
              });
          if (version == tls::ProtocolVersion::Tls1_0) {
            row.tls10 = accepted;
          } else {
            row.tls11 = accepted;
          }
        }
        co_return std::make_pair(std::move(row), std::move(lab.trace));
      });

  merge_lab_traces(testbed, rows);
  OldVersionReport report;
  for (const auto& [row, trace] : rows) {
    ++report.devices_tested;
    if (row.tls10 || row.tls11) report.rows.push_back(row);
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const OldVersionRow& a, const OldVersionRow& b) {
              if (a.tls10 != b.tls10) return a.tls10;
              return a.device < b.device;
            });
  return report;
}

PassthroughReport run_passthrough_experiments(testbed::Testbed& testbed,
                                              std::size_t threads,
                                              bool use_engine) {
  testbed.set_date(kExperimentDate);
  const auto profiles = devices::active_devices();

  struct DeviceTally {
    int baseline_hosts = 0;
    int extra_hosts = 0;
    bool new_failures = false;
  };

  auto tallies = engine::map(
      threads, use_engine, profiles,
      [&](const devices::DeviceProfile* profile, engine::Engine* eng)
          -> common::Task<std::pair<DeviceTally, obs::TraceLog>> {
        DeviceLab lab(testbed, *profile);
        if (eng != nullptr) lab.bed.set_engine(eng);
        auto& runtime = lab.runtime(*profile);
        lab.interceptor.set_mode(
            InterceptMode::make_attack(AttackKind::NoValidation));
        DeviceTally tally;

        // Pass 1: intercept everything; note which hostnames failed and
        // which were compromised.
        runtime.reset_failure_state();
        lab.interceptor.install(lab.bed.network());
        const auto attacked = co_await runtime.boot_task(kExperimentDate);
        const auto pass1 = lab.interceptor.drain();
        lab.interceptor.uninstall(lab.bed.network());
        runtime.reset_failure_state();

        std::set<std::string> failed_hosts;
        std::set<std::string> seen_hosts;
        for (const auto& conn : attacked.connections) {
          seen_hosts.insert(conn.destination->hostname);
          if (!conn.final_result().success()) {
            failed_hosts.insert(conn.destination->hostname);
          }
        }
        std::set<std::string> compromised_hosts;
        for (const auto& inter : pass1) {
          if (inter.compromised()) compromised_hosts.insert(inter.hostname);
        }

        // Pass 2: same attack, but pass through previously-failed
        // connections; successful earlier flows unlock the intermittent
        // destinations.
        lab.interceptor.set_passthrough(failed_hosts);
        lab.interceptor.install(lab.bed.network());
        const auto repeated = co_await runtime.boot_task(
            kExperimentDate, /*include_intermittent=*/true);
        const auto interceptions = lab.interceptor.drain();
        lab.interceptor.uninstall(lab.bed.network());
        lab.interceptor.clear_passthrough();
        runtime.reset_failure_state();

        std::set<std::string> pass2_hosts;
        for (const auto& conn : repeated.connections) {
          pass2_hosts.insert(conn.destination->hostname);
        }
        // A "new certificate validation failure" (§4.2) would be a
        // successful interception of a connection the first pass did not
        // compromise.
        for (const auto& inter : interceptions) {
          if (inter.compromised() &&
              !compromised_hosts.count(inter.hostname)) {
            tally.new_failures = true;
          }
        }
        tally.baseline_hosts = static_cast<int>(seen_hosts.size());
        for (const auto& host : pass2_hosts) {
          if (!seen_hosts.count(host)) ++tally.extra_hosts;
        }
        co_return std::make_pair(std::move(tally), std::move(lab.trace));
      });

  merge_lab_traces(testbed, tallies);
  PassthroughReport report;
  int baseline_hosts = 0;
  int extra_hosts = 0;
  for (const auto& [tally, trace] : tallies) {
    baseline_hosts += tally.baseline_hosts;
    extra_hosts += tally.extra_hosts;
    report.new_failures_found |= tally.new_failures;
    ++report.devices_tested;
  }
  if (baseline_hosts > 0) {
    report.extra_destination_fraction =
        static_cast<double>(extra_hosts) / baseline_hosts;
  }
  return report;
}

}  // namespace iotls::mitm
