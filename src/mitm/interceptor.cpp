#include "mitm/interceptor.hpp"

#include "obs/metrics.hpp"
#include "tls/version.hpp"

namespace iotls::mitm {

namespace {

struct MitmMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  obs::Counter& interceptions(const std::string& mode) {
    return reg.counter("iotls_mitm_interceptions_total",
                       "Connections answered by the interceptor, by mode",
                       "mode", mode);
  }
  obs::Counter& compromised = reg.counter(
      "iotls_mitm_compromised_total",
      "Interceptions that completed the handshake and read plaintext");

  static MitmMetrics& get() {
    static MitmMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::string intercept_mode_name(InterceptMode::Kind kind) {
  switch (kind) {
    case InterceptMode::Kind::Attack: return "attack";
    case InterceptMode::Kind::Failure: return "failure";
    case InterceptMode::Kind::SpoofedCaProbe: return "spoofed_ca_probe";
    case InterceptMode::Kind::UnknownCaProbe: return "unknown_ca_probe";
    case InterceptMode::Kind::OldVersionProbe: return "old_version_probe";
  }
  return "unknown";
}

InterceptMode InterceptMode::make_attack(AttackKind kind) {
  InterceptMode m;
  m.kind = Kind::Attack;
  m.attack = kind;
  return m;
}

InterceptMode InterceptMode::make_failure(FailureKind kind) {
  InterceptMode m;
  m.kind = Kind::Failure;
  m.failure = kind;
  return m;
}

InterceptMode InterceptMode::spoofed_ca(x509::Certificate real_root) {
  InterceptMode m;
  m.kind = Kind::SpoofedCaProbe;
  m.probe_root = std::move(real_root);
  return m;
}

InterceptMode InterceptMode::unknown_ca() {
  InterceptMode m;
  m.kind = Kind::UnknownCaProbe;
  return m;
}

InterceptMode InterceptMode::make_old_version(tls::ProtocolVersion version) {
  InterceptMode m;
  m.kind = Kind::OldVersionProbe;
  m.old_version = version;
  return m;
}

Interceptor::Interceptor(const pki::CaUniverse& universe,
                         const testbed::CloudFarm& cloud, std::uint64_t seed)
    : forge_(universe, seed), cloud_(&cloud) {}

void Interceptor::set_passthrough(std::set<std::string> hostnames) {
  passthrough_ = std::move(hostnames);
}

void Interceptor::install(net::Network& network) {
  trace_ = network.trace();
  network.set_interceptor(
      [this](const std::string& hostname,
             const net::Network::SessionFactory& real) {
        return intercept(hostname, real);
      });
}

void Interceptor::uninstall(net::Network& network) {
  network.clear_interceptor();
  trace_ = nullptr;
}

namespace {

/// A permissive suite preference covering everything a device might offer.
std::vector<std::uint16_t> permissive_suites() {
  namespace t = iotls::tls;
  return {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
          t::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
          t::TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305,
          t::TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
          t::TLS_DHE_RSA_WITH_AES_128_GCM_SHA256,
          t::TLS_RSA_WITH_AES_128_GCM_SHA256,
          t::TLS_RSA_WITH_AES_128_CBC_SHA,
          t::TLS_RSA_WITH_AES_256_CBC_SHA,
          t::TLS_RSA_WITH_3DES_EDE_CBC_SHA,
          t::TLS_RSA_WITH_RC4_128_SHA,
          t::TLS_AES_128_GCM_SHA256,
          t::TLS_CHACHA20_POLY1305_SHA256};
}

}  // namespace

std::shared_ptr<tls::ServerSession> Interceptor::intercept(
    const std::string& hostname, const net::Network::SessionFactory& real) {
  if (passthrough_.count(hostname)) {
    if (obs::metrics_enabled()) {
      MitmMetrics::get().interceptions("passthrough").inc();
    }
    return real(hostname);
  }
  if (obs::metrics_enabled()) {
    MitmMetrics::get()
        .interceptions(intercept_mode_name(mode_.kind))
        .inc();
  }
  if (trace_ != nullptr && trace_->enabled()) {
    obs::Span span = trace_->start_span("intercept:" + hostname);
    span.set_attr("mode", intercept_mode_name(mode_.kind));
    switch (mode_.kind) {
      case InterceptMode::Kind::Attack:
        span.set_attr("attack", attack_name(mode_.attack));
        break;
      case InterceptMode::Kind::Failure:
        span.set_attr("failure", failure_name(mode_.failure));
        break;
      case InterceptMode::Kind::SpoofedCaProbe:
        span.set_attr("probe_root", mode_.probe_root->tbs.subject.common_name);
        break;
      case InterceptMode::Kind::OldVersionProbe:
        span.set_attr("forced_version", tls::version_name(mode_.old_version));
        break;
      case InterceptMode::Kind::UnknownCaProbe:
        break;
    }
    trace_->add(std::move(span));
  }

  tls::ServerConfig cfg;
  cfg.versions = {tls::ProtocolVersion::Ssl3_0, tls::ProtocolVersion::Tls1_0,
                  tls::ProtocolVersion::Tls1_1, tls::ProtocolVersion::Tls1_2,
                  tls::ProtocolVersion::Tls1_3};
  cfg.cipher_suites = permissive_suites();
  cfg.seed = common::fnv1a64("mitm:" + hostname);

  switch (mode_.kind) {
    case InterceptMode::Kind::Attack: {
      const ForgedIdentity identity = forge_.forge(mode_.attack, hostname);
      cfg.chain = identity.chain;
      cfg.keys = identity.keys;
      break;
    }
    case InterceptMode::Kind::Failure: {
      if (mode_.failure == FailureKind::IncompleteHandshake) {
        const ForgedIdentity identity = forge_.self_signed(hostname);
        cfg.chain = identity.chain;
        cfg.keys = identity.keys;
        cfg.silent_after_client_hello = true;
      } else {
        const ForgedIdentity identity = forge_.self_signed(hostname);
        cfg.chain = identity.chain;
        cfg.keys = identity.keys;
      }
      break;
    }
    case InterceptMode::Kind::SpoofedCaProbe: {
      const ForgedIdentity identity =
          forge_.spoofed_ca_chain(*mode_.probe_root, hostname);
      cfg.chain = identity.chain;
      cfg.keys = identity.keys;
      break;
    }
    case InterceptMode::Kind::UnknownCaProbe: {
      const ForgedIdentity identity = forge_.unknown_ca_chain(hostname);
      cfg.chain = identity.chain;
      cfg.keys = identity.keys;
      break;
    }
    case InterceptMode::Kind::OldVersionProbe: {
      // Keep the *genuine* server identity; only pin the version.
      cfg = cloud_->server_config(hostname);
      cfg.force_version = mode_.old_version;
      break;
    }
  }

  auto session = std::make_shared<tls::TlsServer>(cfg);
  sessions_.emplace_back(hostname, session);
  return session;
}

std::vector<Interception> Interceptor::drain() {
  std::vector<Interception> out;
  for (const auto& [hostname, session] : sessions_) {
    const tls::ServerObservation& obs = session->observation();
    Interception inter;
    inter.hostname = hostname;
    inter.saw_client_hello = obs.saw_client_hello;
    inter.client_hello = obs.client_hello;
    inter.handshake_complete = obs.handshake_complete;
    inter.recovered_plaintext = obs.client_plaintext;
    inter.alert_received = obs.alert_received;
    // `obs` is shadowed by the ServerObservation above; qualify fully.
    if (::iotls::obs::metrics_enabled() && inter.compromised()) {
      MitmMetrics::get().compromised.inc();
    }
    out.push_back(std::move(inter));
  }
  sessions_.clear();
  return out;
}

}  // namespace iotls::mitm
