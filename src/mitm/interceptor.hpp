// The on-path interceptor — this repository's mitmproxy.
//
// Installed into the network's interceptor slot, it answers device
// connections with forged identities (Table 2 attacks, §4.2 probe
// payloads), injects handshake failures (Table 5), negotiates old versions
// on otherwise-legitimate servers (Table 6), and supports the
// TrafficPassthrough mode of §4.2.
#pragma once

#include <memory>
#include <optional>
#include <set>

#include "mitm/attacks.hpp"
#include "net/network.hpp"
#include "testbed/cloud.hpp"
#include "tls/server.hpp"

namespace iotls::mitm {

/// What the interceptor does to a connection.
struct InterceptMode {
  enum class Kind {
    /// Forge per Table 2.
    Attack,
    /// Inject a handshake failure (Table 5).
    Failure,
    /// Present a chain anchored at a spoofed copy of `probe_root`.
    SpoofedCaProbe,
    /// Present a chain anchored at an unknown CA.
    UnknownCaProbe,
    /// Let the real server answer, but force an old protocol version in
    /// its ServerHello (Table 6).
    OldVersionProbe,
  };

  Kind kind = Kind::Attack;
  AttackKind attack = AttackKind::NoValidation;
  FailureKind failure = FailureKind::IncompleteHandshake;
  std::optional<x509::Certificate> probe_root;
  tls::ProtocolVersion old_version = tls::ProtocolVersion::Tls1_0;

  static InterceptMode make_attack(AttackKind kind);
  static InterceptMode make_failure(FailureKind kind);
  static InterceptMode spoofed_ca(x509::Certificate real_root);
  static InterceptMode unknown_ca();
  static InterceptMode make_old_version(tls::ProtocolVersion version);
};

std::string intercept_mode_name(InterceptMode::Kind kind);

/// One intercepted connection, as the attacker saw it.
struct Interception {
  std::string hostname;
  bool saw_client_hello = false;
  std::optional<tls::ClientHello> client_hello;
  bool handshake_complete = false;
  common::Bytes recovered_plaintext;
  std::optional<tls::Alert> alert_received;

  /// The paper's interception-success criterion: the attacker completed
  /// the handshake and can read the client's application data.
  [[nodiscard]] bool compromised() const {
    return handshake_complete && !recovered_plaintext.empty();
  }
};

class Interceptor {
 public:
  /// `cloud` is needed only for OldVersionProbe (to impersonate nobody and
  /// let the genuine config through with a version override).
  Interceptor(const pki::CaUniverse& universe,
              const testbed::CloudFarm& cloud, std::uint64_t seed = 0xA77AC);

  void set_mode(InterceptMode mode) { mode_ = mode; }
  [[nodiscard]] const InterceptMode& mode() const { return mode_; }

  /// Hostnames to leave untouched (TrafficPassthrough, §4.2).
  void set_passthrough(std::set<std::string> hostnames);
  void clear_passthrough() { passthrough_.clear(); }

  /// Install into / remove from the network's on-path slot. Adopts the
  /// network's trace log: each intercepted connection then gets an
  /// `intercept:<hostname>` span describing the forged identity.
  void install(net::Network& network);
  void uninstall(net::Network& network);

  /// Interceptions observed since the last drain (sessions still live are
  /// harvested on demand).
  std::vector<Interception> drain();

  [[nodiscard]] const AttackForge& forge() const { return forge_; }

 private:
  std::shared_ptr<tls::ServerSession> intercept(
      const std::string& hostname, const net::Network::SessionFactory& real);

  AttackForge forge_;
  const testbed::CloudFarm* cloud_;
  InterceptMode mode_ = InterceptMode::make_attack(AttackKind::NoValidation);
  obs::TraceLog* trace_ = nullptr;
  std::set<std::string> passthrough_;
  std::vector<std::pair<std::string, std::shared_ptr<tls::TlsServer>>>
      sessions_;
};

}  // namespace iotls::mitm
