#include "mitm/attacks.hpp"

#include "pki/spoof.hpp"
#include "testbed/cloud.hpp"

namespace iotls::mitm {

std::string attack_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::NoValidation: return "NoValidation";
    case AttackKind::WrongHostname: return "WrongHostname";
    case AttackKind::InvalidBasicConstraints:
      return "InvalidBasicConstraints";
  }
  return "unknown";
}

std::string attack_description(AttackKind kind) {
  switch (kind) {
    case AttackKind::NoValidation:
      return "Use a self-signed certificate to check whether a device "
             "performs any certificate validation.";
    case AttackKind::WrongHostname:
      return "Use an unexpired legitimate certificate for a domain under "
             "our control to check whether a device performs hostname "
             "validation. We send the full chain linking to a trusted root "
             "authority during handshake.";
    case AttackKind::InvalidBasicConstraints:
      return "Use certificate from the previous attack as a root CA to "
             "check whether a device validates BasicConstraints extension. "
             "We send the full chain linking to a trusted root authority "
             "during handshake.";
  }
  return "unknown";
}

const std::vector<AttackKind>& all_attacks() {
  static const std::vector<AttackKind> kAll = {
      AttackKind::NoValidation, AttackKind::WrongHostname,
      AttackKind::InvalidBasicConstraints};
  return kAll;
}

std::string failure_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::IncompleteHandshake: return "IncompleteHandshake";
    case FailureKind::FailedHandshake: return "FailedHandshake";
  }
  return "unknown";
}

AttackForge::AttackForge(const pki::CaUniverse& universe, std::uint64_t seed)
    : attacker_domain_("research.iotls-lab-sim.net") {
  common::Rng rng = common::Rng::derive(seed, "attack-forge");
  attacker_keys_ = crypto::rsa_generate(rng);

  // The paper obtained a free certificate from ZeroSSL for a domain it
  // controls; our equivalent is a leaf issued by a universally trusted
  // common CA (the cloud farm's issuer, present in every device store).
  const auto& ca =
      universe.authority(testbed::CloudFarm::kDefaultCaName);
  attacker_cert_ = ca.issue_server_cert(
      attacker_domain_, attacker_keys_.pub,
      x509::Validity{{2020, 1, 1}, {2023, 1, 1}});
  attacker_chain_ = {attacker_cert_, ca.root()};

  unknown_root_ = x509::make_self_signed_root(
      x509::DistinguishedName{"IoTLS Probe Arbitrary Root", "Probing", "US"},
      {0xAB, 0xCD, 0xEF}, attacker_keys_);
}

ForgedIdentity AttackForge::forge(AttackKind kind,
                                  const std::string& victim_host) const {
  ForgedIdentity identity;
  identity.keys = attacker_keys_;

  switch (kind) {
    case AttackKind::NoValidation:
      identity.chain = {
          pki::make_self_signed_leaf(victim_host, attacker_keys_)};
      return identity;

    case AttackKind::WrongHostname:
      // Valid chain, wrong name: the certificate is for *our* domain.
      identity.chain = attacker_chain_;
      return identity;

    case AttackKind::InvalidBasicConstraints: {
      // Our legitimate *leaf* acts as the issuer of a fresh certificate
      // for the victim's hostname.
      x509::TbsCertificate tbs;
      tbs.serial = {0x13, 0x37};
      tbs.issuer = attacker_cert_.tbs.subject;
      tbs.subject = x509::DistinguishedName::cn(victim_host);
      tbs.validity = x509::Validity{{2020, 1, 1}, {2023, 1, 1}};
      tbs.subject_public_key = attacker_keys_.pub;
      tbs.extensions.basic_constraints = x509::BasicConstraints{false, {}};
      tbs.extensions.subject_alt_names = {victim_host};
      const auto forged_leaf =
          x509::issue_certificate(tbs, attacker_keys_.priv);
      identity.chain = {forged_leaf};
      identity.chain.insert(identity.chain.end(), attacker_chain_.begin(),
                            attacker_chain_.end());
      return identity;
    }
  }
  throw common::ProtocolError("unknown attack kind");
}

ForgedIdentity AttackForge::self_signed(const std::string& victim_host) const {
  return forge(AttackKind::NoValidation, victim_host);
}

ForgedIdentity AttackForge::spoofed_ca_chain(
    const x509::Certificate& real_root,
    const std::string& victim_host) const {
  ForgedIdentity identity;
  identity.keys = attacker_keys_;
  const auto spoofed = pki::make_spoofed_ca(real_root, attacker_keys_);
  identity.chain = pki::forge_chain(spoofed, attacker_keys_.priv,
                                    victim_host, attacker_keys_.pub);
  return identity;
}

ForgedIdentity AttackForge::unknown_ca_chain(
    const std::string& victim_host) const {
  ForgedIdentity identity;
  identity.keys = attacker_keys_;
  identity.chain = pki::forge_chain(unknown_root_, attacker_keys_.priv,
                                    victim_host, attacker_keys_.pub);
  return identity;
}

}  // namespace iotls::mitm
