#include "testbed/longitudinal.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/pool.hpp"
#include "common/strings.hpp"
#include "common/task.hpp"
#include "engine/map.hpp"
#include "testbed/testbed.hpp"

namespace iotls::testbed {

void PassiveDataset::add(PassiveConnectionGroup group) {
  DeviceEntry& entry = by_device_[group.record.device];
  entry.group_indices.push_back(groups_.size());
  entry.connections += group.count;
  total_ += group.count;
  groups_.push_back(std::move(group));
}

std::uint64_t PassiveDataset::device_connections(
    const std::string& device) const {
  const auto it = by_device_.find(device);
  return it == by_device_.end() ? 0 : it->second.connections;
}

std::vector<std::string> PassiveDataset::devices() const {
  std::vector<std::string> names;
  names.reserve(by_device_.size());
  for (const auto& [name, entry] : by_device_) names.push_back(name);
  return names;
}

std::vector<const PassiveConnectionGroup*> PassiveDataset::for_device(
    const std::string& device) const {
  std::vector<const PassiveConnectionGroup*> out;
  const auto it = by_device_.find(device);
  if (it == by_device_.end()) return out;
  out.reserve(it->second.group_indices.size());
  for (const std::size_t i : it->second.group_indices) {
    out.push_back(&groups_[i]);
  }
  return out;
}

namespace {

std::string join_u16(const std::vector<std::uint16_t>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}

std::vector<std::uint16_t> split_u16(const std::string& text) {
  std::vector<std::uint16_t> out;
  if (text.empty()) return out;
  for (const auto& part : common::split(text, ',')) {
    out.push_back(static_cast<std::uint16_t>(std::stoul(part)));
  }
  return out;
}

std::string join_versions(const std::vector<tls::ProtocolVersion>& versions) {
  std::vector<std::uint16_t> raw;
  for (const auto v : versions) raw.push_back(static_cast<std::uint16_t>(v));
  return join_u16(raw);
}

std::vector<tls::ProtocolVersion> split_versions(const std::string& text) {
  std::vector<tls::ProtocolVersion> out;
  for (const auto raw : split_u16(text)) {
    out.push_back(tls::version_from_wire(raw));
  }
  return out;
}

std::string alert_field(const std::optional<tls::Alert>& alert) {
  if (!alert) return "-";
  return std::to_string(static_cast<int>(alert->level)) + ":" +
         std::to_string(static_cast<int>(alert->description));
}

std::optional<tls::Alert> parse_alert_field(const std::string& field) {
  if (field == "-") return std::nullopt;
  const auto parts = common::split(field, ':');
  if (parts.size() != 2) throw common::ParseError("bad alert field");
  tls::Alert alert;
  alert.level = static_cast<tls::AlertLevel>(std::stoi(parts[0]));
  alert.description =
      static_cast<tls::AlertDescription>(std::stoi(parts[1]));
  return alert;
}

constexpr const char* kDatasetHeader =
    "device\tdestination\tmonth\tcount\tadvertised_versions\t"
    "advertised_suites\textension_types\tgroups\tsigalgs\tocsp_staple\t"
    "sni\testablished_version\testablished_suite\tcomplete\tapp_data\t"
    "client_alert\tserver_alert";

}  // namespace

const std::string& dataset_tsv_header() {
  static const std::string header(kDatasetHeader);
  return header;
}

std::string group_to_tsv_row(const PassiveConnectionGroup& g) {
  const auto& r = g.record;
  return r.device + '\t' + r.destination + '\t' + r.month.str() + '\t' +
         std::to_string(g.count) + '\t' +
         join_versions(r.advertised_versions) + '\t' +
         join_u16(r.advertised_suites) + '\t' +
         join_u16(r.extension_types) + '\t' +
         join_u16(r.advertised_groups) + '\t' +
         join_u16(r.advertised_sigalgs) + '\t' +
         (r.requested_ocsp_staple ? "1" : "0") + '\t' +
         (r.sent_sni ? "1" : "0") + '\t' +
         (r.established_version
              ? std::to_string(
                    static_cast<std::uint16_t>(*r.established_version))
              : "-") +
         '\t' +
         (r.established_suite ? std::to_string(*r.established_suite) : "-") +
         '\t' + (r.handshake_complete ? "1" : "0") + '\t' +
         (r.application_data_seen ? "1" : "0") + '\t' +
         alert_field(r.client_alert) + '\t' + alert_field(r.server_alert) +
         '\n';
}

std::string dataset_to_tsv(const PassiveDataset& dataset) {
  std::string out = dataset_tsv_header() + "\n";
  for (const auto& g : dataset.groups()) out += group_to_tsv_row(g);
  return out;
}

PassiveDataset dataset_from_tsv(const std::string& tsv) {
  PassiveDataset dataset;
  std::istringstream stream(tsv);
  std::string line;
  if (!std::getline(stream, line) || line != kDatasetHeader) {
    throw common::ParseError("unrecognized dataset header");
  }
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    const auto fields = common::split(line, '\t');
    if (fields.size() != 17) {
      throw common::ParseError("dataset row has wrong field count");
    }
    PassiveConnectionGroup group;
    auto& r = group.record;
    r.device = fields[0];
    r.destination = fields[1];
    const auto ym = common::split(fields[2], '-');
    if (ym.size() != 2) throw common::ParseError("bad month field");
    r.month = common::Month{std::stoi(ym[0]), std::stoi(ym[1])};
    group.count = std::stoull(fields[3]);
    r.advertised_versions = split_versions(fields[4]);
    r.advertised_suites = split_u16(fields[5]);
    r.extension_types = split_u16(fields[6]);
    r.advertised_groups = split_u16(fields[7]);
    r.advertised_sigalgs = split_u16(fields[8]);
    r.requested_ocsp_staple = fields[9] == "1";
    r.sent_sni = fields[10] == "1";
    if (fields[11] != "-") {
      r.established_version = tls::version_from_wire(
          static_cast<std::uint16_t>(std::stoul(fields[11])));
    }
    if (fields[12] != "-") {
      r.established_suite =
          static_cast<std::uint16_t>(std::stoul(fields[12]));
    }
    r.handshake_complete = fields[13] == "1";
    r.application_data_seen = fields[14] == "1";
    r.client_alert = parse_alert_field(fields[15]);
    r.server_alert = parse_alert_field(fields[16]);
    dataset.add(std::move(group));
  }
  return dataset;
}

void save_dataset(const PassiveDataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw common::ProtocolError("cannot open " + path);
  out << dataset_to_tsv(dataset);
}

PassiveDataset load_dataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw common::ProtocolError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return dataset_from_tsv(buf.str());
}

PassiveDataset generate_passive_dataset(const GeneratorOptions& options) {
  const auto wanted = [&](const devices::DeviceProfile& profile) {
    return options.devices.empty() ||
           std::find(options.devices.begin(), options.devices.end(),
                     profile.name) != options.devices.end();
  };
  std::vector<const devices::DeviceProfile*> profiles;
  for (const auto& profile : devices::device_catalog()) {
    if (wanted(profile)) profiles.push_back(&profile);
  }
  const auto months = common::month_range(options.first, options.last);

  // Connection counts are drawn serially, up front, in the exact
  // device→month→destination order the serial generator consumed its
  // stream — the fan-out below must not touch the shared RNG.
  common::Rng count_rng = common::Rng::derive(options.seed, "passive-counts");
  std::vector<std::vector<std::uint64_t>> counts(profiles.size());
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const auto& profile = *profiles[p];
    for (const auto& month : months) {
      if (!profile.generates_traffic_in(month)) continue;
      for (const auto& dest : profile.destinations) {
        // Month-to-month activity jitter: destinations are contacted more
        // or less often (this is what drives the Insteon Hub's varying
        // old-version fraction in Fig 1).
        const double jitter = 0.35 + 1.3 * count_rng.uniform01();
        counts[p].push_back(static_cast<std::uint64_t>(std::max(
            1.0, profile.monthly_connections_per_destination * jitter *
                     options.count_scale * dest.traffic_weight *
                     (dest.first_party ? 1.0 : 0.4))));
      }
    }
  }

  // Each device replays its two-year capture inside its own sandbox
  // testbed; the per-device group lists concatenate in catalog order, so
  // the dataset (and its TSV) is byte-identical to the serial one.
  std::vector<std::size_t> indices(profiles.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  auto per_device = engine::map(
      options.threads, options.engine, indices,
      [&](std::size_t p, engine::Engine* eng)
          -> common::Task<std::vector<PassiveConnectionGroup>> {
        const auto& profile = *profiles[p];
        Testbed::Options tb_options;
        tb_options.seed = options.seed;
        tb_options.universe = options.universe;
        tb_options.active_only = false;
        tb_options.devices = {profile.name};
        Testbed testbed(tb_options);
        if (eng != nullptr) testbed.set_engine(eng);
        DeviceRuntime& runtime = testbed.runtime(profile.name);

        std::vector<PassiveConnectionGroup> groups;
        std::size_t draw = 0;
        for (const auto& month : months) {
          if (!profile.generates_traffic_in(month)) continue;
          // Mid-month sampling date.
          testbed.set_date(common::SimDate::start_of(month).plus_days(14));

          for (const auto& dest : profile.destinations) {
            const std::uint64_t count = counts[p][draw++];
            const std::size_t before = testbed.network().capture().size();
            (void)co_await runtime.connect_to_task(dest, testbed.date());
            const auto& records = testbed.network().capture().records();

            // connect_to may have produced two captures (fallback retry);
            // fold them all into the month's groups.
            for (std::size_t i = before; i < records.size(); ++i) {
              PassiveConnectionGroup group;
              group.record = records[i];
              group.record.month = month;
              group.count = count;
              groups.push_back(std::move(group));
            }
          }
        }
        co_return groups;
      });

  PassiveDataset dataset;
  for (auto& groups : per_device) {
    for (auto& group : groups) dataset.add(std::move(group));
  }
  return dataset;
}

}  // namespace iotls::testbed
