#include "testbed/plug.hpp"

namespace iotls::testbed {

BootResult SmartPlug::power_cycle(common::SimDate now,
                                  bool include_intermittent) {
  powered_ = false;  // off...
  powered_ = true;   // ...and back on
  ++cycles_;
  return runtime_->boot(now, include_intermittent);
}

}  // namespace iotls::testbed
