#include "testbed/cloud.hpp"

#include "common/strings.hpp"

namespace iotls::testbed {

namespace t = iotls::tls;

ServerPolicy CloudFarm::domain_policy(const std::string& hostname) {
  using common::ends_with;
  ServerPolicy p;

  // --- version ceilings (Fig 1 server-limited rows) ---
  if (ends_with(hostname, ".samsung-sim.com") &&
      hostname.find("tv.samsung-sim.com") == std::string::npos) {
    // Appliance endpoints stop at TLS 1.1 (washer/dryer/fridge rows).
    p.max_version = t::ProtocolVersion::Tls1_1;
  }
  if (ends_with(hostname, ".lg-sim.com")) {
    p.max_version = t::ProtocolVersion::Tls1_1;  // LG Dishwasher row
  }

  // --- TLS 1.3 adoption (sparse: clients outpace servers, §5.1) ---
  if (hostname == "svc00.appletv.apple-sim.com") {
    p.tls13_adoption = common::Month{2019, 8};
  }
  if (hostname == "svc00.home.google-sim.com") {
    p.tls13_adoption = common::Month{2019, 10};
  }

  // --- PFS preference adoption (Fig 3 transitions) ---
  if (ends_with(hostname, ".ring-sim.com")) {
    p.pfs_adoption = common::Month{2018, 4};
  } else if (ends_with(hostname, ".appletv.apple-sim.com")) {
    p.pfs_adoption = common::Month{2019, 3};
  } else if (ends_with(hostname, ".homepod.apple-sim.com")) {
    p.pfs_adoption = common::Month{2020, 1};
  } else if (hostname == "api.wink-sim.com" ||
             ends_with(hostname, ".hub.blink-sim.com")) {
    p.pfs_adoption = common::Month{2019, 10};
  } else if (ends_with(hostname, ".google-sim.com") ||
             ends_with(hostname, ".nest-sim.com") ||
             ends_with(hostname, ".dlink-sim.com") ||
             ends_with(hostname, ".switchbot-sim.com") ||
             ends_with(hostname, ".tracker-sim.net") ||
             ends_with(hostname, ".tuya-sim.com") ||
             ends_with(hostname, ".tplink-sim.com") ||
             ends_with(hostname, ".meross-sim.com") ||
             ends_with(hostname, ".ge-sim.com") ||
             ends_with(hostname, ".behmor-sim.com") ||
             ends_with(hostname, ".yitechnology-sim.com") ||
             ends_with(hostname, ".cam.blink-sim.com") ||
             ends_with(hostname, ".philips-sim.com") ||
             ends_with(hostname, ".insteon-sim.com") ||
             ends_with(hostname, ".sengled-sim.com") ||
             ends_with(hostname, ".tv.samsung-sim.com") ||
             hostname == "ota.amazon-sim.com") {
    // The well-run endpoints: PFS from the start of the study (the ~18
    // devices whose connections are mostly strong and thus not shown in
    // Fig 3).
    p.pfs_adoption = common::Month{2017, 1};
  }

  // --- the two insecure-establishing endpoints (Fig 2) ---
  if (hostname == "cloud.wink-sim.com") {
    p.preferred_suite = t::TLS_RSA_WITH_3DES_EDE_CBC_SHA;
  }
  if (hostname == "device.lgtv-sim.com") {
    p.preferred_suite = t::TLS_RSA_WITH_RC4_128_SHA;
  }

  return p;
}

CloudFarm::CloudFarm(const pki::CaUniverse& universe, std::uint64_t seed,
                     std::string ca_name)
    : universe_(universe),
      ca_name_(std::move(ca_name)),
      rng_(common::Rng::derive(seed, "cloud-farm")) {
  // Validate early: the CA must exist (throws otherwise).
  (void)universe_.authority(ca_name_);
}

void CloudFarm::add_destination(const std::string& hostname,
                                std::optional<ServerPolicy> policy) {
  if (endpoints_.count(hostname)) return;
  Endpoint ep;
  ep.policy = policy.value_or(domain_policy(hostname));
  // Server keys are derived from the hostname alone, so repeated testbed
  // constructions (tests, benches, per-device experiment sandboxes) reuse
  // one keypair per endpoint: rsa_generate memoises on the derived
  // generator state (see crypto/cache.hpp), which replaced the hostname
  // map this file used to keep.
  common::Rng key_rng =
      common::Rng::derive(0xC10DDCAFE, "srv-key:" + hostname);
  ep.keys = crypto::rsa_generate(key_rng);
  // Long validity covering the passive study and the 2021 active runs.
  ep.certificate = universe_.authority(ca_name_).issue_server_cert(
      hostname, ep.keys.pub,
      x509::Validity{{2017, 1, 1}, {2023, 1, 1}});
  endpoints_.emplace(hostname, std::move(ep));
}

tls::ServerConfig CloudFarm::server_config(const std::string& hostname) const {
  const auto it = endpoints_.find(hostname);
  if (it == endpoints_.end()) {
    throw common::ProtocolError("cloud farm has no endpoint " + hostname);
  }
  const Endpoint& ep = it->second;
  const common::Month month = now_.to_month();

  tls::ServerConfig cfg;
  cfg.chain = {ep.certificate};
  cfg.keys = ep.keys;
  cfg.ocsp_staple_support = ep.policy.ocsp_staple_support;
  cfg.seed = common::fnv1a64(hostname) ^ 0x5EED;

  // Supported versions.
  t::ProtocolVersion max = ep.policy.max_version;
  if (ep.policy.tls13_adoption && month >= *ep.policy.tls13_adoption) {
    max = t::ProtocolVersion::Tls1_3;
  }
  cfg.versions.clear();
  for (const auto v :
       {t::ProtocolVersion::Ssl3_0, t::ProtocolVersion::Tls1_0,
        t::ProtocolVersion::Tls1_1, t::ProtocolVersion::Tls1_2,
        t::ProtocolVersion::Tls1_3}) {
    if (v >= ep.policy.min_version && v <= max) cfg.versions.push_back(v);
  }

  // Preference order.
  const bool pfs_first =
      ep.policy.pfs_adoption && month >= *ep.policy.pfs_adoption;
  cfg.cipher_suites.clear();
  if (ep.policy.preferred_suite) {
    cfg.cipher_suites.push_back(*ep.policy.preferred_suite);
  }
  if (max == t::ProtocolVersion::Tls1_3) {
    cfg.cipher_suites.push_back(t::TLS_AES_128_GCM_SHA256);
    cfg.cipher_suites.push_back(t::TLS_CHACHA20_POLY1305_SHA256);
  }
  const std::vector<std::uint16_t> pfs_suites = {
      t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
      t::TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305,
      t::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
      t::TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
      t::TLS_DHE_RSA_WITH_AES_128_GCM_SHA256,
  };
  const std::vector<std::uint16_t> rsa_suites = {
      t::TLS_RSA_WITH_AES_128_GCM_SHA256,
      t::TLS_RSA_WITH_AES_128_CBC_SHA,
      t::TLS_RSA_WITH_AES_256_CBC_SHA,
  };
  // Weak ciphers are a last resort for every server (only the explicit
  // preferred_suite endpoints ever *establish* them, Fig 2).
  const std::vector<std::uint16_t> weak_tail = {
      t::TLS_RSA_WITH_3DES_EDE_CBC_SHA,
      t::TLS_RSA_WITH_RC4_128_SHA,
  };
  const auto& first = pfs_first ? pfs_suites : rsa_suites;
  const auto& second = pfs_first ? rsa_suites : pfs_suites;
  cfg.cipher_suites.insert(cfg.cipher_suites.end(), first.begin(),
                           first.end());
  cfg.cipher_suites.insert(cfg.cipher_suites.end(), second.begin(),
                           second.end());
  cfg.cipher_suites.insert(cfg.cipher_suites.end(), weak_tail.begin(),
                           weak_tail.end());
  return cfg;
}

const ServerPolicy& CloudFarm::policy(const std::string& hostname) const {
  const auto it = endpoints_.find(hostname);
  if (it == endpoints_.end()) {
    throw common::ProtocolError("cloud farm has no endpoint " + hostname);
  }
  return it->second.policy;
}

void CloudFarm::install(net::Network& network) const {
  for (const auto& [hostname, ep] : endpoints_) {
    network.register_server(
        hostname, [this](const std::string& host) {
          return std::make_shared<tls::TlsServer>(server_config(host));
        });
  }
}

}  // namespace iotls::testbed
