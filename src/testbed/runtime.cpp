#include "testbed/runtime.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "testbed/cloud.hpp"

namespace iotls::testbed {

namespace {

struct RuntimeMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  obs::Counter& connections = reg.counter(
      "iotls_testbed_connections_total",
      "Device connection attempts through the testbed network");

  obs::Counter& fallback_retries(const std::string& trigger) {
    return reg.counter("iotls_testbed_fallback_retries_total",
                       "Table 5 downgrade retries, by what triggered them",
                       "trigger", trigger);
  }

  static RuntimeMetrics& get() {
    static RuntimeMetrics metrics;
    return metrics;
  }
};

}  // namespace

int BootResult::successes() const {
  return static_cast<int>(std::count_if(
      connections.begin(), connections.end(),
      [](const ConnectionOutcome& c) { return c.final_result().success(); }));
}

int BootResult::failures() const {
  return static_cast<int>(connections.size()) - successes();
}

DeviceRuntime::DeviceRuntime(const devices::DeviceProfile& profile,
                             const pki::CaUniverse& universe,
                             net::Network& network,
                             const pki::RevocationList* revocations)
    : profile_(profile),
      network_(network),
      roots_(profile.build_root_store(universe)),
      revocations_(revocations) {
  // Every device must be able to verify the legitimate cloud: its store
  // always contains the farm's issuing CA (DESIGN.md: the paper's devices
  // all completed legitimate connections before any attack was mounted).
  roots_.add(universe.authority(CloudFarm::kDefaultCaName).root());
}

tls::ClientConfig DeviceRuntime::effective_config(
    const devices::DestinationSpec& dest, common::SimDate now) const {
  tls::ClientConfig config =
      profile_.config_at(dest.instance_id, now.to_month());
  if (validation_disabled_) {
    config.verify_policy = x509::VerifyPolicy::none();
  }
  // Table 8: only the CRL/OCSP devices consult the revocation list.
  if (revocations_ != nullptr &&
      (profile_.revocation.crl || profile_.revocation.ocsp)) {
    config.revocation_list = revocations_;
  }
  return config;
}

tls::ClientResult DeviceRuntime::run_connection(
    const devices::DestinationSpec& dest, const tls::ClientConfig& config,
    common::SimDate now) {
  auto connection =
      network_.connect(dest.hostname, profile_.name, now.to_month());
  if (obs::metrics_enabled()) RuntimeMetrics::get().connections.inc();
  // Per-connection stream: split on the counter first (so every attempt —
  // including fallback retries — gets an unrelated stream), then on the
  // hostname. Pure function of (seed, counter, hostname): replaying a
  // device reproduces every connection's randomness regardless of what
  // other devices or workers are doing.
  common::Rng rng(common::split_seed(
      common::split_seed(profile_.seed, connection_counter_++),
      "conn:" + dest.hostname));
  tls::ClientConfig traced_config = config;
  if (connection.span != nullptr) traced_config.span = connection.span.get();
  tls::TlsClient client(std::move(traced_config), &roots_, rng, now);

  const common::Bytes payload =
      dest.sensitive_payload.empty()
          ? common::to_bytes("GET /telemetry?device=" + profile_.name)
          : common::to_bytes(dest.sensitive_payload);
  tls::ClientResult result =
      client.connect(*connection.transport, dest.hostname, payload);
  network_.finish(connection);
  return result;
}

common::Task<tls::ClientResult> DeviceRuntime::run_connection_task(
    const devices::DestinationSpec& dest, const tls::ClientConfig& config,
    common::SimDate now) {
  if (engine_ == nullptr) {
    // Synchronous path, bit-for-bit: same transport, same profiling zone.
    co_return run_connection(dest, config, now);
  }
  auto connection =
      network_.open(*engine_, dest.hostname, profile_.name, now.to_month());
  if (obs::metrics_enabled()) RuntimeMetrics::get().connections.inc();
  // Per-connection stream: split on the counter first (so every attempt —
  // including fallback retries — gets an unrelated stream), then on the
  // hostname. Pure function of (seed, counter, hostname): replaying a
  // device reproduces every connection's randomness regardless of what
  // other devices or workers are doing.
  common::Rng rng(common::split_seed(
      common::split_seed(profile_.seed, connection_counter_++),
      "conn:" + dest.hostname));
  tls::ClientConfig traced_config = config;
  if (connection.span != nullptr) traced_config.span = connection.span.get();
  tls::TlsClient client(std::move(traced_config), &roots_, rng, now);

  const common::Bytes payload =
      dest.sensitive_payload.empty()
          ? common::to_bytes("GET /telemetry?device=" + profile_.name)
          : common::to_bytes(dest.sensitive_payload);
  tls::ClientResult result = co_await client.connect_task(
      *connection.conduit, dest.hostname, payload);
  network_.finish(connection);
  co_return result;
}

void DeviceRuntime::note_outcome(const tls::ClientResult& result) {
  if (result.success()) {
    consecutive_failures_ = 0;
    return;
  }
  ++consecutive_failures_;
  if (profile_.disable_validation_after_failures > 0 &&
      consecutive_failures_ >= profile_.disable_validation_after_failures) {
    validation_disabled_ = true;  // the Yi Camera quirk (§5.2)
  }
}

common::Task<ConnectionOutcome> DeviceRuntime::connect_to_task(
    const devices::DestinationSpec& dest, common::SimDate now) {
  ConnectionOutcome outcome;
  outcome.destination = &dest;
  outcome.result =
      co_await run_connection_task(dest, effective_config(dest, now), now);
  note_outcome(outcome.result);

  // Table 5: retry with the downgraded configuration on failure.
  if (!outcome.result.success() && profile_.fallback.has_value() &&
      dest.downgrade_susceptible) {
    const auto& fb = *profile_.fallback;
    const bool incomplete =
        outcome.result.outcome == tls::HandshakeOutcome::NoServerResponse;
    const bool failed =
        outcome.result.outcome == tls::HandshakeOutcome::ValidationFailed ||
        outcome.result.outcome == tls::HandshakeOutcome::ServerAlert;
    if ((incomplete && fb.on_incomplete_handshake) ||
        (failed && fb.on_failed_handshake)) {
      tls::ClientConfig fallback_config = fb.fallback_config;
      if (validation_disabled_) {
        fallback_config.verify_policy = x509::VerifyPolicy::none();
      }
      if (obs::metrics_enabled()) {
        RuntimeMetrics::get()
            .fallback_retries(incomplete ? "incomplete_handshake"
                                         : "failed_handshake")
            .inc();
      }
      outcome.used_fallback = true;
      outcome.fallback_result =
          co_await run_connection_task(dest, fallback_config, now);
      note_outcome(*outcome.fallback_result);
    }
  }
  co_return outcome;
}

ConnectionOutcome DeviceRuntime::connect_to(
    const devices::DestinationSpec& dest, common::SimDate now) {
  return common::run_sync(connect_to_task(dest, now));
}

common::Task<BootResult> DeviceRuntime::boot_task(
    common::SimDate now, bool include_intermittent) {
  ++boot_counter_;
  BootResult result;
  for (const auto& dest : profile_.destinations) {
    if (dest.intermittent && !include_intermittent) continue;
    result.connections.push_back(co_await connect_to_task(dest, now));
  }
  co_return result;
}

BootResult DeviceRuntime::boot(common::SimDate now,
                               bool include_intermittent) {
  return common::run_sync(boot_task(now, include_intermittent));
}

void DeviceRuntime::reset_failure_state() {
  consecutive_failures_ = 0;
  validation_disabled_ = false;
}

}  // namespace iotls::testbed
