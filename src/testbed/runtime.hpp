// Device runtime: turns a DeviceProfile into live TLS behaviour.
//
// A boot replays the device's destination schedule in order (the
// determinism §4.2's probing relies on), applies firmware updates by date,
// runs the downgrade-on-failure retry logic (Table 5), and implements the
// Yi Camera's disable-validation-after-3-failures quirk (§5.2).
#pragma once

#include <optional>
#include <vector>

#include "common/task.hpp"
#include "devices/catalog.hpp"
#include "net/network.hpp"
#include "pki/universe.hpp"
#include "tls/client.hpp"

namespace iotls::testbed {

struct ConnectionOutcome {
  const devices::DestinationSpec* destination = nullptr;
  tls::ClientResult result;
  /// Set when the first attempt failed and the device retried with its
  /// fallback configuration (Table 5 behaviour).
  bool used_fallback = false;
  std::optional<tls::ClientResult> fallback_result;

  /// The result that "counts" (fallback result if a retry happened).
  [[nodiscard]] const tls::ClientResult& final_result() const {
    return used_fallback ? *fallback_result : result;
  }
};

struct BootResult {
  std::vector<ConnectionOutcome> connections;

  [[nodiscard]] int successes() const;
  [[nodiscard]] int failures() const;
};

class DeviceRuntime {
 public:
  /// `revocations` (optional, non-owning) backs the CRL/OCSP checks of the
  /// Table 8 devices: a runtime whose profile declares crl/ocsp support
  /// consults it on every connection.
  DeviceRuntime(const devices::DeviceProfile& profile,
                const pki::CaUniverse& universe, net::Network& network,
                const pki::RevocationList* revocations = nullptr);

  /// Power-cycle: reconnect to every destination in schedule order.
  /// `include_intermittent` adds the destinations that only appear after
  /// earlier successes (§4.2 TrafficPassthrough behaviour).
  BootResult boot(common::SimDate now, bool include_intermittent = false);

  /// Connect to a single destination (used by the prober, which needs one
  /// targeted connection per reboot).
  ConnectionOutcome connect_to(const devices::DestinationSpec& dest,
                               common::SimDate now);

  /// Route this runtime's connections through a session engine (nullptr =
  /// back to dedicated synchronous transports). With an engine set, use
  /// the *_task variants from inside an engine chain; the synchronous
  /// boot()/connect_to() wrappers would throw on suspension.
  void set_engine(engine::Engine* engine) { engine_ = engine; }
  [[nodiscard]] engine::Engine* engine() const { return engine_; }

  /// Coroutine twins of boot()/connect_to(): identical logic and RNG
  /// consumption, but each connection suspends on the engine's conduit so
  /// thousands of runtimes interleave per worker thread. With no engine
  /// set they never suspend, and the wrappers above are exactly
  /// run_sync(...) over them.
  common::Task<BootResult> boot_task(common::SimDate now,
                                     bool include_intermittent = false);
  common::Task<ConnectionOutcome> connect_to_task(
      const devices::DestinationSpec& dest, common::SimDate now);

  [[nodiscard]] const devices::DeviceProfile& profile() const {
    return profile_;
  }
  [[nodiscard]] const pki::RootStore& root_store() const { return roots_; }
  [[nodiscard]] bool validation_disabled() const {
    return validation_disabled_;
  }
  void reset_failure_state();

 private:
  tls::ClientConfig effective_config(const devices::DestinationSpec& dest,
                                     common::SimDate now) const;
  tls::ClientResult run_connection(const devices::DestinationSpec& dest,
                                   const tls::ClientConfig& config,
                                   common::SimDate now);
  common::Task<tls::ClientResult> run_connection_task(
      const devices::DestinationSpec& dest, const tls::ClientConfig& config,
      common::SimDate now);
  void note_outcome(const tls::ClientResult& result);

  const devices::DeviceProfile& profile_;
  net::Network& network_;
  pki::RootStore roots_;
  const pki::RevocationList* revocations_;
  engine::Engine* engine_ = nullptr;
  std::uint64_t boot_counter_ = 0;
  std::uint64_t connection_counter_ = 0;
  int consecutive_failures_ = 0;
  bool validation_disabled_ = false;
};

}  // namespace iotls::testbed
