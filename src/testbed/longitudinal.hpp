// Passive longitudinal dataset generator (§4.1's ≈2-year capture).
//
// For every (device, destination, month) in the study window the generator
// runs one *real* handshake against the month's evolving server config and
// assigns it a sampled connection count — month-granular aggregation is
// exactly what Figs 1-3 consume, and it keeps ≈17M connections tractable
// (the ablations quantify the cost of finer granularity).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/capture.hpp"
#include "pki/universe.hpp"

namespace iotls::testbed {

/// A group of identical connections in one month.
struct PassiveConnectionGroup {
  net::HandshakeRecord record;
  std::uint64_t count = 1;
};

class PassiveDataset {
 public:
  void add(PassiveConnectionGroup group);

  [[nodiscard]] const std::vector<PassiveConnectionGroup>& groups() const {
    return groups_;
  }
  [[nodiscard]] std::uint64_t total_connections() const { return total_; }
  [[nodiscard]] std::uint64_t device_connections(
      const std::string& device) const;
  [[nodiscard]] std::vector<std::string> devices() const;
  [[nodiscard]] std::vector<const PassiveConnectionGroup*> for_device(
      const std::string& device) const;

 private:
  struct DeviceEntry {
    std::vector<std::size_t> group_indices;  // dataset order
    std::uint64_t connections = 0;
  };

  std::vector<PassiveConnectionGroup> groups_;
  // Maintained by add(): device → its groups + totals, so the per-device
  // accessors are index lookups, not O(groups) scans.
  std::map<std::string, DeviceEntry> by_device_;
  std::uint64_t total_ = 0;
};

struct GeneratorOptions {
  std::uint64_t seed = 7;
  const pki::CaUniverse* universe = nullptr;  // default: standard()
  common::Month first = common::kStudyStart;
  common::Month last = common::kStudyEnd;
  /// Scales the sampled per-month connection counts (1.0 ≈ the paper's
  /// ≈17M total across the study).
  double count_scale = 1.0;
  /// Restrict to these devices (empty = all 40).
  std::vector<std::string> devices;
  /// Worker threads for the per-device fan-out (0 = hardware concurrency,
  /// 1 = serial). The dataset — including its TSV rendering — is
  /// byte-identical for every value: connection counts are drawn serially
  /// up front and each device replays its handshakes in a sandbox.
  std::size_t threads = 0;
  /// Replay each device's capture through a per-worker session engine
  /// (src/engine/) instead of dedicated synchronous transports; the
  /// dataset stays byte-identical.
  bool engine = false;
};

PassiveDataset generate_passive_dataset(
    const GeneratorOptions& options = GeneratorOptions{});

/// Persist / reload a dataset as tab-separated text — the equivalent of
/// the paper's public release of its longitudinal handshake data. The
/// format is stable, diffable, and loadable by external tooling.
void save_dataset(const PassiveDataset& dataset, const std::string& path);
PassiveDataset load_dataset(const std::string& path);

/// In-memory TSV forms (exposed for tests and piping).
std::string dataset_to_tsv(const PassiveDataset& dataset);
PassiveDataset dataset_from_tsv(const std::string& tsv);

/// Streaming TSV building blocks (used by dataset_to_tsv and by tooling
/// that renders rows without materializing a dataset). The header has no
/// trailing newline; a row includes its own.
const std::string& dataset_tsv_header();
std::string group_to_tsv_row(const PassiveConnectionGroup& group);

}  // namespace iotls::testbed
