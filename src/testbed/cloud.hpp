// The cloud side of the simulation: one TLS server identity per destination
// hostname, with *time-evolving* capabilities.
//
// Several of the paper's headline findings are server-side effects:
// devices advertise TLS 1.2/1.3 or PFS suites but the servers they contact
// don't support them (Figs 1, 3), Samsung appliances establish TLS 1.1
// because their endpoints stop there (Fig 1), and exactly two flows ever
// *establish* insecure suites because those two servers prefer 3DES / RC4
// (Fig 2). The CloudFarm encodes those per-domain behaviours and their
// adoption timeline.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/simtime.hpp"
#include "net/network.hpp"
#include "pki/universe.hpp"
#include "tls/server.hpp"

namespace iotls::testbed {

/// Per-destination server behaviour over time.
struct ServerPolicy {
  /// Highest version supported before/after `tls13_adoption`.
  tls::ProtocolVersion max_version = tls::ProtocolVersion::Tls1_2;
  tls::ProtocolVersion min_version = tls::ProtocolVersion::Ssl3_0;
  std::optional<common::Month> tls13_adoption;
  /// Month the server moves ECDHE to the top of its preference order;
  /// nullopt = RSA-key-transport preferred forever.
  std::optional<common::Month> pfs_adoption;
  /// Server prefers this suite above all (the 3DES/RC4-establishing
  /// endpoints of Fig 2); overrides pfs preference.
  std::optional<std::uint16_t> preferred_suite;
  bool ocsp_staple_support = true;
};

/// Issues per-domain certificates from the universe's CA set and builds
/// TlsServer sessions whose configuration follows the farm's current date.
class CloudFarm {
 public:
  /// `ca_name` must name a *common* CA in the universe (every device's
  /// root store force-includes it so legitimate connections verify).
  CloudFarm(const pki::CaUniverse& universe, std::uint64_t seed,
            std::string ca_name = std::string(kDefaultCaName));

  static constexpr const char* kDefaultCaName = "GlobalSign Root CA";

  /// Register a destination; idempotent. The policy defaults are derived
  /// from the hostname (domain_policy) unless one is supplied.
  void add_destination(const std::string& hostname,
                       std::optional<ServerPolicy> policy = std::nullopt);

  /// Install session factories for all destinations into `network`.
  /// Const: the factories only read endpoint state, so one farm can back
  /// many per-device sandbox networks concurrently (the farm must not be
  /// mutated — add_destination / set_current_date — during a fan-out).
  void install(net::Network& network) const;

  /// The date used for certificate validity and capability evolution.
  void set_current_date(common::SimDate date) { now_ = date; }
  [[nodiscard]] common::SimDate current_date() const { return now_; }

  /// Server configuration a destination would use right now.
  [[nodiscard]] tls::ServerConfig server_config(
      const std::string& hostname) const;

  [[nodiscard]] const ServerPolicy& policy(const std::string& hostname) const;
  [[nodiscard]] const std::string& ca_name() const { return ca_name_; }

  /// The built-in per-domain policy table (Fig 1-3 server-side events).
  static ServerPolicy domain_policy(const std::string& hostname);

 private:
  struct Endpoint {
    ServerPolicy policy;
    crypto::RsaKeyPair keys;
    x509::Certificate certificate;
  };

  const pki::CaUniverse& universe_;
  std::string ca_name_;
  common::Rng rng_;
  common::SimDate now_{2021, 3, 1};
  std::map<std::string, Endpoint> endpoints_;
};

}  // namespace iotls::testbed
