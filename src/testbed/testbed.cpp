#include "testbed/testbed.hpp"

#include <stdexcept>

namespace iotls::testbed {

Testbed::Testbed(Options options)
    : universe_(options.universe != nullptr ? options.universe
                                            : &pki::CaUniverse::standard()) {
  cloud_ = std::make_unique<CloudFarm>(*universe_, options.seed);

  for (const auto& profile : devices::device_catalog()) {
    for (const auto& dest : profile.destinations) {
      cloud_->add_destination(dest.hostname);
    }
    if (options.active_only && !profile.active) continue;
    auto runtime = std::make_unique<DeviceRuntime>(profile, *universe_,
                                                   network_, &revocations_);
    plugs_.emplace(profile.name, std::make_unique<SmartPlug>(*runtime));
    runtimes_.emplace(profile.name, std::move(runtime));
  }
  cloud_->install(network_);
}

DeviceRuntime& Testbed::runtime(const std::string& device_name) {
  const auto it = runtimes_.find(device_name);
  if (it == runtimes_.end()) {
    throw std::out_of_range("no runtime for device " + device_name);
  }
  return *it->second;
}

SmartPlug& Testbed::plug(const std::string& device_name) {
  const auto it = plugs_.find(device_name);
  if (it == plugs_.end()) {
    throw std::out_of_range("no plug for device " + device_name);
  }
  return *it->second;
}

std::vector<std::string> Testbed::device_names() const {
  std::vector<std::string> out;
  out.reserve(runtimes_.size());
  for (const auto& [name, runtime] : runtimes_) out.push_back(name);
  return out;
}

}  // namespace iotls::testbed
