#include "testbed/testbed.hpp"

#include <algorithm>
#include <stdexcept>

namespace iotls::testbed {

Testbed::Testbed(Options options)
    : options_(std::move(options)),
      universe_(options_.universe != nullptr ? options_.universe
                                             : &pki::CaUniverse::standard()) {
  network_.set_trace(options_.trace);
  cloud_ = std::make_unique<CloudFarm>(*universe_, options_.seed);
  const pki::RevocationList* revocations =
      options_.revocations != nullptr ? options_.revocations : &revocations_;

  const auto wanted = [&](const devices::DeviceProfile& profile) {
    return options_.devices.empty() ||
           std::find(options_.devices.begin(), options_.devices.end(),
                     profile.name) != options_.devices.end();
  };
  for (const auto& profile : devices::device_catalog()) {
    if (!wanted(profile)) continue;
    for (const auto& dest : profile.destinations) {
      cloud_->add_destination(dest.hostname);
    }
    if (options_.active_only && !profile.active) continue;
    auto runtime = std::make_unique<DeviceRuntime>(profile, *universe_,
                                                   network_, revocations);
    plugs_.emplace(profile.name, std::make_unique<SmartPlug>(*runtime));
    runtimes_.emplace(profile.name, std::move(runtime));
  }
  cloud_->install(network_);
}

Testbed::Options Testbed::sandbox_options(
    const std::string& device_name) const {
  Options sandbox = options_;
  sandbox.universe = universe_;
  sandbox.devices = {device_name};
  sandbox.revocations =
      options_.revocations != nullptr ? options_.revocations : &revocations_;
  // Sandboxes trace into their own local log (see Options::trace).
  sandbox.trace = nullptr;
  return sandbox;
}

DeviceRuntime& Testbed::runtime(const std::string& device_name) {
  const auto it = runtimes_.find(device_name);
  if (it == runtimes_.end()) {
    throw std::out_of_range("no runtime for device " + device_name);
  }
  return *it->second;
}

SmartPlug& Testbed::plug(const std::string& device_name) {
  const auto it = plugs_.find(device_name);
  if (it == plugs_.end()) {
    throw std::out_of_range("no plug for device " + device_name);
  }
  return *it->second;
}

std::vector<std::string> Testbed::device_names() const {
  std::vector<std::string> out;
  out.reserve(runtimes_.size());
  for (const auto& [name, runtime] : runtimes_) out.push_back(name);
  return out;
}

}  // namespace iotls::testbed
