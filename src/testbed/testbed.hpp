// Testbed assembly: the simulated smart home of §4.1 — all 40 devices, a
// smart plug per active device, the cloud farm, and the capture gateway.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "testbed/cloud.hpp"
#include "testbed/plug.hpp"
#include "testbed/runtime.hpp"

namespace iotls::testbed {

class Testbed {
 public:
  struct Options {
    std::uint64_t seed = 42;
    /// Defaults to CaUniverse::standard().
    const pki::CaUniverse* universe = nullptr;
    /// Only instantiate runtimes for active devices (cheaper for the
    /// active experiments; the passive generator sets this false).
    bool active_only = true;
    /// Restrict the testbed to these devices (empty = whole catalog).
    /// Only their runtimes and cloud destinations are built — this is what
    /// makes per-device experiment sandboxes cheap.
    std::vector<std::string> devices;
    /// Revocation list the runtimes consult (nullptr = the testbed's own).
    /// Sandboxes point this at their parent's list so CRL/OCSP behaviour
    /// carries over; the list must be const while sandboxes are live.
    const pki::RevocationList* revocations = nullptr;
    /// Trace log per-connection spans are committed to (non-owning, may be
    /// null). Deliberately NOT propagated by sandbox_options(): pool-fanned
    /// sandboxes each use their own local log, merged in catalog order by
    /// the coordinator, so traces stay byte-identical across thread counts.
    obs::TraceLog* trace = nullptr;
  };

  Testbed() : Testbed(Options{}) {}
  explicit Testbed(Options options);

  /// Options for an isolated single-device replica of this testbed: same
  /// seed, shared (const) CA universe and revocation list, own network /
  /// cloud endpoints / runtime. The experiment engine builds one per task
  /// so device fan-outs share no mutable state.
  [[nodiscard]] Options sandbox_options(const std::string& device_name) const;

  [[nodiscard]] const Options& options() const { return options_; }

  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] CloudFarm& cloud() { return *cloud_; }
  [[nodiscard]] const pki::CaUniverse& universe() const { return *universe_; }

  [[nodiscard]] DeviceRuntime& runtime(const std::string& device_name);
  [[nodiscard]] SmartPlug& plug(const std::string& device_name);
  [[nodiscard]] std::vector<std::string> device_names() const;

  /// Set the wall-clock for the whole testbed (cloud evolution +
  /// certificate validity).
  void set_date(common::SimDate date) { cloud_->set_current_date(date); }
  [[nodiscard]] common::SimDate date() const {
    return cloud_->current_date();
  }

  /// The ecosystem CRL consulted by the Table 8 CRL/OCSP devices.
  [[nodiscard]] pki::RevocationList& revocations() { return revocations_; }

  /// Re-point connection tracing (forwards to the network).
  void set_trace(obs::TraceLog* trace) { network_.set_trace(trace); }
  [[nodiscard]] obs::TraceLog* trace() const { return network_.trace(); }

  /// Route every runtime's connections through a session engine (nullptr =
  /// back to synchronous transports). Called by the experiment drivers on
  /// per-device sandboxes before running chains through engine::map.
  void set_engine(engine::Engine* engine) {
    for (auto& [name, runtime] : runtimes_) runtime->set_engine(engine);
  }

 private:
  Options options_;
  const pki::CaUniverse* universe_;
  net::Network network_;
  pki::RevocationList revocations_;
  std::unique_ptr<CloudFarm> cloud_;
  std::map<std::string, std::unique_ptr<DeviceRuntime>> runtimes_;
  std::map<std::string, std::unique_ptr<SmartPlug>> plugs_;
};

}  // namespace iotls::testbed
