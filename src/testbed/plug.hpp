// Smart plugs — the paper's traffic trigger (§4.1: "we programmatically use
// TP-Link power plugs to turn devices off and back on again").
#pragma once

#include "testbed/runtime.hpp"

namespace iotls::testbed {

/// A power switch attached to one device. Power-cycling reboots the device,
/// which replays its boot-time connection schedule — the repeatable TLS
/// trigger every active experiment uses.
class SmartPlug {
 public:
  explicit SmartPlug(DeviceRuntime& runtime) : runtime_(&runtime) {}

  /// Turn the device off and on; returns the boot-time connections.
  BootResult power_cycle(common::SimDate now,
                         bool include_intermittent = false);

  [[nodiscard]] bool powered() const { return powered_; }
  [[nodiscard]] int cycle_count() const { return cycles_; }
  [[nodiscard]] DeviceRuntime& runtime() { return *runtime_; }

 private:
  DeviceRuntime* runtime_;
  bool powered_ = true;
  int cycles_ = 0;
};

}  // namespace iotls::testbed
