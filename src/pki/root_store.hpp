// A trusted root store: the set of CA root certificates a TLS client
// accepts as chain anchors.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "x509/certificate.hpp"

namespace iotls::pki {

class RootStore {
 public:
  RootStore() = default;
  explicit RootStore(std::vector<x509::Certificate> roots)
      : roots_(std::move(roots)) {}

  void add(x509::Certificate root);
  /// Remove by subject DN; returns true if a certificate was removed.
  bool remove(const x509::DistinguishedName& subject);

  [[nodiscard]] bool contains(const x509::DistinguishedName& subject) const;
  [[nodiscard]] const x509::Certificate* find(
      const x509::DistinguishedName& subject) const;

  [[nodiscard]] std::span<const x509::Certificate> roots() const {
    return roots_;
  }
  [[nodiscard]] std::size_t size() const { return roots_.size(); }
  [[nodiscard]] bool empty() const { return roots_.empty(); }

 private:
  std::vector<x509::Certificate> roots_;
};

}  // namespace iotls::pki
