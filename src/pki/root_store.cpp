#include "pki/root_store.hpp"

#include <algorithm>

namespace iotls::pki {

void RootStore::add(x509::Certificate root) {
  if (!contains(root.tbs.subject)) roots_.push_back(std::move(root));
}

bool RootStore::remove(const x509::DistinguishedName& subject) {
  const auto it = std::remove_if(
      roots_.begin(), roots_.end(),
      [&](const x509::Certificate& c) { return c.tbs.subject == subject; });
  const bool removed = it != roots_.end();
  roots_.erase(it, roots_.end());
  return removed;
}

bool RootStore::contains(const x509::DistinguishedName& subject) const {
  return find(subject) != nullptr;
}

const x509::Certificate* RootStore::find(
    const x509::DistinguishedName& subject) const {
  const auto it = std::find_if(
      roots_.begin(), roots_.end(),
      [&](const x509::Certificate& c) { return c.tbs.subject == subject; });
  return it == roots_.end() ? nullptr : &*it;
}

}  // namespace iotls::pki
