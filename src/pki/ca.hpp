// A certificate authority: a root keypair, its self-signed root
// certificate, and issuance of server/intermediate certificates.
#pragma once

#include <atomic>
#include <string>

#include "common/rng.hpp"
#include "crypto/rsa.hpp"
#include "x509/certificate.hpp"

namespace iotls::pki {

class CertificateAuthority {
 public:
  /// Create a CA with a fresh keypair; `seed_rng` drives key generation and
  /// serial assignment (deterministic per universe seed).
  CertificateAuthority(x509::DistinguishedName subject, common::Rng& seed_rng,
                       x509::Validity validity = x509::Validity{},
                       std::size_t key_bits = crypto::kDefaultRsaBits);

  [[nodiscard]] const x509::Certificate& root() const { return root_; }
  [[nodiscard]] const crypto::RsaKeyPair& keypair() const { return keypair_; }
  [[nodiscard]] const x509::DistinguishedName& subject() const {
    return root_.tbs.subject;
  }

  /// Issue a server (leaf) certificate for `hostname`.
  /// The SAN list is {hostname}; CN is also set to hostname.
  [[nodiscard]] x509::Certificate issue_server_cert(
      const std::string& hostname, const crypto::RsaPublicKey& server_key,
      x509::Validity validity = x509::Validity{},
      const x509::CertExtensions* extra = nullptr) const;

  /// Issue an intermediate CA certificate.
  [[nodiscard]] x509::Certificate issue_intermediate(
      const x509::DistinguishedName& subject,
      const crypto::RsaPublicKey& intermediate_key,
      x509::Validity validity = x509::Validity{}) const;

 private:
  common::Bytes next_serial() const;

  crypto::RsaKeyPair keypair_;
  x509::Certificate root_;
  // Atomic: shared CAs issue leaf certificates concurrently when the
  // experiment engine fans out per-device sandboxes.
  mutable std::atomic<std::uint64_t> serial_counter_{1};
  std::uint64_t serial_prefix_ = 0;
};

}  // namespace iotls::pki
