#include "pki/revocation.hpp"

#include "common/hex.hpp"

namespace iotls::pki {

std::string RevocationList::key(const x509::DistinguishedName& issuer,
                                const common::Bytes& serial) {
  return issuer.str() + "#" + common::hex_encode(serial);
}

void RevocationList::revoke(const x509::Certificate& cert) {
  revoke(cert.tbs.issuer, cert.tbs.serial);
}

void RevocationList::revoke(const x509::DistinguishedName& issuer,
                            const common::Bytes& serial) {
  entries_.insert(key(issuer, serial));
}

bool RevocationList::is_revoked(const x509::Certificate& cert) const {
  return entries_.count(key(cert.tbs.issuer, cert.tbs.serial)) > 0;
}

}  // namespace iotls::pki
