#include "pki/history.hpp"

#include <stdexcept>

namespace iotls::pki {

const StoreVersion& PlatformStoreHistory::earliest() const {
  if (versions.empty()) throw std::logic_error("history has no versions");
  return versions.front();
}

const StoreVersion& PlatformStoreHistory::latest() const {
  if (versions.empty()) throw std::logic_error("history has no versions");
  return versions.back();
}

std::optional<int> PlatformStoreHistory::removal_year(
    const std::string& ca) const {
  bool seen = false;
  for (const auto& v : versions) {
    const bool present = v.ca_names.count(ca) > 0;
    if (seen && !present) return v.year;
    if (present) seen = true;
  }
  return std::nullopt;
}

std::set<std::string> derive_common(
    const std::vector<PlatformStoreHistory>& histories) {
  std::set<std::string> common;
  bool first = true;
  for (const auto& h : histories) {
    const auto& latest = h.latest().ca_names;
    if (first) {
      common = latest;
      first = false;
      continue;
    }
    std::set<std::string> next;
    for (const auto& name : common) {
      if (latest.count(name)) next.insert(name);
    }
    common = std::move(next);
  }
  return common;
}

std::set<std::string> derive_deprecated(
    const std::vector<PlatformStoreHistory>& histories) {
  // Per §4.2: start with the earliest version of each store; take every
  // cert removed in successor versions; exclude certs still present in the
  // latest version of any store (once-removed-but-restored).
  std::set<std::string> removed;
  for (const auto& h : histories) {
    for (const auto& name : h.earliest().ca_names) {
      if (h.removal_year(name).has_value()) removed.insert(name);
    }
  }
  std::set<std::string> out;
  for (const auto& name : removed) {
    bool in_some_latest = false;
    for (const auto& h : histories) {
      if (h.latest().ca_names.count(name)) {
        in_some_latest = true;
        break;
      }
    }
    if (!in_some_latest) out.insert(name);
  }
  return out;
}

std::optional<int> latest_removal_year(
    const std::vector<PlatformStoreHistory>& histories,
    const std::string& ca) {
  std::optional<int> latest;
  for (const auto& h : histories) {
    const auto year = h.removal_year(ca);
    if (year && (!latest || *year > *latest)) latest = year;
  }
  return latest;
}

}  // namespace iotls::pki
