// The synthetic CA ecosystem.
//
// The paper derives two probe sets from historical platform root stores
// (Table 3): 122 *common* certificates (in the latest version of every
// platform store) and 87 *deprecated-yet-unexpired* certificates (removed
// from some store before expiry). We cannot ship the real Mozilla/Android/
// Ubuntu/Microsoft data, so this module constructs an equivalent universe:
// the same set sizes, the same four platform histories (version counts and
// earliest years per Table 3), and the real-world distrust events the paper
// names (TurkTrust 2013, CNNIC 2015, WoSign/StartCom 2016, Certinomis 2019).
//
// Every CA has a real RSA keypair, so spoofed-certificate probes trigger
// genuine signature failures.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pki/ca.hpp"
#include "pki/history.hpp"
#include "pki/root_store.hpp"

namespace iotls::pki {

class CaUniverse {
 public:
  struct Options {
    std::uint64_t seed = 20210301;
    std::size_t key_bits = crypto::kDefaultRsaBits;
    /// Paper set sizes (Table 9 header).
    std::size_t common_count = 122;
    std::size_t deprecated_count = 87;
    /// Removed-but-already-expired CAs, exercised by the expiry filter.
    std::size_t expired_removed_count = 6;
    /// Extra per-platform CAs in the latest stores (not common to all).
    std::size_t platform_exclusive_count = 4;
  };

  CaUniverse() : CaUniverse(Options{}) {}
  explicit CaUniverse(Options opts);

  /// Process-wide shared universe with default options (built once; CA key
  /// generation is the expensive part).
  static const CaUniverse& standard();

  [[nodiscard]] const Options& options() const { return opts_; }

  [[nodiscard]] const std::vector<PlatformStoreHistory>& histories() const {
    return histories_;
  }
  [[nodiscard]] const std::vector<DistrustRecord>& distrust_records() const {
    return distrust_;
  }

  /// All CA names in creation order.
  [[nodiscard]] std::vector<std::string> all_ca_names() const;

  /// §4.2 "Common CA certificates" (unexpired ∩ all latest stores).
  [[nodiscard]] const std::vector<std::string>& common_ca_names() const {
    return common_;
  }
  /// §4.2 "Deprecated CA certificates" (removed before expiry, unexpired).
  [[nodiscard]] const std::vector<std::string>& deprecated_ca_names() const {
    return deprecated_;
  }

  [[nodiscard]] const CertificateAuthority& authority(
      const std::string& ca_name) const;
  [[nodiscard]] const CertificateAuthority* find(
      const std::string& ca_name) const;

  [[nodiscard]] bool is_distrusted(const std::string& ca_name) const;
  [[nodiscard]] std::optional<int> removal_year(
      const std::string& ca_name) const;

  /// Materialize the latest root store of a platform as certificates.
  [[nodiscard]] RootStore platform_latest_store(
      const std::string& platform) const;

  /// Reference "now" for expiry decisions (the paper's active experiments
  /// ran in March 2021).
  [[nodiscard]] common::SimDate reference_date() const {
    return common::SimDate{2021, 3, 1};
  }

 private:
  void add_ca(const std::string& name, common::Rng& rng,
              x509::Validity validity);

  Options opts_;
  std::map<std::string, std::unique_ptr<CertificateAuthority>> authorities_;
  std::vector<std::string> creation_order_;
  std::vector<PlatformStoreHistory> histories_;
  std::vector<DistrustRecord> distrust_;
  std::vector<std::string> common_;
  std::vector<std::string> deprecated_;
  std::map<std::string, int> removal_years_;
};

}  // namespace iotls::pki
