#include "pki/universe.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <stdexcept>

namespace iotls::pki {

namespace {

/// Per-year counts of removed CAs, shaped to reproduce Fig 4's staleness
/// histogram (bulk removed 2018-2019, a tail back to 2013). The named
/// real-world distrust events are drawn from these allocations.
struct RemovalPlanEntry {
  int year;
  int count;
  std::vector<std::string> named;  // real incidents absorbed into the count
};

const std::vector<RemovalPlanEntry>& removal_plan() {
  static const std::vector<RemovalPlanEntry> kPlan = {
      {2013, 4, {"TurkTrust Elektronik Sertifika"}},
      {2014, 3, {}},
      {2015, 6, {"CNNIC Root"}},
      {2016, 8, {"WoSign CA Free SSL", "StartCom Certification Authority"}},
      {2017, 10, {}},
      {2018, 26, {"Visa eCommerce Root"}},
      {2019, 25, {"Certinomis - Root CA"}},
      {2020, 5, {}},
  };
  return kPlan;
}

std::string legacy_name(int year, int index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Legacy Root CA %d-%02d", year, index);
  return buf;
}

std::string common_name(std::size_t index) {
  // A handful of recognizable flavour names, then generic ones.
  static const char* kFlavour[] = {
      "GlobalSign Root CA",      "DigiCert Global Root",
      "Baltimore CyberTrust Root", "ISRG Root X1",
      "AddTrust External Root",  "VeriSign Class 3 Root",
      "Amazon Root CA 1",        "GeoTrust Global CA",
  };
  if (index < std::size(kFlavour)) return kFlavour[index];
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Trusted Root CA %03zu", index);
  return buf;
}

}  // namespace

void CaUniverse::add_ca(const std::string& name, common::Rng& rng,
                        x509::Validity validity) {
  auto dn = x509::DistinguishedName{name, name + " Trust Services", "US"};
  authorities_[name] = std::make_unique<CertificateAuthority>(
      dn, rng, validity, opts_.key_bits);
  creation_order_.push_back(name);
}

CaUniverse::CaUniverse(Options opts) : opts_(opts) {
  // All CAs draw from one sequential stream. That still caches well:
  // rsa_generate's state-keyed memoisation (crypto/cache.hpp) replays each
  // generation from the exact stream position it was first seen at, so a
  // rebuilt universe with the same seed hits on every CA in order.
  common::Rng rng = common::Rng::derive(opts_.seed, "ca-universe");

  // --- 1. Common CAs: unexpired, in every platform's latest store. ---
  std::vector<std::string> common_names;
  for (std::size_t i = 0; i < opts_.common_count; ++i) {
    const std::string name = common_name(i);
    add_ca(name, rng, x509::Validity{{2010, 1, 1}, {2035, 1, 1}});
    common_names.push_back(name);
  }

  // --- 2. Deprecated CAs: removed per the plan, unexpired. ---
  std::vector<std::pair<std::string, int>> removed;  // name -> removal year
  std::size_t budget = opts_.deprecated_count;
  for (const auto& entry : removal_plan()) {
    int remaining = entry.count;
    for (const auto& named : entry.named) {
      if (budget == 0 || remaining == 0) break;
      removed.emplace_back(named, entry.year);
      --remaining;
      --budget;
    }
    for (int i = 0; i < remaining && budget > 0; ++i, --budget) {
      removed.emplace_back(legacy_name(entry.year, i), entry.year);
    }
  }
  // If the requested count exceeds the plan, pad with 2019 removals.
  for (int i = 100; budget > 0; ++i, --budget) {
    removed.emplace_back(legacy_name(2019, i), 2019);
  }
  for (const auto& [name, year] : removed) {
    add_ca(name, rng, x509::Validity{{2005, 1, 1}, {2030, 1, 1}});
    removal_years_[name] = year;
  }

  // --- 3. Removed CAs that are *expired* by the reference date: these are
  // filtered out of the deprecated probe set (the paper probes only
  // unexpired certificates). ---
  std::vector<std::pair<std::string, int>> expired_removed;
  for (std::size_t i = 0; i < opts_.expired_removed_count; ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "Expired Legacy Root CA %02zu", i);
    const int year = 2015 + static_cast<int>(i % 4);
    expired_removed.emplace_back(buf, year);
    add_ca(buf, rng, x509::Validity{{2004, 1, 1}, {2019, 6, 1}});
    removal_years_[buf] = year;
  }

  // --- 4. Platform-exclusive CAs (latest stores differ across platforms,
  // so "common" is a strict intersection). ---
  const std::vector<std::pair<std::string, std::pair<int, int>>> platforms = {
      // name, {version count, earliest year}  (paper Table 3)
      {"Ubuntu", {9, 2012}},
      {"Android", {10, 2010}},
      {"Mozilla", {47, 2013}},
      {"Microsoft", {15, 2017}},
  };
  std::map<std::string, std::vector<std::string>> exclusives;
  for (const auto& [platform, shape] : platforms) {
    (void)shape;
    for (std::size_t i = 0; i < opts_.platform_exclusive_count; ++i) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s Exclusive Root %02zu",
                    platform.c_str(), i);
      add_ca(buf, rng, x509::Validity{{2012, 1, 1}, {2035, 1, 1}});
      exclusives[platform].push_back(buf);
    }
  }

  // --- 5. Build the versioned histories. ---
  const std::map<std::string, std::string> comments = {
      {"Ubuntu",
       "ca-certificates package, /etc/ssl/certs/ca-certificates.crt from "
       "official Docker images"},
      {"Android",
       "version-tagged commits of /platform/system/ca-certificates"},
      {"Mozilla",
       "NSS security/nss/lib/ckfw/builtins/certdata.txt commit history"},
      {"Microsoft",
       "published historical trusted root store participant lists"},
  };
  const int kFinalYear = 2020;
  for (const auto& [platform, shape] : platforms) {
    const auto [version_count, earliest_year] = shape;
    PlatformStoreHistory history;
    history.platform = platform;
    history.source_comment = comments.at(platform);
    for (int v = 0; v < version_count; ++v) {
      StoreVersion version;
      // Linear year spread from earliest to kFinalYear inclusive.
      version.year =
          earliest_year +
          (v * (kFinalYear - earliest_year)) / std::max(1, version_count - 1);
      char tag[32];
      std::snprintf(tag, sizeof(tag), "%s-v%02d", platform.c_str(), v + 1);
      version.tag = tag;

      for (const auto& name : common_names) version.ca_names.insert(name);
      for (const auto& name : exclusives[platform]) {
        version.ca_names.insert(name);
      }
      auto maybe_insert_removed = [&](const std::string& name,
                                      int removal_year) {
        // Present while the version predates the removal year, provided the
        // platform's history started before the removal.
        if (earliest_year < removal_year && version.year < removal_year) {
          version.ca_names.insert(name);
        }
      };
      for (const auto& [name, year] : removed) maybe_insert_removed(name, year);
      for (const auto& [name, year] : expired_removed) {
        maybe_insert_removed(name, year);
      }
      history.versions.push_back(std::move(version));
    }
    histories_.push_back(std::move(history));
  }

  // --- 6. Distrust records (the incidents §5.2 names). ---
  distrust_ = {
      {"TurkTrust Elektronik Sertifika", 2013, "Mozilla",
       "unauthorized certificate issued for google.com"},
      {"CNNIC Root", 2015, "Google",
       "unconstrained intermediate issued to MCS Holdings"},
      {"WoSign CA Free SSL", 2016, "Google",
       "backdated SHA-1 certificates; undisclosed StartCom acquisition"},
      {"StartCom Certification Authority", 2016, "Google",
       "undisclosed acquisition by WoSign"},
      {"Certinomis - Root CA", 2019, "Mozilla",
       "repeated failure to comply with CA guidelines"},
  };

  // --- 7. Derive the probe sets (§4.2 algorithm + expiry filter). ---
  const std::set<std::string> common_set = derive_common(histories_);
  const std::set<std::string> deprecated_set = derive_deprecated(histories_);
  const common::SimDate now = reference_date();
  for (const auto& name : creation_order_) {
    const auto& cert = authorities_.at(name)->root();
    if (!cert.tbs.validity.contains(now)) continue;  // expired → excluded
    if (common_set.count(name)) common_.push_back(name);
    if (deprecated_set.count(name)) deprecated_.push_back(name);
  }
}

const CaUniverse& CaUniverse::standard() {
  static const CaUniverse kUniverse{};
  return kUniverse;
}

std::vector<std::string> CaUniverse::all_ca_names() const {
  return creation_order_;
}

const CertificateAuthority& CaUniverse::authority(
    const std::string& ca_name) const {
  const CertificateAuthority* ca = find(ca_name);
  if (ca == nullptr) {
    throw std::out_of_range("unknown CA: " + ca_name);
  }
  return *ca;
}

const CertificateAuthority* CaUniverse::find(
    const std::string& ca_name) const {
  const auto it = authorities_.find(ca_name);
  return it == authorities_.end() ? nullptr : it->second.get();
}

bool CaUniverse::is_distrusted(const std::string& ca_name) const {
  return std::any_of(
      distrust_.begin(), distrust_.end(),
      [&](const DistrustRecord& r) { return r.ca_name == ca_name; });
}

std::optional<int> CaUniverse::removal_year(const std::string& ca_name) const {
  const auto it = removal_years_.find(ca_name);
  if (it == removal_years_.end()) return std::nullopt;
  return it->second;
}

RootStore CaUniverse::platform_latest_store(const std::string& platform) const {
  for (const auto& h : histories_) {
    if (h.platform != platform) continue;
    RootStore store;
    for (const auto& name : h.latest().ca_names) {
      store.add(authority(name).root());
    }
    return store;
  }
  throw std::out_of_range("unknown platform: " + platform);
}

}  // namespace iotls::pki
