#include "pki/spoof.hpp"

namespace iotls::pki {

x509::Certificate make_spoofed_ca(const x509::Certificate& real_root,
                                  const crypto::RsaKeyPair& attacker_keys) {
  x509::TbsCertificate tbs;
  tbs.serial = real_root.tbs.serial;       // spoofed
  tbs.issuer = real_root.tbs.issuer;       // spoofed
  tbs.subject = real_root.tbs.subject;     // spoofed
  tbs.validity = real_root.tbs.validity;
  tbs.subject_public_key = attacker_keys.pub;  // ours
  tbs.extensions = real_root.tbs.extensions;
  return x509::issue_certificate(tbs, attacker_keys.priv);
}

std::vector<x509::Certificate> forge_chain(
    const x509::Certificate& ca, const crypto::RsaPrivateKey& ca_key,
    const std::string& hostname, const crypto::RsaPublicKey& leaf_key,
    x509::Validity validity) {
  x509::TbsCertificate tbs;
  common::ByteWriter serial;
  serial.u64(0xF0F0F0F0ULL);
  tbs.serial = serial.take();
  tbs.issuer = ca.tbs.subject;
  tbs.subject = x509::DistinguishedName::cn(hostname);
  tbs.validity = validity;
  tbs.subject_public_key = leaf_key;
  tbs.extensions.basic_constraints = x509::BasicConstraints{false, {}};
  tbs.extensions.subject_alt_names.push_back(hostname);
  const x509::Certificate leaf = x509::issue_certificate(tbs, ca_key);
  return {leaf, ca};
}

x509::Certificate make_self_signed_leaf(const std::string& hostname,
                                        const crypto::RsaKeyPair& keys,
                                        x509::Validity validity) {
  x509::TbsCertificate tbs;
  common::ByteWriter serial;
  serial.u64(0xABCDABCDULL);
  tbs.serial = serial.take();
  tbs.issuer = x509::DistinguishedName::cn(hostname);
  tbs.subject = x509::DistinguishedName::cn(hostname);
  tbs.validity = validity;
  tbs.subject_public_key = keys.pub;
  tbs.extensions.basic_constraints = x509::BasicConstraints{false, {}};
  tbs.extensions.subject_alt_names.push_back(hostname);
  return x509::issue_certificate(tbs, keys.priv);
}

}  // namespace iotls::pki
