// Spoofed-certificate factory — the core of the root-store probing attack.
//
// A *spoofed CA certificate* copies a real root's Subject Name, Issuer Name
// and Serial Number but is built around a key the prober controls (§4.2).
// A client that trusts the real root will locate it by subject name and then
// fail *signature* validation (decrypt_error / bad_certificate), while a
// client that does not trust it fails with unknown_ca — the observable
// difference this library measures.
#pragma once

#include <string>

#include "crypto/rsa.hpp"
#include "x509/certificate.hpp"

namespace iotls::pki {

/// Build a self-signed CA certificate with subject/issuer/serial copied from
/// `real_root` but `attacker_keys` as its key material.
x509::Certificate make_spoofed_ca(const x509::Certificate& real_root,
                                  const crypto::RsaKeyPair& attacker_keys);

/// Forge a full chain [leaf, ca] for `hostname`, where `ca` is any
/// self-signed CA certificate whose private key we hold (a spoofed CA or an
/// arbitrary self-signed root).
std::vector<x509::Certificate> forge_chain(
    const x509::Certificate& ca, const crypto::RsaPrivateKey& ca_key,
    const std::string& hostname, const crypto::RsaPublicKey& leaf_key,
    x509::Validity validity = x509::Validity{});

/// A plain self-signed *leaf* for `hostname` — the NoValidation attack
/// payload (Table 2).
x509::Certificate make_self_signed_leaf(const std::string& hostname,
                                        const crypto::RsaKeyPair& keys,
                                        x509::Validity validity =
                                            x509::Validity{});

}  // namespace iotls::pki
