// Certificate revocation list — backs the §6 extension that lets clients
// (the Table 8 CRL/OCSP devices) actually reject revoked server
// certificates instead of merely fetching endpoints.
#pragma once

#include <set>
#include <string>

#include "x509/certificate.hpp"

namespace iotls::pki {

/// A CRL-style set of revoked certificates, keyed by (issuer, serial) —
/// exactly what RFC 5280 CRL entries identify.
class RevocationList {
 public:
  void revoke(const x509::Certificate& cert);
  void revoke(const x509::DistinguishedName& issuer,
              const common::Bytes& serial);

  [[nodiscard]] bool is_revoked(const x509::Certificate& cert) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

 private:
  static std::string key(const x509::DistinguishedName& issuer,
                         const common::Bytes& serial);
  std::set<std::string> entries_;
};

}  // namespace iotls::pki
