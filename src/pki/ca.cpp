#include "pki/ca.hpp"

namespace iotls::pki {

CertificateAuthority::CertificateAuthority(x509::DistinguishedName subject,
                                           common::Rng& seed_rng,
                                           x509::Validity validity,
                                           std::size_t key_bits)
    // rsa_generate memoises on the seed generator's state (crypto/cache.hpp),
    // so rebuilding the same CA universe — every test and per-device sandbox
    // does — reuses the keypair AND leaves seed_rng exactly where a fresh
    // generation would: the serial prefix drawn next is byte-identical.
    : keypair_(crypto::rsa_generate(seed_rng, key_bits)),
      serial_prefix_(seed_rng.next_u64()) {
  common::ByteWriter serial;
  serial.u64(serial_prefix_);
  root_ = x509::make_self_signed_root(subject, serial.take(), keypair_,
                                      validity);
}

common::Bytes CertificateAuthority::next_serial() const {
  common::ByteWriter w;
  w.u64(serial_prefix_);
  w.u64(serial_counter_++);
  return w.take();
}

x509::Certificate CertificateAuthority::issue_server_cert(
    const std::string& hostname, const crypto::RsaPublicKey& server_key,
    x509::Validity validity, const x509::CertExtensions* extra) const {
  x509::TbsCertificate tbs;
  tbs.serial = next_serial();
  tbs.issuer = root_.tbs.subject;
  tbs.subject = x509::DistinguishedName::cn(hostname);
  tbs.validity = validity;
  tbs.subject_public_key = server_key;
  if (extra != nullptr) tbs.extensions = *extra;
  tbs.extensions.basic_constraints = x509::BasicConstraints{false, {}};
  if (tbs.extensions.subject_alt_names.empty()) {
    tbs.extensions.subject_alt_names.push_back(hostname);
  }
  tbs.extensions.key_usage = x509::KeyUsage{
      .digital_signature = true,
      .key_encipherment = true,
      .key_cert_sign = false,
      .crl_sign = false,
  };
  return x509::issue_certificate(tbs, keypair_.priv);
}

x509::Certificate CertificateAuthority::issue_intermediate(
    const x509::DistinguishedName& subject,
    const crypto::RsaPublicKey& intermediate_key,
    x509::Validity validity) const {
  x509::TbsCertificate tbs;
  tbs.serial = next_serial();
  tbs.issuer = root_.tbs.subject;
  tbs.subject = subject;
  tbs.validity = validity;
  tbs.subject_public_key = intermediate_key;
  tbs.extensions.basic_constraints = x509::BasicConstraints{true, 0};
  tbs.extensions.key_usage = x509::KeyUsage{
      .digital_signature = true,
      .key_encipherment = false,
      .key_cert_sign = true,
      .crl_sign = true,
  };
  return x509::issue_certificate(tbs, keypair_.priv);
}

}  // namespace iotls::pki
