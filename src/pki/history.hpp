// Versioned platform root-store histories (the paper's Table 3 sources) and
// the §4.2 derivation of the two probe sets:
//
//   * Common CA certificates — unexpired certs present in the *latest*
//     version of every platform store.
//   * Deprecated CA certificates — certs present in the *earliest* version
//     of some store, removed in a successor version, still unexpired, and
//     not present in any store's latest version.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/simtime.hpp"

namespace iotls::pki {

/// Why a CA left the ecosystem. The paper distinguishes administrative
/// removals (key rotation) from explicit distrust (WoSign, TurkTrust, ...).
enum class RemovalReason {
  Administrative,
  Distrusted,
};

struct DistrustRecord {
  std::string ca_name;
  int year = 0;                 // year of distrust action
  std::string platform;         // who acted ("Mozilla", "Google", ...)
  std::string incident;         // short description
};

/// One tagged version of a platform's root store; membership is by CA name
/// (the universe maps names to actual certificates).
struct StoreVersion {
  std::string tag;
  int year = 0;
  std::set<std::string> ca_names;
};

struct PlatformStoreHistory {
  std::string platform;           // "Ubuntu", "Android", "Mozilla", "Microsoft"
  std::string source_comment;     // Table 3 "Comments" column
  std::vector<StoreVersion> versions;  // oldest first

  [[nodiscard]] const StoreVersion& earliest() const;
  [[nodiscard]] const StoreVersion& latest() const;

  /// Year a CA was removed from this platform (first version where a
  /// previously-present name disappears); nullopt if never removed.
  [[nodiscard]] std::optional<int> removal_year(const std::string& ca) const;
};

/// CA names present in the latest version of every history.
std::set<std::string> derive_common(
    const std::vector<PlatformStoreHistory>& histories);

/// CA names removed-before-expiry per the paper's §4.2 definition.
std::set<std::string> derive_deprecated(
    const std::vector<PlatformStoreHistory>& histories);

/// Latest removal year across platforms (Fig 4 uses the latest if a cert
/// was removed from multiple stores); nullopt if never removed anywhere.
std::optional<int> latest_removal_year(
    const std::vector<PlatformStoreHistory>& histories,
    const std::string& ca);

}  // namespace iotls::pki
