// Amazon-family devices: Echo Plus, Echo Dot, Echo Dot 3, Echo Spot,
// Fire TV, Amazon Cloudcam.
//
// Paper findings encoded here:
//   Table 5 — all (except Dot 3) fall back to SSL 3.0 on incomplete
//             handshakes; per-device susceptible/total destination counts.
//   Table 6 — all accept TLS 1.0/1.1 (via the android-sdk instance).
//   Table 7 — one destination per device (except Dot 3) skips hostname
//             validation; bearer tokens are exposed there.
//   Table 8 — Fire TV, Echo Spot, Echo Dot support OCSP stapling.
//   Table 9 — Echo Plus/Dot/Dot 3 root stores (98%/98%/90% common,
//             18%/19%/27% deprecated). Fire TV and Echo Spot are NOT
//             probeable: their boot-time instance sends no alerts.
//   Fig 5   — the family shares "amazon-main" (== android-sdk) and
//             "amazon-legacy"; Echo Dot 3 overlaps only via the OTA client.
#include "devices/catalog.hpp"

namespace iotls::devices::detail {

namespace t = iotls::tls;

namespace {

/// Deprecated-set sampling fraction hitting `target_fraction` inclusion in
/// expectation, accounting for `forced` always-included CAs out of 87.
tls::ClientConfig amazon_ssl3_fallback() {
  // Table 5: "Falls back to using SSL 3.0".
  t::ClientConfig cfg = family_config("amazon-main");
  cfg.versions = {t::ProtocolVersion::Ssl3_0};
  cfg.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA,
                       t::TLS_RSA_WITH_3DES_EDE_CBC_SHA,
                       t::TLS_RSA_WITH_RC4_128_SHA};
  return cfg;
}

/// Shared boot-time configuration for Fire TV / Echo Spot: a GnuTLS-style
/// stack that drops failed connections silently — which is why those two
/// devices are absent from Table 9 despite being Amazon devices.
tls::ClientConfig amazon_boot_config() {
  t::ClientConfig cfg;
  cfg.versions = {t::ProtocolVersion::Tls1_2};
  cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                       t::TLS_RSA_WITH_AES_128_GCM_SHA256};
  cfg.library = t::TlsLibrary::GnuTls;
  return cfg;
}

tls::ClientConfig amazon_ota_plain() {
  t::ClientConfig cfg = family_config("amazon-ota");
  cfg.request_ocsp_staple = false;
  return cfg;
}

FallbackSpec amazon_fallback() {
  FallbackSpec fb;
  fb.on_incomplete_handshake = true;
  fb.on_failed_handshake = false;
  fb.behavior = "Falls back to using SSL 3.0";
  fb.fallback_config = amazon_ssl3_fallback();
  return fb;
}

DestinationSpec named_dest(std::string hostname, std::string instance,
                           bool susceptible, std::string payload = "",
                           bool intermittent = false) {
  DestinationSpec d;
  d.hostname = std::move(hostname);
  d.instance_id = std::move(instance);
  d.downgrade_susceptible = susceptible;
  d.sensitive_payload = std::move(payload);
  d.intermittent = intermittent;
  return d;
}

}  // namespace

std::vector<DeviceProfile> build_amazon_devices() {
  std::vector<DeviceProfile> out;

  const TlsInstanceSpec main_instance{"amazon-main",
                                      family_config("amazon-main")};
  const TlsInstanceSpec legacy_instance{"amazon-legacy",
                                        family_config("amazon-legacy")};
  const TlsInstanceSpec ota_instance{"amazon-ota",
                                     family_config("amazon-ota")};
  const TlsInstanceSpec ota_plain_instance{"amazon-ota-plain",
                                           amazon_ota_plain()};
  const TlsInstanceSpec boot_instance{"amazon-boot", amazon_boot_config()};

  // ---------------- Amazon Echo Plus ----------------
  {
    DeviceProfile d;
    d.name = "Amazon Echo Plus";
    d.category = "Audio";
    d.instances = {main_instance, legacy_instance, ota_plain_instance};
    // Table 7: 1/8 destinations vulnerable; Table 5: 6/7 downgrade (the OTA
    // destination only shows up after a successful login — intermittent).
    d.destinations = make_destinations("echo.amazon-sim.com", 6,
                                       "amazon-main", /*susceptible=*/6);
    d.destinations.push_back(named_dest("device-auth.amazon-sim.com",
                                        "amazon-legacy", false,
                                        "Authorization: Bearer echoplus-token"));
    d.destinations.back().traffic_weight = 0.03;  // rare auth flow
    d.destinations.push_back(named_dest("ota.amazon-sim.com",
                                        "amazon-ota-plain", false, "",
                                        /*intermittent=*/true));
    d.fallback = amazon_fallback();
    d.root_store = RootStoreSpec{
        .common_fraction = 0.98,
        .deprecated_fraction = 0.18,
        .force_include = {"WoSign CA Free SSL", "Certinomis - Root CA"},
        .inconclusive_common = 1.0 - 105.0 / 122.0,
        .inconclusive_deprecated = 1.0 - 72.0 / 87.0,
    };
    d.monthly_connections_per_destination = 5200;
    out.push_back(std::move(d));
  }

  // ---------------- Amazon Echo Dot ----------------
  {
    DeviceProfile d;
    d.name = "Amazon Echo Dot";
    d.category = "Audio";
    d.instances = {main_instance, legacy_instance, ota_instance};
    // Table 5: 7/9 downgrade; Table 7: 1/9 vulnerable.
    d.destinations = make_destinations("echo.amazon-sim.com", 7,
                                       "amazon-main", /*susceptible=*/7);
    d.destinations.push_back(named_dest("device-auth.amazon-sim.com",
                                        "amazon-legacy", false,
                                        "Authorization: Bearer echodot-token"));
    d.destinations.back().traffic_weight = 0.03;  // rare auth flow
    d.destinations.push_back(
        named_dest("ota.amazon-sim.com", "amazon-ota", false));
    d.fallback = amazon_fallback();
    d.revocation.ocsp_stapling = true;  // Table 8
    d.root_store = RootStoreSpec{
        .common_fraction = 0.98,
        .deprecated_fraction = 0.19,
        .force_include = {"WoSign CA Free SSL", "Certinomis - Root CA"},
        .inconclusive_common = 1.0 - 119.0 / 122.0,
        .inconclusive_deprecated = 1.0 - 72.0 / 87.0,
    };
    d.monthly_connections_per_destination = 5300;
    out.push_back(std::move(d));
  }

  // ---------------- Amazon Echo Dot 3 ----------------
  {
    DeviceProfile d;
    d.name = "Amazon Echo Dot 3";
    d.category = "Audio";
    // Distinct main stack (§5.3: smallest fingerprint overlap with the
    // family; not susceptible to the downgrade, and — unlike the rest of
    // the family — absent from Table 6's old-version list).
    t::ClientConfig dot3 = family_config("amazon-main");
    dot3.versions = {t::ProtocolVersion::Tls1_2};
    dot3.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                          t::TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305,
                          t::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
                          t::TLS_RSA_WITH_AES_128_GCM_SHA256};
    dot3.session_ticket = true;
    d.instances = {TlsInstanceSpec{"amazon-dot3", dot3}, ota_plain_instance};
    d.destinations = make_destinations("echo.amazon-sim.com", 6,
                                       "amazon-dot3");
    d.destinations.push_back(
        named_dest("ota.amazon-sim.com", "amazon-ota-plain", false));
    // No fallback (Table 5), no interception vulnerability (Table 7).
    d.root_store = RootStoreSpec{
        .common_fraction = 0.90,
        .deprecated_fraction = 0.27,
        .force_include = {"WoSign CA Free SSL", "Certinomis - Root CA"},
        .inconclusive_common = 1.0 - 96.0 / 122.0,
        .inconclusive_deprecated = 1.0 - 72.0 / 87.0,
    };
    // Released late 2018: joins the passive data partway through.
    d.passive_start_offset = 10;
    d.monthly_connections_per_destination = 5600;
    out.push_back(std::move(d));
  }

  // ---------------- Amazon Echo Spot ----------------
  {
    DeviceProfile d;
    d.name = "Amazon Echo Spot";
    d.category = "Audio";
    d.instances = {boot_instance, main_instance, legacy_instance,
                   ota_instance};
    // Table 7: 1/17; Table 5: 11/15 (2 intermittent destinations).
    d.destinations.push_back(
        named_dest("boot.amazon-sim.com", "amazon-boot", false));
    {
      auto bulk = make_destinations("echospot.amazon-sim.com", 12,
                                    "amazon-main", /*susceptible=*/11);
      d.destinations.insert(d.destinations.end(), bulk.begin(), bulk.end());
    }
    d.destinations.push_back(named_dest("device-auth.amazon-sim.com",
                                        "amazon-legacy", false,
                                        "Authorization: Bearer echospot-token"));
    d.destinations.back().traffic_weight = 0.03;  // rare auth flow
    d.destinations.push_back(
        named_dest("ota.amazon-sim.com", "amazon-ota", false));
    d.destinations.push_back(named_dest("video.amazon-sim.com",
                                        "amazon-main", false, "",
                                        /*intermittent=*/true));
    d.destinations.push_back(named_dest("music.amazon-sim.com",
                                        "amazon-main", false, "",
                                        /*intermittent=*/true));
    d.fallback = amazon_fallback();
    d.revocation.ocsp_stapling = true;  // Table 8
    // Boot instance sends no alerts → not probeable (absent from Table 9).
    d.root_store = RootStoreSpec{
        .common_fraction = 0.97,
        .deprecated_fraction = 0.18,
        .force_include = {"WoSign CA Free SSL", "Certinomis - Root CA"},
    };
    d.monthly_connections_per_destination = 3900;
    out.push_back(std::move(d));
  }

  // ---------------- Amazon Fire TV ----------------
  {
    DeviceProfile d;
    d.name = "Fire TV";
    d.category = "TV";
    d.instances = {boot_instance, main_instance, legacy_instance,
                   ota_instance};
    d.destinations.push_back(
        named_dest("boot.amazon-sim.com", "amazon-boot", false));
    {
      // Table 5/7: 13/21 downgrade, 1/21 vulnerable.
      auto bulk = make_destinations("firetv.amazon-sim.com", 16,
                                    "amazon-main", /*susceptible=*/13);
      d.destinations.insert(d.destinations.end(), bulk.begin(), bulk.end());
    }
    d.destinations.push_back(named_dest("device-auth.amazon-sim.com",
                                        "amazon-legacy", false,
                                        "Authorization: Bearer firetv-token"));
    d.destinations.back().traffic_weight = 0.03;  // rare auth flow
    d.destinations.push_back(
        named_dest("ota.amazon-sim.com", "amazon-ota", false));
    {
      DestinationSpec ads = named_dest("ads.tracker-sim.net", "amazon-main",
                                       false);
      ads.first_party = false;
      d.destinations.push_back(ads);
      DestinationSpec metrics = named_dest("metrics.tracker-sim.net",
                                           "amazon-main", false);
      metrics.first_party = false;
      d.destinations.push_back(metrics);
    }
    d.fallback = amazon_fallback();
    d.revocation.ocsp_stapling = true;  // Table 8
    d.monthly_connections_per_destination = 6200;
    d.root_store = RootStoreSpec{
        .common_fraction = 0.97,
        .deprecated_fraction = 0.20,
        .force_include = {"WoSign CA Free SSL", "Certinomis - Root CA"},
    };
    out.push_back(std::move(d));
  }

  // ---------------- Amazon Cloudcam (passive only) ----------------
  {
    DeviceProfile d;
    d.name = "Amazon Cloudcam";
    d.category = "Cameras";
    d.active = false;
    d.instances = {main_instance, legacy_instance, ota_plain_instance};
    d.destinations = make_destinations("cloudcam.amazon-sim.com", 3,
                                       "amazon-main");
    d.destinations.push_back(
        named_dest("ota.amazon-sim.com", "amazon-ota-plain", false));
    d.destinations.push_back(named_dest("device-auth.amazon-sim.com",
                                        "amazon-legacy", false));
    d.destinations.back().traffic_weight = 0.03;
    // Lost manufacturer support during the study (§4.1).
    d.passive_end_offset = 20;
    d.monthly_connections_per_destination = 2400;
    out.push_back(std::move(d));
  }

  return out;
}

}  // namespace iotls::devices::detail
