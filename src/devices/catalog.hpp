// The 40-device testbed catalogue (Table 1), with every per-device
// behaviour parameterised from the paper's findings:
//   Table 5  — downgrade-on-failure devices and susceptible destinations
//   Table 6  — devices accepting TLS 1.0/1.1
//   Table 7  — interception-vulnerable devices (per-destination)
//   Table 8  — revocation-checking support
//   Table 9  — root-store composition of the 8 probeable devices
//   Figs 1-3 — firmware-update timeline / longitudinal transitions
//   Fig 5    — shared TLS instances within and across vendors
#pragma once

#include <vector>

#include "devices/profile.hpp"

namespace iotls::devices {

/// All 40 devices, stable order (grouped by Table 1 category).
const std::vector<DeviceProfile>& device_catalog();

/// The 32 devices used in active experiments.
std::vector<const DeviceProfile*> active_devices();

/// The passive-experiment devices (all 40).
std::vector<const DeviceProfile*> passive_devices();

/// nullptr if unknown.
const DeviceProfile* find_device(const std::string& name);

/// Shared *TLS instance family* configurations. Devices embedding the same
/// library+configuration reference the same family, which is what makes
/// their fingerprints collide (Fig 5). Known families:
///   "amazon-main"     — android-sdk derivative used across Echo/Fire TV
///   "amazon-legacy"   — the hostname-check-skipping instance (Table 7)
///   "amazon-ota"      — OTA-update client shared by all Amazon devices
///   "openssl-iot"     — stock OpenSSL config (six devices, Fig 5)
///   "mbedtls-embedded"— MbedTLS config for low-end devices
///   "apple"           — Apple Secure Transport stack
///   "microsoft"       — Microsoft SDK stack (Harman Invoke)
///   "samsung-tizen"   — Samsung appliance stack
///   "google-home"     — Google Home Mini stack
tls::ClientConfig family_config(const std::string& family);

}  // namespace iotls::devices

// Internal: per-category builders (one translation unit each).
namespace iotls::devices::detail {
std::vector<DeviceProfile> build_amazon_devices();
std::vector<DeviceProfile> build_apple_google_devices();
std::vector<DeviceProfile> build_camera_hub_devices();
std::vector<DeviceProfile> build_home_tv_appliance_devices();

/// Generate `count` destination specs "svc00.domain" .. with the first
/// `susceptible` flagged downgrade-susceptible and the last `intermittent`
/// flagged as not always present.
std::vector<DestinationSpec> make_destinations(
    const std::string& domain, int count, const std::string& instance_id,
    int susceptible = 0, int intermittent = 0);
}  // namespace iotls::devices::detail
