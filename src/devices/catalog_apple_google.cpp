// Apple, Google, and Microsoft (Harman Invoke) devices.
//
// Paper findings encoded here:
//   Table 5 — Apple HomePod falls back to TLS 1.0 (7/9 destinations);
//             Google Home Mini falls back to 3DES + SHA-1 (5/5).
//   Table 6 — Google Home Mini accepts TLS 1.0/1.1; Apple devices do not.
//   Table 8 — OCSP: Apple TV, HomePod; stapling: HomePod, Apple TV,
//             Harman Invoke, Google Home Mini.
//   Table 9 — Google Home Mini (100%/6%) and Harman Invoke (82%/59%)
//             root stores; Apple devices are not probeable (Secure
//             Transport sends no alerts, Table 4).
//   Figs 1-3 — Apple TV & Google Home Mini adopt TLS 1.3 in 5/2019;
//             Apple TV increases weak-cipher support in 10/2018.
//   Fig 5   — Apple cluster; Invoke ↔ microsoft-sdk; Invoke's probe path
//             shares the stock OpenSSL fingerprint.
#include "devices/catalog.hpp"

namespace iotls::devices::detail {

namespace t = iotls::tls;

namespace {

using PV = t::ProtocolVersion;

DestinationSpec named_dest(std::string hostname, std::string instance,
                           bool susceptible, std::string payload = "") {
  DestinationSpec d;
  d.hostname = std::move(hostname);
  d.instance_id = std::move(instance);
  d.downgrade_susceptible = susceptible;
  d.sensitive_payload = std::move(payload);
  return d;
}

tls::ClientConfig apple_2018_config() {
  // Before the 5/2019 update: TLS 1.2 only, weak ciphers added 10/2018.
  t::ClientConfig cfg = family_config("apple");
  cfg.versions = {PV::Tls1_2};
  cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
                       t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                       t::TLS_RSA_WITH_AES_128_GCM_SHA256};
  return cfg;
}

tls::ClientConfig apple_weakened_config() {
  // Fig 2: Apple TV *increased* weak-cipher support in 10/2018.
  t::ClientConfig cfg = apple_2018_config();
  cfg.cipher_suites.push_back(t::TLS_RSA_WITH_3DES_EDE_CBC_SHA);
  cfg.cipher_suites.push_back(t::TLS_RSA_WITH_RC4_128_SHA);
  return cfg;
}

tls::ClientConfig apple_modern_config() {
  // After 5/2019: the shared Secure Transport stack advertising TLS 1.3.
  t::ClientConfig cfg = family_config("apple");
  cfg.cipher_suites.push_back(t::TLS_RSA_WITH_3DES_EDE_CBC_SHA);
  return cfg;
}

}  // namespace

std::vector<DeviceProfile> build_apple_google_devices() {
  std::vector<DeviceProfile> out;

  // ---------------- Apple TV ----------------
  {
    DeviceProfile d;
    d.name = "Apple TV";
    d.category = "TV";
    d.instances = {TlsInstanceSpec{"apple-main", apple_2018_config()}};
    d.destinations = make_destinations("appletv.apple-sim.com", 5,
                                       "apple-main");
    {
      DestinationSpec tracker =
          named_dest("metrics.tracker-sim.net", "apple-main", false);
      tracker.first_party = false;
      d.destinations.push_back(tracker);
    }
    d.updates.push_back(UpdateEvent{common::Month{2018, 10}, "apple-main",
                                    apple_weakened_config(),
                                    "adds 3DES and RC4 ciphersuites"});
    d.updates.push_back(UpdateEvent{common::Month{2019, 5}, "apple-main",
                                    apple_modern_config(),
                                    "adopts TLS 1.3"});
    d.revocation.ocsp = true;           // Table 8
    d.revocation.ocsp_stapling = true;  // Table 8
    // Secure Transport sends no alerts → not probeable (Table 4).
    d.root_store = RootStoreSpec{
        .common_fraction = 1.0,
        .deprecated_fraction = 0.10,
        .force_include = {"WoSign CA Free SSL"},
    };
    d.monthly_connections_per_destination = 9200;
    out.push_back(std::move(d));
  }

  // ---------------- Apple HomePod ----------------
  {
    DeviceProfile d;
    d.name = "Apple HomePod";
    d.category = "Audio";
    d.instances = {TlsInstanceSpec{"apple-main", apple_modern_config()}};
    // Table 5: 7/9 destinations downgrade to TLS 1.0.
    d.destinations = make_destinations("homepod.apple-sim.com", 9,
                                       "apple-main", /*susceptible=*/7);
    FallbackSpec fb;
    fb.on_incomplete_handshake = true;
    fb.behavior = "Falls back to using TLS 1.0";
    fb.fallback_config = apple_modern_config();
    fb.fallback_config.versions = {PV::Tls1_0};
    fb.fallback_config.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA,
                                        t::TLS_RSA_WITH_AES_256_CBC_SHA,
                                        t::TLS_RSA_WITH_3DES_EDE_CBC_SHA};
    d.fallback = fb;
    d.revocation.ocsp = true;           // Table 8
    d.revocation.ocsp_stapling = true;  // Table 8
    d.root_store = RootStoreSpec{
        .common_fraction = 1.0,
        .deprecated_fraction = 0.10,
        .force_include = {"WoSign CA Free SSL"},
    };
    // HomePod shipped February 2018 (§4.1 ≥6 months of traffic).
    d.passive_start_offset = 2;
    d.monthly_connections_per_destination = 7600;
    out.push_back(std::move(d));
  }

  // ---------------- Google Home Mini ----------------
  {
    DeviceProfile d;
    d.name = "Google Home Mini";
    d.category = "Audio";
    tls::ClientConfig base = family_config("google-home");
    base.cipher_suites.push_back(t::TLS_RSA_WITH_3DES_EDE_CBC_SHA);
    d.instances = {TlsInstanceSpec{"google-main", base}};
    // Table 5: downgrades on *all* its destinations (5/5).
    d.destinations = make_destinations("home.google-sim.com", 5,
                                       "google-main", /*susceptible=*/5);

    tls::ClientConfig tls13 = base;
    tls13.versions.push_back(PV::Tls1_3);
    tls13.cipher_suites.insert(tls13.cipher_suites.begin(),
                               t::TLS_AES_128_GCM_SHA256);
    d.updates.push_back(UpdateEvent{common::Month{2019, 5}, "google-main",
                                    tls13, "adopts TLS 1.3"});

    FallbackSpec fb;
    fb.on_incomplete_handshake = true;
    fb.behavior =
        "Falls back to supporting a weaker ciphersuite and signature "
        "algorithm (TLS_RSA_WITH_3DES_EDE_CBC_SHA and RSA_PKCS1_SHA1)";
    fb.fallback_config = base;
    fb.fallback_config.cipher_suites = {t::TLS_RSA_WITH_3DES_EDE_CBC_SHA};
    fb.fallback_config.signature_algorithms = {
        t::SignatureScheme::RsaPkcs1Sha1};
    d.fallback = fb;

    d.revocation.ocsp_stapling = true;  // Table 8
    // Table 9 row 1: 100% common (119/119), 6% deprecated (4/71).
    d.root_store = RootStoreSpec{
        .common_fraction = 1.0,
        .deprecated_fraction = 0.045,
        .force_include = {"WoSign CA Free SSL", "Certinomis - Root CA"},
        .prefer_recent_deprecated = true,  // Fig 4: GHM's store skews recent
        .inconclusive_common = 1.0 - 119.0 / 122.0,
        .inconclusive_deprecated = 1.0 - 71.0 / 87.0,
    };
    d.monthly_connections_per_destination = 9800;
    out.push_back(std::move(d));
  }

  // ---------------- Harman Invoke ----------------
  {
    DeviceProfile d;
    d.name = "Harman Invoke";
    d.category = "Audio";
    // Probe path (first destination) is the stock-OpenSSL updater — which
    // is exactly why probing works on this device (§5.3). Its firmware
    // disables pre-1.2 versions (Invoke is absent from Table 6); the
    // fingerprint is unchanged (versions below the 1.2 maximum are not
    // visible in a pre-1.3 ClientHello).
    t::ClientConfig openssl_cfg = family_config("openssl-iot");
    openssl_cfg.versions = {PV::Tls1_2};
    t::ClientConfig microsoft_cfg = family_config("microsoft");
    microsoft_cfg.versions = {PV::Tls1_2};
    d.instances = {TlsInstanceSpec{"openssl-iot", openssl_cfg},
                   TlsInstanceSpec{"microsoft-voice", microsoft_cfg}};
    d.destinations.push_back(
        named_dest("updates.harman-sim.com", "openssl-iot", false));
    {
      auto voice = make_destinations("cortana.microsoft-sim.com", 3,
                                     "microsoft-voice");
      d.destinations.insert(d.destinations.end(), voice.begin(), voice.end());
    }
    d.revocation.ocsp_stapling = true;  // Table 8
    // Table 9 row 8: 82% common (67/82), 59% deprecated (41/70).
    d.root_store = RootStoreSpec{
        .common_fraction = 0.82,
        .deprecated_fraction = 0.59,
        .force_include = {"WoSign CA Free SSL", "CNNIC Root",
                          "Certinomis - Root CA"},
        .inconclusive_common = 1.0 - 82.0 / 122.0,
        .inconclusive_deprecated = 1.0 - 70.0 / 87.0,
    };
    // Cortana support ended during the study (§4.1).
    d.passive_end_offset = 22;
    d.monthly_connections_per_destination = 1900;
    out.push_back(std::move(d));
  }

  return out;
}

}  // namespace iotls::devices::detail
