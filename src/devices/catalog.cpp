#include "devices/catalog.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "fingerprint/database.hpp"

namespace iotls::devices {

namespace t = iotls::tls;

tls::ClientConfig family_config(const std::string& family) {
  using PV = t::ProtocolVersion;

  if (family == "amazon-main") {
    // The android-sdk derivative Fire OS / Echo firmware share — identical
    // to the reference database's android-sdk entry, which is why Fire TV's
    // dominant fingerprint matches it (§5.3).
    return fingerprint::reference_config("android-sdk");
  }
  if (family == "amazon-legacy") {
    // The instance behind Table 7's WrongHostname rows: chain validated,
    // hostname not. Its maximum is TLS 1.0 — one reason the Amazon family
    // advertises *multiple maximum versions* (§5.1).
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_0};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
                         t::TLS_RSA_WITH_AES_128_CBC_SHA,
                         t::TLS_RSA_WITH_3DES_EDE_CBC_SHA,
                         t::TLS_RSA_WITH_RC4_128_SHA};
    cfg.library = t::TlsLibrary::OpenSsl;
    cfg.verify_policy = x509::VerifyPolicy::no_hostname();
    return cfg;
  }
  if (family == "amazon-ota") {
    // Strict OTA updater shared by every Amazon device including Echo Dot 3
    // (its only fingerprint overlap with the rest of the family).
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
                         t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256};
    cfg.request_ocsp_staple = true;
    cfg.library = t::TlsLibrary::OpenSsl;
    return cfg;
  }
  if (family == "openssl-iot") {
    return fingerprint::reference_config("openssl");
  }
  if (family == "mbedtls-embedded") {
    return fingerprint::reference_config("mbedtls-client");
  }
  if (family == "apple") {
    return fingerprint::reference_config("apple-trustd");
  }
  if (family == "microsoft") {
    return fingerprint::reference_config("microsoft-sdk");
  }
  if (family == "samsung-tizen") {
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_1, PV::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_AES_256_CBC_SHA,
                         t::TLS_RSA_WITH_3DES_EDE_CBC_SHA,
                         t::TLS_RSA_WITH_RC4_128_SHA};
    cfg.library = t::TlsLibrary::Generic;
    return cfg;
  }
  if (family == "google-home") {
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_0, PV::Tls1_1, PV::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305,
                         t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
                         t::TLS_RSA_WITH_AES_128_GCM_SHA256};
    cfg.request_ocsp_staple = true;
    cfg.library = t::TlsLibrary::OpenSsl;
    return cfg;
  }
  throw std::out_of_range("unknown TLS instance family: " + family);
}

namespace detail {

std::vector<DestinationSpec> make_destinations(const std::string& domain,
                                               int count,
                                               const std::string& instance_id,
                                               int susceptible,
                                               int intermittent) {
  std::vector<DestinationSpec> out;
  for (int i = 0; i < count; ++i) {
    DestinationSpec dest;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "svc%02d.%s", i, domain.c_str());
    dest.hostname = buf;
    dest.instance_id = instance_id;
    dest.downgrade_susceptible = i < susceptible;
    dest.intermittent = i >= count - intermittent;
    out.push_back(std::move(dest));
  }
  return out;
}

}  // namespace detail

const std::vector<DeviceProfile>& device_catalog() {
  static const std::vector<DeviceProfile> kCatalog = [] {
    std::vector<DeviceProfile> all;
    auto append = [&all](std::vector<DeviceProfile> group) {
      for (auto& d : group) all.push_back(std::move(d));
    };
    append(detail::build_camera_hub_devices());
    append(detail::build_home_tv_appliance_devices());
    append(detail::build_amazon_devices());
    append(detail::build_apple_google_devices());

    // Assign stable per-device seeds.
    for (std::size_t i = 0; i < all.size(); ++i) {
      all[i].seed = common::fnv1a64(all[i].name);
    }
    return all;
  }();
  return kCatalog;
}

std::vector<const DeviceProfile*> active_devices() {
  std::vector<const DeviceProfile*> out;
  for (const auto& d : device_catalog()) {
    if (d.active) out.push_back(&d);
  }
  return out;
}

std::vector<const DeviceProfile*> passive_devices() {
  std::vector<const DeviceProfile*> out;
  for (const auto& d : device_catalog()) out.push_back(&d);
  return out;
}

const DeviceProfile* find_device(const std::string& name) {
  const auto& catalog = device_catalog();
  const auto it = std::find_if(
      catalog.begin(), catalog.end(),
      [&](const DeviceProfile& d) { return d.name == name; });
  return it == catalog.end() ? nullptr : &*it;
}

}  // namespace iotls::devices
