#include "devices/profile.hpp"

#include <algorithm>
#include <stdexcept>

namespace iotls::devices {

const TlsInstanceSpec& DeviceProfile::instance(const std::string& id) const {
  const auto it = std::find_if(
      instances.begin(), instances.end(),
      [&](const TlsInstanceSpec& spec) { return spec.id == id; });
  if (it == instances.end()) {
    throw std::out_of_range(name + ": unknown TLS instance " + id);
  }
  return *it;
}

const TlsInstanceSpec& DeviceProfile::instance_for_destination(
    const DestinationSpec& dest) const {
  return instance(dest.instance_id);
}

tls::ClientConfig DeviceProfile::config_at(const std::string& instance_id,
                                           common::Month when) const {
  tls::ClientConfig config = instance(instance_id).config;
  for (const auto& update : updates) {
    if (update.instance_id == instance_id && update.when <= when) {
      config = update.new_config;
    }
  }
  return config;
}

bool DeviceProfile::generates_traffic_in(common::Month when) const {
  const int offset = when.diff(common::kStudyStart);
  return offset >= passive_start_offset && offset <= passive_end_offset;
}

pki::RootStore DeviceProfile::build_root_store(
    const pki::CaUniverse& universe) const {
  common::Rng rng = common::Rng::derive(seed, "root-store:" + name);
  pki::RootStore store;

  for (const auto& ca_name : root_store.force_include) {
    store.add(universe.authority(ca_name).root());
  }

  // Exact-count selection (not Bernoulli sampling): the Table 9 inclusion
  // fractions are device properties, not random variables. Forced entries
  // that belong to a set count toward its quota.
  auto take = [&](const std::vector<std::string>& candidates,
                  double fraction, bool prefer_recent) {
    const auto target = static_cast<std::size_t>(
        fraction * static_cast<double>(candidates.size()) + 0.5);
    std::size_t have = 0;
    for (const auto& ca_name : candidates) {
      if (store.contains(universe.authority(ca_name).root().tbs.subject)) {
        ++have;
      }
    }
    auto pool = candidates;
    rng.shuffle(pool);
    if (prefer_recent) {
      std::stable_sort(pool.begin(), pool.end(),
                       [&](const std::string& a, const std::string& b) {
                         return universe.removal_year(a).value_or(0) >
                                universe.removal_year(b).value_or(0);
                       });
    }
    for (const auto& ca_name : pool) {
      if (have >= target) break;
      const auto& root = universe.authority(ca_name).root();
      if (store.contains(root.tbs.subject)) continue;
      store.add(root);
      ++have;
    }
  };

  take(universe.common_ca_names(), root_store.common_fraction, false);
  take(universe.deprecated_ca_names(), root_store.deprecated_fraction,
       root_store.prefer_recent_deprecated);
  return store;
}

bool DeviceProfile::any_validation() const {
  return std::any_of(instances.begin(), instances.end(),
                     [](const TlsInstanceSpec& spec) {
                       return spec.config.verify_policy.validate;
                     });
}

}  // namespace iotls::devices
