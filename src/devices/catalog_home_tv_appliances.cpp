// Home-automation devices, TVs (non-Amazon), and appliances.
//
// Paper findings encoded here:
//   Fig 1   — Wemo Plug advertises an insecure TLS version for all its
//             connections, the whole study; Samsung appliances and the LG
//             Dishwasher advertise TLS 1.2 but establish older versions
//             (their servers stop at TLS 1.1).
//   Table 5 — Roku TV collapses from 73 offered suites to just
//             TLS_RSA_WITH_RC4_128_SHA on either failure type (8/15).
//   Table 6 — TP-Link Bulb, Meross, Roku, LG TV, Smarter brewer accept
//             TLS 1.0/1.1; Samsung Fridge/Dryer accept only TLS 1.1;
//             Wemo Plug accepts TLS 1.0 but not 1.1.
//   Table 7 — Smarter brewer (1/1) and LG TV (1/2) vulnerable; LG TV leaks
//             "deviceSecret".
//   Table 8 — Samsung TV: CRL+OCSP+stapling; LG TV, Samsung Fridge: stapling.
//   Table 9 — Roku TV (91%/41%) and LG TV (93%/59%; roots deprecated as
//             early as 2013) root stores.
#include "devices/catalog.hpp"

#include "fingerprint/database.hpp"

namespace iotls::devices::detail {

namespace t = iotls::tls;

namespace {

using PV = t::ProtocolVersion;

DestinationSpec named_dest(std::string hostname, std::string instance,
                           std::string payload = "") {
  DestinationSpec d;
  d.hostname = std::move(hostname);
  d.instance_id = std::move(instance);
  d.sensitive_payload = std::move(payload);
  return d;
}

/// The Tuya/embedded stack: mbedtls-shaped ClientHello, but with WolfSSL's
/// alerting (both probe cases → bad_certificate), so these devices are not
/// probeable — only 8 devices are (Table 9).
tls::ClientConfig embedded_config() {
  t::ClientConfig cfg = family_config("mbedtls-embedded");
  cfg.library = t::TlsLibrary::WolfSsl;
  return cfg;
}

/// Roku offers 73 ciphersuites (Table 5): the full pre-1.3 catalogue plus
/// vendor-specific code points unknown to the IANA registry. NULL/ANON
/// suites are excluded — §5.1: no device ever advertised those.
std::vector<std::uint16_t> roku_73_suites() {
  std::vector<std::uint16_t> suites;
  for (const auto& info : t::all_suites()) {
    if (!info.tls13_only && !info.is_null_or_anon()) {
      suites.push_back(info.id);
    }
  }
  std::uint16_t filler = 0xFE00;
  while (suites.size() < 73) suites.push_back(filler++);
  return suites;
}

}  // namespace

std::vector<DeviceProfile> build_home_tv_appliance_devices() {
  std::vector<DeviceProfile> out;

  // ---------------- Smartlife Bulb / Smartlife Remote ----------------
  // Same vendor firmware → identical instance → shared fingerprint (Fig 5).
  for (const char* name : {"Smartlife Bulb", "Smartlife Remote"}) {
    DeviceProfile d;
    d.name = name;
    d.category = "Home Automation";
    // The vendor's OTA checker is a second stack with a TLS 1.1 maximum;
    // it only fires after a successful cloud session (intermittent), which
    // keeps these devices out of Table 6 while still contributing to the
    // §5.1 "multiple maximum versions" count.
    t::ClientConfig checker;
    checker.versions = {PV::Tls1_1};
    checker.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA};
    checker.library = t::TlsLibrary::WolfSsl;
    d.instances = {TlsInstanceSpec{"tuya-embedded", embedded_config()},
                   TlsInstanceSpec{"tuya-checker", checker}};
    d.destinations = make_destinations("tuya-sim.com", 2, "tuya-embedded");
    d.destinations.push_back(named_dest("fw.tuya-sim.com", "tuya-checker"));
    d.destinations.back().intermittent = true;
    d.destinations.back().traffic_weight = 0.04;
    d.monthly_connections_per_destination = 1400;
    out.push_back(std::move(d));
  }

  // ---------------- Meross Dooropener ----------------
  {
    DeviceProfile d;
    d.name = "Meross Dooropener";
    d.category = "Home Automation";
    t::ClientConfig cfg = embedded_config();
    cfg.versions = {PV::Tls1_0, PV::Tls1_1, PV::Tls1_2};  // Table 6
    cfg.cipher_suites.push_back(t::TLS_RSA_WITH_3DES_EDE_CBC_SHA);
    d.instances = {TlsInstanceSpec{"meross-main", cfg}};
    d.destinations = {named_dest("iot.meross-sim.com", "meross-main")};
    d.monthly_connections_per_destination = 1300;
    out.push_back(std::move(d));
  }

  // ---------------- TP-Link Bulb ----------------
  {
    DeviceProfile d;
    d.name = "TP-Link Bulb";
    d.category = "Home Automation";
    t::ClientConfig cfg = embedded_config();
    cfg.versions = {PV::Tls1_0, PV::Tls1_1, PV::Tls1_2};  // Table 6
    cfg.cipher_suites.push_back(t::TLS_RSA_WITH_3DES_EDE_CBC_SHA);
    cfg.cipher_suites.push_back(t::TLS_RSA_WITH_RC4_128_SHA);
    d.instances = {TlsInstanceSpec{"tplink-legacy", cfg}};
    d.destinations = make_destinations("tplink-sim.com", 2, "tplink-legacy");
    d.monthly_connections_per_destination = 1500;
    out.push_back(std::move(d));
  }

  // ---------------- Nest Thermostat ----------------
  {
    DeviceProfile d;
    d.name = "Nest Thermostat";
    d.category = "Home Automation";
    d.reboot_safe = false;  // §5.2 excludes it from probing
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305,
                         t::TLS_RSA_WITH_AES_128_GCM_SHA256};
    cfg.library = t::TlsLibrary::Generic;
    d.instances = {TlsInstanceSpec{"nest-main", cfg}};
    d.destinations = make_destinations("nest-sim.com", 3, "nest-main");
    d.monthly_connections_per_destination = 2800;
    out.push_back(std::move(d));
  }

  // ---------------- TP-Link Plug ----------------
  {
    DeviceProfile d;
    d.name = "TP-Link Plug";
    d.category = "Home Automation";
    // Exactly the mbedtls-client reference shape → shares that fingerprint
    // in the reference database.
    d.instances = {TlsInstanceSpec{"tplink-embedded", embedded_config()}};
    d.destinations = make_destinations("tplink-sim.com", 2,
                                       "tplink-embedded");
    d.monthly_connections_per_destination = 1500;
    out.push_back(std::move(d));
  }

  // ---------------- Wemo Plug ----------------
  {
    DeviceProfile d;
    d.name = "Wemo Plug";
    d.category = "Home Automation";
    // Fig 1: the only device advertising an insecure maximum version for
    // every connection, the entire study. Table 6: accepts 1.0, not 1.1.
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_0};
    cfg.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA,
                         t::TLS_RSA_WITH_RC4_128_SHA,
                         t::TLS_RSA_WITH_3DES_EDE_CBC_SHA};
    cfg.library = t::TlsLibrary::WolfSsl;
    d.instances = {TlsInstanceSpec{"wemo-main", cfg}};
    d.destinations = make_destinations("wemo-sim.com", 2, "wemo-main");
    d.monthly_connections_per_destination = 1900;
    out.push_back(std::move(d));
  }

  // ---------------- Samsung TV (passive only) ----------------
  {
    DeviceProfile d;
    d.name = "Samsung TV";
    d.category = "TV";
    d.active = false;
    t::ClientConfig cfg = family_config("samsung-tizen");
    cfg.request_ocsp_staple = true;
    // Legacy notification helper capped at TLS 1.1 (multiple maxima, §5.1).
    t::ClientConfig legacy_cfg;
    legacy_cfg.versions = {PV::Tls1_1};
    legacy_cfg.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA};
    legacy_cfg.library = t::TlsLibrary::Generic;
    d.instances = {TlsInstanceSpec{"samsung-tv", cfg},
                   TlsInstanceSpec{"samsung-tv-legacy", legacy_cfg}};
    d.destinations = make_destinations("tv.samsung-sim.com", 4, "samsung-tv");
    d.destinations.push_back(named_dest("notify.tv.samsung-sim.com",
                                        "samsung-tv-legacy"));
    d.destinations.back().traffic_weight = 0.04;
    {
      DestinationSpec ads = named_dest("ads.tracker-sim.net", "samsung-tv");
      ads.first_party = false;
      d.destinations.push_back(ads);
    }
    d.revocation = RevocationSpec{.crl = true, .ocsp = true,
                                  .ocsp_stapling = true};  // Table 8
    d.monthly_connections_per_destination = 4300;
    out.push_back(std::move(d));
  }

  // ---------------- LG TV ----------------
  {
    DeviceProfile d;
    d.name = "LG TV";
    d.category = "TV";
    t::ClientConfig novalidate;
    novalidate.versions = {PV::Tls1_1};  // second maximum version (§5.1)
    novalidate.cipher_suites = {t::TLS_RSA_WITH_RC4_128_SHA,
                                t::TLS_RSA_WITH_AES_128_CBC_SHA};
    novalidate.library = t::TlsLibrary::OpenSsl;
    novalidate.verify_policy = x509::VerifyPolicy::none();
    novalidate.request_ocsp_staple = true;  // Table 8 stapling evidence
    d.instances = {TlsInstanceSpec{"openssl-iot",
                                   family_config("openssl-iot")},
                   TlsInstanceSpec{"lgtv-novalidate", novalidate}};
    // First destination = probe path (stock OpenSSL). The second is the
    // Table 7 vulnerability and — with its RC4-preferring server — one of
    // the only two insecure-establishing flows in the study (Fig 2).
    d.destinations = {
        named_dest("api.lgtv-sim.com", "openssl-iot"),
        named_dest("device.lgtv-sim.com", "lgtv-novalidate",
                   "deviceSecret=LG-WEBOS-SECRET-77"),
    };
    d.destinations[1].traffic_weight = 0.04;  // rare pairing flow
    d.revocation.ocsp_stapling = true;  // Table 8
    // Table 9 row 7: 93%/59%; includes roots deprecated as early as 2013
    // (TurkTrust) — last updated 7/2019 (§5.2).
    d.root_store = RootStoreSpec{
        .common_fraction = 0.93,
        .deprecated_fraction = 0.585,
        .force_include = {"TurkTrust Elektronik Sertifika", "CNNIC Root",
                          "WoSign CA Free SSL"},
        .inconclusive_common = 1.0 - 103.0 / 122.0,
        .inconclusive_deprecated = 1.0 - 82.0 / 87.0,
    };
    d.monthly_connections_per_destination = 4800;
    out.push_back(std::move(d));
  }

  // ---------------- Roku TV ----------------
  {
    DeviceProfile d;
    d.name = "Roku TV";
    d.category = "TV";
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_0, PV::Tls1_1, PV::Tls1_2};  // Table 6
    cfg.cipher_suites = roku_73_suites();
    cfg.session_ticket = true;
    cfg.library = t::TlsLibrary::OpenSsl;  // probeable (Table 9)
    d.instances = {TlsInstanceSpec{"roku-main", cfg},
                   TlsInstanceSpec{"openssl-iot",
                                   family_config("openssl-iot")}};
    // Table 5: 8/15 destinations downgrade.
    d.destinations = make_destinations("roku-sim.com", 13, "roku-main",
                                       /*susceptible=*/8);
    d.destinations.push_back(named_dest("channels.roku-sim.com",
                                        "openssl-iot"));
    {
      DestinationSpec ads = named_dest("ads.tracker-sim.net", "roku-main");
      ads.first_party = false;
      d.destinations.push_back(ads);
    }
    FallbackSpec fb;
    fb.on_incomplete_handshake = true;
    fb.on_failed_handshake = true;  // the only device with both (Table 5)
    fb.behavior =
        "Falls back from offering 73 ciphersuites to just 1 "
        "(TLS_RSA_WITH_RC4_128_SHA)";
    fb.fallback_config = cfg;
    fb.fallback_config.cipher_suites = {t::TLS_RSA_WITH_RC4_128_SHA};
    d.fallback = fb;
    // Table 9 row 6: 91% common (96/106), 41% deprecated (33/81).
    d.root_store = RootStoreSpec{
        .common_fraction = 0.91,
        .deprecated_fraction = 0.41,
        .force_include = {"WoSign CA Free SSL", "Certinomis - Root CA"},
        .inconclusive_common = 1.0 - 106.0 / 122.0,
        .inconclusive_deprecated = 1.0 - 81.0 / 87.0,
    };
    d.monthly_connections_per_destination = 5000;
    out.push_back(std::move(d));
  }

  // ---------------- GE Microwave ----------------
  {
    DeviceProfile d;
    d.name = "GE Microwave";
    d.category = "Appliances";
    t::ClientConfig cfg = embedded_config();
    cfg.cipher_suites.push_back(t::TLS_RSA_WITH_3DES_EDE_CBC_SHA);
    d.instances = {TlsInstanceSpec{"ge-main", cfg}};
    d.destinations = {named_dest("appliance.ge-sim.com", "ge-main")};
    d.monthly_connections_per_destination = 900;
    out.push_back(std::move(d));
  }

  // ---------------- Samsung Washer (passive only) ----------------
  {
    DeviceProfile d;
    d.name = "Samsung Washer";
    d.category = "Appliances";
    d.active = false;
    t::ClientConfig washer_legacy;
    washer_legacy.versions = {PV::Tls1_1};  // multiple maxima (§5.1)
    washer_legacy.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA};
    washer_legacy.library = t::TlsLibrary::Generic;
    d.instances = {TlsInstanceSpec{"samsung-appliance",
                                   family_config("samsung-tizen")},
                   TlsInstanceSpec{"washer-legacy", washer_legacy}};
    // Fig 1: advertises TLS 1.2, establishes 1.1 — its servers stop at 1.1
    // (see testbed/cloud).
    d.destinations = make_destinations("washer.samsung-sim.com", 2,
                                       "samsung-appliance");
    d.destinations.push_back(
        named_dest("check.washer.samsung-sim.com", "washer-legacy"));
    d.destinations.back().traffic_weight = 0.04;
    d.monthly_connections_per_destination = 800;
    out.push_back(std::move(d));
  }

  // ---------------- Samsung Dryer ----------------
  {
    DeviceProfile d;
    d.name = "Samsung Dryer";
    d.category = "Appliances";
    d.reboot_safe = false;  // §5.2 excludes it from probing
    d.instances = {TlsInstanceSpec{"samsung-appliance",
                                   family_config("samsung-tizen")}};
    d.destinations = make_destinations("dryer.samsung-sim.com", 2,
                                       "samsung-appliance");
    d.monthly_connections_per_destination = 800;
    out.push_back(std::move(d));
  }

  // ---------------- Samsung Fridge ----------------
  {
    DeviceProfile d;
    d.name = "Samsung Fridge";
    d.category = "Appliances";
    d.reboot_safe = false;  // §5.2 excludes it from probing
    t::ClientConfig cfg = family_config("samsung-tizen");
    cfg.request_ocsp_staple = true;
    // The firmware updater is a separate stack with a lower maximum
    // version (multi-instance + multiple maxima, §5.1/§5.3).
    t::ClientConfig ota_cfg;
    ota_cfg.versions = {PV::Tls1_1};
    ota_cfg.cipher_suites = {t::TLS_RSA_WITH_AES_256_CBC_SHA,
                             t::TLS_RSA_WITH_AES_128_CBC_SHA};
    ota_cfg.library = t::TlsLibrary::Generic;
    d.instances = {TlsInstanceSpec{"samsung-fridge", cfg},
                   TlsInstanceSpec{"samsung-ota", ota_cfg}};
    d.destinations = make_destinations("fridge.samsung-sim.com", 3,
                                       "samsung-fridge");
    d.destinations.push_back(
        named_dest("ota.fridge.samsung-sim.com", "samsung-ota"));
    d.destinations.back().traffic_weight = 0.05;
    d.revocation.ocsp_stapling = true;  // Table 8
    d.monthly_connections_per_destination = 1100;
    out.push_back(std::move(d));
  }

  // ---------------- Smarter iKettle ----------------
  {
    DeviceProfile d;
    // Appears as "Smarter Brewer" in the paper's Tables 6-7 (the Smarter
    // brand's brewing appliance); Table 1 lists the iKettle.
    d.name = "Smarter iKettle";
    d.category = "Appliances";
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_0, PV::Tls1_1, PV::Tls1_2};  // Table 6
    cfg.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA,
                         t::TLS_RSA_WITH_RC4_128_SHA};
    cfg.library = t::TlsLibrary::WolfSsl;
    cfg.verify_policy = x509::VerifyPolicy::none();  // Table 7: 1/1
    d.instances = {TlsInstanceSpec{"smarter-main", cfg}};
    d.destinations = {named_dest("brew.smarter-sim.com", "smarter-main")};
    d.monthly_connections_per_destination = 600;
    out.push_back(std::move(d));
  }

  // ---------------- Behmor Brewer ----------------
  {
    DeviceProfile d;
    d.name = "Behmor Brewer";
    d.category = "Appliances";
    // A Go-built firmware: its ClientHello matches the golang-net-http
    // reference fingerprint (§5.3 device↔application sharing), though the
    // alerting behaviour is GnuTLS-silent.
    t::ClientConfig cfg = fingerprint::reference_config("golang-net-http");
    cfg.library = t::TlsLibrary::GnuTls;
    d.instances = {TlsInstanceSpec{"behmor-main", cfg}};
    d.destinations = {named_dest("coffee.behmor-sim.com", "behmor-main")};
    d.monthly_connections_per_destination = 600;
    out.push_back(std::move(d));
  }

  // ---------------- LG Dishwasher (passive only) ----------------
  {
    DeviceProfile d;
    d.name = "LG Dishwasher";
    d.category = "Appliances";
    d.active = false;
    t::ClientConfig cfg;
    // Advertises a 1.2 maximum but still supports 1.1 — so its 1.1-limited
    // servers pull every connection down to 1.1 (Fig 1).
    cfg.versions = {PV::Tls1_1, PV::Tls1_2};
    cfg.cipher_suites = {t::TLS_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_AES_128_CBC_SHA,
                         t::TLS_RSA_WITH_3DES_EDE_CBC_SHA};
    cfg.library = t::TlsLibrary::GnuTls;
    t::ClientConfig dish_legacy;
    dish_legacy.versions = {PV::Tls1_1};  // multiple maxima (§5.1)
    dish_legacy.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA};
    dish_legacy.library = t::TlsLibrary::GnuTls;
    d.instances = {TlsInstanceSpec{"lg-appliance", cfg},
                   TlsInstanceSpec{"dishwasher-legacy", dish_legacy}};
    // Fig 1: advertises TLS 1.2, establishes 1.1 (server-limited).
    d.destinations = make_destinations("dishwasher.lg-sim.com", 2,
                                       "lg-appliance");
    d.destinations.push_back(
        named_dest("check.dishwasher.lg-sim.com", "dishwasher-legacy"));
    d.destinations.back().traffic_weight = 0.04;
    d.monthly_connections_per_destination = 700;
    out.push_back(std::move(d));
  }

  return out;
}

}  // namespace iotls::devices::detail
