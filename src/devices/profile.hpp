// Device models.
//
// A DeviceProfile is the simulation's stand-in for a physical IoT device:
// its TLS instances (§3 treats devices as compounds of multiple TLS
// implementations), its destinations, its boot-time connection schedule, its
// firmware-update timeline, and its misbehaviours — every field is
// parameterised from a finding the paper reports (tables cited inline).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/simtime.hpp"
#include "pki/root_store.hpp"
#include "pki/universe.hpp"
#include "tls/client.hpp"

namespace iotls::devices {

/// One TLS instance: implementation + configuration → one fingerprint.
struct TlsInstanceSpec {
  std::string id;            // e.g. "amazon-main", "openssl-embedded"
  tls::ClientConfig config;
};

/// Composition of the device's trusted root store relative to the CA
/// universe, plus probe-reliability parameters (Table 9's varying
/// denominators come from probes that produce no usable traffic).
struct RootStoreSpec {
  double common_fraction = 1.0;       // P(include a common CA)
  double deprecated_fraction = 0.0;   // P(include a deprecated CA)
  /// Always included regardless of sampling (the distrusted CAs §5.2 finds
  /// on every probeable device).
  std::vector<std::string> force_include;
  /// Prefer recently-removed CAs when filling the deprecated quota — the
  /// Google Home Mini's store skews recent (Fig 4).
  bool prefer_recent_deprecated = false;
  /// Probability that a single probe attempt is inconclusive.
  double inconclusive_common = 0.0;
  double inconclusive_deprecated = 0.0;
};

struct DestinationSpec {
  std::string hostname;
  std::string instance_id;     // which TLS instance talks to it
  bool first_party = true;
  /// Table 5: whether connections to this destination downgrade on failure.
  bool downgrade_susceptible = false;
  /// Destination only appears in some experiment runs — contacted after a
  /// success response from an earlier connection (§4.2 TrafficPassthrough
  /// discussion). Reconciles the differing totals of Tables 5 and 7.
  bool intermittent = false;
  /// Relative passive-traffic volume (update checkers and similar rare
  /// flows get small weights; they still count for "advertises multiple
  /// maximum versions" without dominating the Fig 1-3 fractions).
  double traffic_weight = 1.0;
  /// Sensitive token transmitted after the handshake (§5.2 found e.g.
  /// "encrypt_key", "deviceSecret", bearer tokens); empty = nothing
  /// sensitive.
  std::string sensitive_payload;
};

/// Security downgrade on connection failure (Table 5).
struct FallbackSpec {
  bool on_incomplete_handshake = false;
  bool on_failed_handshake = false;
  std::string behavior;               // Table 5 "Behavior" column text
  tls::ClientConfig fallback_config;  // what the retry advertises
};

/// Certificate-revocation checking support (Table 8).
struct RevocationSpec {
  bool crl = false;
  bool ocsp = false;
  bool ocsp_stapling = false;
};

/// A firmware update that swaps an instance's configuration at a given
/// month of the passive study (the Fig 1-3 transitions).
struct UpdateEvent {
  common::Month when;
  std::string instance_id;
  tls::ClientConfig new_config;
  std::string description;  // e.g. "adopts TLS 1.3"
};

struct DeviceProfile {
  std::string name;
  std::string category;   // Table 1 column
  /// Participates in active experiments (Table 1 devices without '*').
  bool active = true;
  /// Suitable for the repeated reboots probing needs (§5.2 excludes
  /// washer/dryer/thermostat/fridge).
  bool reboot_safe = true;
  /// Passive-traffic coverage window, as month offsets into the study
  /// (devices broke / lost support — §4.1).
  int passive_start_offset = 0;
  int passive_end_offset = 26;

  std::vector<TlsInstanceSpec> instances;
  std::vector<DestinationSpec> destinations;
  std::optional<FallbackSpec> fallback;
  RevocationSpec revocation;
  RootStoreSpec root_store;
  std::vector<UpdateEvent> updates;

  /// Yi Camera (§5.2): disables certificate validation entirely after this
  /// many consecutive failed connections (0 = never).
  int disable_validation_after_failures = 0;

  /// Average connections per destination per month in passive data
  /// (scales the ≈17M total; see analysis/longitudinal).
  int monthly_connections_per_destination = 40;

  std::uint64_t seed = 1;

  // ---- helpers ----
  [[nodiscard]] const TlsInstanceSpec& instance(const std::string& id) const;
  [[nodiscard]] const TlsInstanceSpec& instance_for_destination(
      const DestinationSpec& dest) const;
  /// Instance configuration as of a given month, with updates applied.
  [[nodiscard]] tls::ClientConfig config_at(const std::string& instance_id,
                                            common::Month when) const;
  [[nodiscard]] bool generates_traffic_in(common::Month when) const;

  /// Materialize this device's root store from the CA universe
  /// (deterministic in the device seed).
  [[nodiscard]] pki::RootStore build_root_store(
      const pki::CaUniverse& universe) const;

  /// True if any instance validates certificates at all.
  [[nodiscard]] bool any_validation() const;
};

}  // namespace iotls::devices
