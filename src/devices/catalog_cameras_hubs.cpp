// Cameras and smart hubs.
//
// Paper findings encoded here:
//   Table 6 — Zmodo, Yi, Amcrest, Wink Hub 2, Philips Hub accept TLS 1.0/1.1.
//   Table 7 — Zmodo (6/6), Amcrest (2/2), Yi (1/1, via the 3-consecutive-
//             failure validation disable), Wink Hub 2 (1/2),
//             Smartthings Hub (1/3) are interception-vulnerable; Zmodo
//             leaks "encrypt_key", Amcrest its command server.
//   Table 8 — Wink Hub 2 and Smartthings Hub support OCSP stapling.
//   Table 9 — Wink Hub 2 root store (92% common / 38% deprecated).
//   Fig 1   — Blink Hub transitions to TLS 1.2 in 7/2018; Insteon Hub's
//             old-version fraction varies with destination mix, then its
//             legacy instance is upgraded in 9/2019.
//   Fig 2   — Smartthings Hub stops advertising weak ciphers in 3/2020;
//             Blink Hub in 5/2019.
//   Fig 5   — Wink Hub 2 and Smartthings Hub share the stock OpenSSL
//             fingerprint (Wink's probe path).
#include "devices/catalog.hpp"

namespace iotls::devices::detail {

namespace t = iotls::tls;

namespace {

using PV = t::ProtocolVersion;

DestinationSpec named_dest(std::string hostname, std::string instance,
                           std::string payload = "") {
  DestinationSpec d;
  d.hostname = std::move(hostname);
  d.instance_id = std::move(instance);
  d.sensitive_payload = std::move(payload);
  return d;
}

tls::ClientConfig no_validation_config(std::vector<std::uint16_t> suites) {
  t::ClientConfig cfg;
  cfg.versions = {PV::Tls1_0, PV::Tls1_1, PV::Tls1_2};
  cfg.cipher_suites = std::move(suites);
  cfg.library = t::TlsLibrary::OpenSsl;
  cfg.verify_policy = x509::VerifyPolicy::none();
  return cfg;
}

}  // namespace

std::vector<DeviceProfile> build_camera_hub_devices() {
  std::vector<DeviceProfile> out;

  // ---------------- Blink Camera (passive only) ----------------
  {
    DeviceProfile d;
    d.name = "Blink Camera";
    d.category = "Cameras";
    d.active = false;
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_AES_128_CBC_SHA,
                         t::TLS_RSA_WITH_3DES_EDE_CBC_SHA};
    cfg.library = t::TlsLibrary::GnuTls;
    t::ClientConfig cam_legacy;
    cam_legacy.versions = {PV::Tls1_0};  // multiple maxima (§5.1)
    cam_legacy.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA};
    cam_legacy.library = t::TlsLibrary::GnuTls;
    d.instances = {TlsInstanceSpec{"blinkcam-main", cfg},
                   TlsInstanceSpec{"blinkcam-legacy", cam_legacy}};
    d.destinations = make_destinations("cam.blink-sim.com", 3,
                                       "blinkcam-main");
    d.destinations.push_back(
        named_dest("sync.cam.blink-sim.com", "blinkcam-legacy"));
    d.destinations.back().traffic_weight = 0.04;
    d.passive_end_offset = 14;  // broke mid-study (§4.1)
    d.monthly_connections_per_destination = 2100;
    out.push_back(std::move(d));
  }

  // ---------------- Zmodo Doorbell ----------------
  {
    DeviceProfile d;
    d.name = "Zmodo Doorbell";
    d.category = "Cameras";
    d.instances = {TlsInstanceSpec{
        "zmodo-main",
        no_validation_config({t::TLS_RSA_WITH_AES_128_CBC_SHA,
                              t::TLS_RSA_WITH_RC4_128_SHA,
                              t::TLS_RSA_WITH_3DES_EDE_CBC_SHA})}};
    // Table 7: 6/6 destinations vulnerable; leaks its media key.
    for (int i = 0; i < 6; ++i) {
      d.destinations.push_back(named_dest(
          "svc0" + std::to_string(i) + ".zmodo-sim.com", "zmodo-main",
          i == 0 ? "encrypt_key=ZM-MEDIA-KEY-0042" : ""));
    }
    d.monthly_connections_per_destination = 2600;
    out.push_back(std::move(d));
  }

  // ---------------- Yi Camera ----------------
  {
    DeviceProfile d;
    d.name = "Yi Camera";
    d.category = "Cameras";
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_0, PV::Tls1_1, PV::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
                         t::TLS_RSA_WITH_AES_128_CBC_SHA,
                         t::TLS_RSA_WITH_3DES_EDE_CBC_SHA};
    cfg.library = t::TlsLibrary::WolfSsl;  // same alert both ways: unprobeable
    cfg.session_ticket = true;
    d.instances = {TlsInstanceSpec{"yi-main", cfg}};
    d.destinations = {named_dest("api.yitechnology-sim.com", "yi-main")};
    // §5.2: "disables certificate validation completely upon 3 consecutive
    // failed connections" — which is exactly how Table 7 marks it 1/1.
    d.disable_validation_after_failures = 3;
    d.monthly_connections_per_destination = 3100;
    out.push_back(std::move(d));
  }

  // ---------------- D-Link Camera ----------------
  {
    DeviceProfile d;
    d.name = "D-Link Camera";
    d.category = "Cameras";
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
                         t::TLS_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_3DES_EDE_CBC_SHA};
    cfg.library = t::TlsLibrary::WolfSsl;
    d.instances = {TlsInstanceSpec{"dlink-main", cfg}};
    d.destinations = make_destinations("dlink-sim.com", 3, "dlink-main");
    d.monthly_connections_per_destination = 1700;
    out.push_back(std::move(d));
  }

  // ---------------- Amcrest Camera ----------------
  {
    DeviceProfile d;
    d.name = "Amcrest Camera";
    d.category = "Cameras";
    d.instances = {TlsInstanceSpec{
        "amcrest-main",
        no_validation_config({t::TLS_RSA_WITH_AES_128_CBC_SHA,
                              t::TLS_RSA_WITH_3DES_EDE_CBC_SHA,
                              t::TLS_RSA_WITH_RC4_128_SHA})}};
    d.destinations = {
        named_dest("p2p.amcrest-sim.com", "amcrest-main",
                   "command-server=cmd.amcrest-sim.com;user=admin"),
        named_dest("relay.amcrest-sim.com", "amcrest-main"),
    };
    d.monthly_connections_per_destination = 2300;
    out.push_back(std::move(d));
  }

  // ---------------- Ring Doorbell (passive only) ----------------
  {
    DeviceProfile d;
    d.name = "Ring Doorbell";
    d.category = "Cameras";
    d.active = false;
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_3DES_EDE_CBC_SHA};
    cfg.library = t::TlsLibrary::OpenSsl;
    t::ClientConfig ring_legacy;
    ring_legacy.versions = {PV::Tls1_1};  // multiple maxima (§5.1)
    ring_legacy.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA};
    ring_legacy.library = t::TlsLibrary::OpenSsl;
    d.instances = {TlsInstanceSpec{"ring-main", cfg},
                   TlsInstanceSpec{"ring-legacy", ring_legacy}};
    // Fig 3: Ring's destinations adopt PFS in 4/2018 (server-side change;
    // see testbed/cloud evolution for *.ring-sim.com).
    d.destinations = make_destinations("ring-sim.com", 4, "ring-main");
    d.destinations.push_back(named_dest("fw.ring-sim.com", "ring-legacy"));
    d.destinations.back().traffic_weight = 0.04;
    d.monthly_connections_per_destination = 4400;
    out.push_back(std::move(d));
  }

  // ---------------- Blink Hub ----------------
  {
    DeviceProfile d;
    d.name = "Blink Hub";
    d.category = "Smart Hubs";
    t::ClientConfig legacy;
    legacy.versions = {PV::Tls1_0, PV::Tls1_1};
    legacy.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA,
                            t::TLS_RSA_WITH_3DES_EDE_CBC_SHA,
                            t::TLS_RSA_WITH_RC4_128_SHA};
    legacy.library = t::TlsLibrary::GnuTls;
    d.instances = {TlsInstanceSpec{"blink-main", legacy}};
    d.destinations = make_destinations("hub.blink-sim.com", 3, "blink-main");

    // Fig 1: transitions to TLS 1.2 in 7/2018.
    t::ClientConfig modern = legacy;
    modern.versions = {PV::Tls1_2};
    modern.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                            t::TLS_RSA_WITH_AES_128_GCM_SHA256,
                            t::TLS_RSA_WITH_3DES_EDE_CBC_SHA};
    d.updates.push_back(UpdateEvent{common::Month{2018, 7}, "blink-main",
                                    modern, "transitions to TLS 1.2"});
    // Fig 2: stops advertising weak ciphers in 5/2019.
    t::ClientConfig cleaned = modern;
    cleaned.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                             t::TLS_RSA_WITH_AES_128_GCM_SHA256,
                             t::TLS_RSA_WITH_AES_256_CBC_SHA};
    d.updates.push_back(UpdateEvent{common::Month{2019, 5}, "blink-main",
                                    cleaned,
                                    "stops advertising weak ciphersuites"});
    d.monthly_connections_per_destination = 2700;
    out.push_back(std::move(d));
  }

  // ---------------- Smartthings Hub ----------------
  {
    DeviceProfile d;
    d.name = "Smartthings Hub";
    d.category = "Smart Hubs";
    t::ClientConfig main_cfg;
    main_cfg.versions = {PV::Tls1_2};
    main_cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                              t::TLS_RSA_WITH_AES_128_GCM_SHA256,
                              t::TLS_RSA_WITH_3DES_EDE_CBC_SHA};
    main_cfg.library = t::TlsLibrary::WolfSsl;  // unprobeable boot path
    main_cfg.request_ocsp_staple = true;        // Table 8 stapling evidence
    t::ClientConfig video_cfg = no_validation_config(
        {t::TLS_RSA_WITH_AES_128_CBC_SHA, t::TLS_RSA_WITH_RC4_128_SHA});
    // The video instance skips validation but the hub still rejects old
    // versions everywhere (absent from Table 6).
    video_cfg.versions = {PV::Tls1_2};
    t::ClientConfig fw_cfg = family_config("openssl-iot");
    fw_cfg.versions = {PV::Tls1_2};  // fingerprint-neutral restriction
    d.instances = {TlsInstanceSpec{"smartthings-main", main_cfg},
                   TlsInstanceSpec{"smartthings-video", video_cfg},
                   TlsInstanceSpec{"openssl-iot", fw_cfg}};
    d.destinations = {
        named_dest("api.smartthings-sim.com", "smartthings-main"),
        named_dest("video.smartthings-sim.com", "smartthings-video"),
        named_dest("fw.smartthings-sim.com", "openssl-iot"),
    };
    // Fig 2: stops advertising weak ciphers in 3/2020 (both first-party
    // stacks; the shared OpenSSL updater keeps its stock configuration).
    t::ClientConfig cleaned = main_cfg;
    cleaned.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                             t::TLS_RSA_WITH_AES_128_GCM_SHA256};
    d.updates.push_back(UpdateEvent{common::Month{2020, 3},
                                    "smartthings-main", cleaned,
                                    "stops advertising weak ciphersuites"});
    t::ClientConfig video_cleaned = video_cfg;
    video_cleaned.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA};
    d.updates.push_back(UpdateEvent{common::Month{2020, 3},
                                    "smartthings-video", video_cleaned,
                                    "stops advertising weak ciphersuites"});
    d.revocation.ocsp_stapling = true;  // Table 8
    d.monthly_connections_per_destination = 3300;
    out.push_back(std::move(d));
  }

  // ---------------- Philips Hub ----------------
  {
    DeviceProfile d;
    d.name = "Philips Hub";
    d.category = "Smart Hubs";
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_0, PV::Tls1_1, PV::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
                         t::TLS_RSA_WITH_AES_128_CBC_SHA,
                         t::TLS_RSA_WITH_3DES_EDE_CBC_SHA};
    cfg.library = t::TlsLibrary::GnuTls;  // silent on failure: unprobeable
    d.instances = {TlsInstanceSpec{"philips-main", cfg},
                   TlsInstanceSpec{"openssl-iot",
                                   family_config("openssl-iot")}};
    d.destinations = {
        named_dest("bridge.philips-sim.com", "philips-main"),
        named_dest("time.philips-sim.com", "philips-main"),
        named_dest("fw.philips-sim.com", "openssl-iot"),
    };
    d.monthly_connections_per_destination = 2900;
    out.push_back(std::move(d));
  }

  // ---------------- Wink Hub 2 ----------------
  {
    DeviceProfile d;
    d.name = "Wink Hub 2";
    d.category = "Smart Hubs";
    t::ClientConfig cloud_cfg = no_validation_config(
        {t::TLS_RSA_WITH_3DES_EDE_CBC_SHA, t::TLS_RSA_WITH_AES_128_CBC_SHA});
    cloud_cfg.versions = {PV::Tls1_1};  // second maximum version (§5.1)
    cloud_cfg.request_ocsp_staple = true;  // Table 8 stapling evidence
    d.instances = {TlsInstanceSpec{"openssl-iot",
                                   family_config("openssl-iot")},
                   TlsInstanceSpec{"wink-cloud", cloud_cfg}};
    // First destination is the probe path (stock OpenSSL, §5.3).
    // Fig 2: the cloud destination *establishes* 3DES — its server prefers
    // it (see testbed/cloud). Low weight: a rare sync flow.
    d.destinations = {
        named_dest("api.wink-sim.com", "openssl-iot"),
        named_dest("cloud.wink-sim.com", "wink-cloud"),
    };
    d.destinations[1].traffic_weight = 0.04;
    d.revocation.ocsp_stapling = true;  // Table 8
    // Table 9 row 5: 92% common (109/119), 38% deprecated (27/72).
    d.root_store = RootStoreSpec{
        .common_fraction = 0.92,
        .deprecated_fraction = 0.375,
        .force_include = {"WoSign CA Free SSL", "Certinomis - Root CA"},
        .inconclusive_common = 1.0 - 119.0 / 122.0,
        .inconclusive_deprecated = 1.0 - 72.0 / 87.0,
    };
    d.monthly_connections_per_destination = 2500;
    out.push_back(std::move(d));
  }

  // ---------------- Sengled Hub (passive only) ----------------
  {
    DeviceProfile d;
    d.name = "Sengled Hub";
    d.category = "Smart Hubs";
    d.active = false;
    t::ClientConfig cfg = family_config("mbedtls-embedded");
    cfg.library = t::TlsLibrary::WolfSsl;
    cfg.cipher_suites.push_back(t::TLS_RSA_WITH_3DES_EDE_CBC_SHA);
    t::ClientConfig sengled_legacy;
    sengled_legacy.versions = {PV::Tls1_1};  // multiple maxima (§5.1)
    sengled_legacy.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA};
    sengled_legacy.library = t::TlsLibrary::WolfSsl;
    d.instances = {TlsInstanceSpec{"sengled-main", cfg},
                   TlsInstanceSpec{"sengled-legacy", sengled_legacy}};
    d.destinations = make_destinations("sengled-sim.com", 2, "sengled-main");
    d.destinations.push_back(
        named_dest("fw.sengled-sim.com", "sengled-legacy"));
    d.destinations.back().traffic_weight = 0.04;
    d.passive_end_offset = 8;  // ≥6 months, then lost connectivity (§4.1)
    d.monthly_connections_per_destination = 1500;
    out.push_back(std::move(d));
  }

  // ---------------- Switchbot Hub ----------------
  {
    DeviceProfile d;
    d.name = "Switchbot Hub";
    d.category = "Smart Hubs";
    t::ClientConfig cfg;
    cfg.versions = {PV::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305};
    cfg.library = t::TlsLibrary::WolfSsl;
    d.instances = {TlsInstanceSpec{"switchbot-main", cfg}};
    d.destinations = make_destinations("switchbot-sim.com", 2,
                                       "switchbot-main");
    d.monthly_connections_per_destination = 1600;
    out.push_back(std::move(d));
  }

  // ---------------- Insteon Hub (passive only) ----------------
  {
    DeviceProfile d;
    d.name = "Insteon Hub";
    d.category = "Smart Hubs";
    d.active = false;
    t::ClientConfig legacy;
    legacy.versions = {PV::Tls1_0};
    legacy.cipher_suites = {t::TLS_RSA_WITH_AES_128_CBC_SHA,
                            t::TLS_RSA_WITH_RC4_128_SHA};
    legacy.library = t::TlsLibrary::GnuTls;
    t::ClientConfig modern;
    modern.versions = {PV::Tls1_2};
    modern.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                            t::TLS_RSA_WITH_AES_128_GCM_SHA256};
    modern.library = t::TlsLibrary::GnuTls;
    d.instances = {TlsInstanceSpec{"insteon-legacy", legacy},
                   TlsInstanceSpec{"insteon-main", modern}};
    // Fig 1: the old-version fraction tracks how often the legacy
    // destination is contacted month to month; the legacy instance itself
    // is upgraded in 9/2019, after which old versions disappear.
    d.destinations = {
        named_dest("legacy.insteon-sim.com", "insteon-legacy"),
        named_dest("app.insteon-sim.com", "insteon-main"),
        named_dest("alerts.insteon-sim.com", "insteon-main"),
    };
    t::ClientConfig upgraded = modern;
    d.updates.push_back(UpdateEvent{common::Month{2019, 9}, "insteon-legacy",
                                    upgraded, "transitions to TLS 1.2"});
    d.monthly_connections_per_destination = 1800;
    out.push_back(std::move(d));
  }

  return out;
}

}  // namespace iotls::devices::detail
