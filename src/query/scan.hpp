// Columnar query scans over the capture store (DESIGN.md §12).
//
// `run_query` is the pushdown scan path: per shard it reads only the frame
// headers and the footer (block payloads are seeked over), skips every
// block whose BlockStats verdict is a definite No, and decodes surviving
// blocks through ProjectedBlockCursor — materializing only the list
// columns the filter and projection touch. Shards fan out over the thread
// pool and merge in sorted-path order, so results are byte-identical at
// every thread count.
//
// `run_query_naive` is the oracle: a sequential ShardReader walk that
// decodes everything and filters decoded groups. The differential query
// suite asserts the two produce identical bytes for arbitrary queries.
//
// Shards without the footer-stats extension (written before it existed, or
// with `block_stats = false`) take the sequential in-shard path
// automatically — pushdown needs the summaries, and standalone block
// decode needs the footer dictionary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iotls::query {

struct QueryOptions {
  /// Filter expression (expr.hpp grammar); empty matches every row.
  std::string filter;
  /// Output columns; empty = default_columns().
  std::vector<std::string> columns;
  /// Aggregate mode: group matched rows by these columns; output is the
  /// keys plus "rows" and "connections" (sum of count), sorted by key.
  /// Overrides `columns`.
  std::vector<std::string> group_by;
  /// Worker threads for the shard fan-out (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Use block summaries to skip non-matching blocks.
  bool pushdown = true;
};

struct ScanStats {
  std::uint64_t shards = 0;
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_scanned = 0;  // == blocks_total without pushdown
  std::uint64_t rows_scanned = 0;
  std::uint64_t rows_matched = 0;
  std::uint64_t connections_matched = 0;  // sum of matched rows' counts
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  ScanStats stats;
};

/// device, dest, month, count, version, cipher, complete
std::vector<std::string> default_columns();

/// Execute a query against the store at `dir`. Throws common::ParseError
/// for a malformed filter/projection and typed StoreErrors for a defective
/// store.
QueryResult run_query(const std::string& dir, const QueryOptions& options);

/// Decode-everything oracle (sequential; ignores threads/pushdown). Keep
/// independent of run_query — the differential suite diffs the two.
QueryResult run_query_naive(const std::string& dir,
                            const QueryOptions& options);

/// Deterministic human-readable plan. Identical for every `threads` value
/// (the knob is intentionally excluded) — the plan-determinism check
/// depends on this.
std::string explain_query(const std::string& dir, const QueryOptions& options);

/// Tab-separated rendering: header line, then one line per row.
std::string render_tsv(const QueryResult& result);

/// Column-aligned table with a trailing scan-stats summary line.
std::string render_table(const QueryResult& result);

}  // namespace iotls::query
