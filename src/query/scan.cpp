#include "query/scan.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/pool.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "obs/profile.hpp"
#include "query/expr.hpp"
#include "store/reader.hpp"
#include "tls/ciphersuite.hpp"

namespace iotls::query {

namespace {

// ---------------------------------------------------------------------------
// Cell rendering — one function per source type, shared token helpers
// ---------------------------------------------------------------------------

std::string join_ids(const std::vector<std::uint16_t>& ids) {
  if (ids.empty()) return "-";
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (const auto id : ids) parts.push_back(std::to_string(id));
  return common::join(parts, "+");
}

std::string join_versions(const std::vector<tls::ProtocolVersion>& versions) {
  if (versions.empty()) return "-";
  std::vector<std::string> parts;
  parts.reserve(versions.size());
  for (const auto v : versions) {
    parts.push_back(version_token(static_cast<std::uint64_t>(v)));
  }
  return common::join(parts, "+");
}

std::string bool_cell(bool value) { return value ? "true" : "false"; }

std::string alert_cell(net::HandshakeRecord::AlertDirection d) {
  switch (d) {
    case net::HandshakeRecord::AlertDirection::None: return "none";
    case net::HandshakeRecord::AlertDirection::ClientToServer:
      return "client";
    case net::HandshakeRecord::AlertDirection::ServerToClient:
      return "server";
  }
  return "none";
}

std::string row_cell(Column c, const store::ProjectedRow& row,
                     const store::StringDictionary& dict) {
  switch (c) {
    case Column::Device: return dict.at(row.device_id);
    case Column::Vendor: return vendor_of(dict.at(row.device_id));
    case Column::Dest: return dict.at(row.dest_id);
    case Column::Month: return row.month.str();
    case Column::Count: return std::to_string(row.count);
    case Column::Version:
      return row.established_version.has_value()
                 ? version_token(
                       static_cast<std::uint64_t>(*row.established_version))
                 : "none";
    case Column::Cipher:
      return row.established_suite.has_value()
                 ? tls::suite_name(*row.established_suite)
                 : "none";
    case Column::Complete: return bool_cell(row.handshake_complete);
    case Column::AppData: return bool_cell(row.application_data_seen);
    case Column::Sni: return bool_cell(row.sent_sni);
    case Column::Staple: return bool_cell(row.requested_ocsp_staple);
    case Column::Alert: return alert_cell(row.alert_direction);
    case Column::AdvVersion: return join_versions(row.advertised_versions);
    case Column::AdvSuite: return join_ids(row.advertised_suites);
    case Column::Extension: return join_ids(row.extension_types);
    case Column::Group: return join_ids(row.advertised_groups);
    case Column::Sigalg: return join_ids(row.advertised_sigalgs);
  }
  return "";
}

std::string group_cell(Column c, const testbed::PassiveConnectionGroup& g) {
  const net::HandshakeRecord& r = g.record;
  switch (c) {
    case Column::Device: return r.device;
    case Column::Vendor: return vendor_of(r.device);
    case Column::Dest: return r.destination;
    case Column::Month: return r.month.str();
    case Column::Count: return std::to_string(g.count);
    case Column::Version:
      return r.established_version.has_value()
                 ? version_token(
                       static_cast<std::uint64_t>(*r.established_version))
                 : "none";
    case Column::Cipher:
      return r.established_suite.has_value()
                 ? tls::suite_name(*r.established_suite)
                 : "none";
    case Column::Complete: return bool_cell(r.handshake_complete);
    case Column::AppData: return bool_cell(r.application_data_seen);
    case Column::Sni: return bool_cell(r.sent_sni);
    case Column::Staple: return bool_cell(r.requested_ocsp_staple);
    case Column::Alert: return alert_cell(r.first_fatal_alert_direction);
    case Column::AdvVersion: return join_versions(r.advertised_versions);
    case Column::AdvSuite: return join_ids(r.advertised_suites);
    case Column::Extension: return join_ids(r.extension_types);
    case Column::Group: return join_ids(r.advertised_groups);
    case Column::Sigalg: return join_ids(r.advertised_sigalgs);
  }
  return "";
}

// ---------------------------------------------------------------------------
// Compiled query
// ---------------------------------------------------------------------------

struct Compiled {
  Expr expr;
  std::vector<Column> output;         // projection (or group-by keys)
  std::vector<std::string> headers;
  bool aggregate = false;
  std::uint32_t fields = 0;           // ProjectedFields to materialize
};

std::uint32_t fields_for_column(Column c) {
  switch (c) {
    case Column::AdvVersion: return store::kFieldAdvVersions;
    case Column::AdvSuite: return store::kFieldAdvSuites;
    case Column::Extension: return store::kFieldExtensions;
    case Column::Group: return store::kFieldAdvGroups;
    case Column::Sigalg: return store::kFieldAdvSigalgs;
    default: return 0;
  }
}

Compiled compile(const QueryOptions& options) {
  Compiled c;
  c.expr = parse_expr(options.filter);
  c.aggregate = !options.group_by.empty();
  const std::vector<std::string>& names =
      c.aggregate ? options.group_by
                  : (options.columns.empty() ? default_columns()
                                             : options.columns);
  for (const std::string& name : names) {
    const Column column = column_by_name(name);
    c.output.push_back(column);
    c.headers.push_back(column_name(column));
  }
  c.fields = fields_needed(c.expr);
  for (const Column column : c.output) c.fields |= fields_for_column(column);
  return c;
}

// ---------------------------------------------------------------------------
// Per-shard scan
// ---------------------------------------------------------------------------

struct ShardScan {
  std::vector<std::vector<std::string>> rows;
  ScanStats stats;
};

ShardScan scan_shard(const std::string& path, const Compiled& query,
                     bool pushdown) {
  const obs::ProfileZone zone("query/scan_shard");
  const store::ShardIndex index = store::read_shard_index(path);
  ShardScan out;
  out.stats.shards = 1;
  out.stats.blocks_total = index.blocks.size();

  store::StringDictionary dict;
  const bool standalone = index.footer.has_stats;
  if (standalone) {
    for (const std::string& entry : index.footer.dictionary) {
      dict.append(entry);
    }
  }

  store::BlockFetcher fetcher(index);
  store::ProjectedRow row;
  std::vector<std::string> cells(query.output.size());
  for (std::size_t i = 0; i < index.blocks.size(); ++i) {
    if (standalone && pushdown &&
        eval_stats(query.expr, index.footer.block_stats[i],
                   index.footer.dictionary) == Tri::No) {
      continue;  // summaries prove no row in this block can match
    }
    const common::Bytes payload = fetcher.fetch(i);
    store::ProjectedBlockCursor cursor(payload, index.header, query.fields,
                                       &dict, standalone);
    if (standalone &&
        cursor.rows_total() != index.footer.block_stats[i].groups) {
      throw store::StoreCorruptionError(
          path + ": block " + std::to_string(i) + " holds " +
          std::to_string(cursor.rows_total()) +
          " groups but the footer stats claim " +
          std::to_string(index.footer.block_stats[i].groups));
    }
    while (cursor.next(&row)) {
      ++out.stats.rows_scanned;
      if (!eval_row(query.expr, row, dict)) continue;
      ++out.stats.rows_matched;
      out.stats.connections_matched += row.count;
      for (std::size_t col = 0; col < query.output.size(); ++col) {
        cells[col] = row_cell(query.output[col], row, dict);
      }
      out.rows.push_back(cells);
    }
    ++out.stats.blocks_scanned;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Aggregation (shared by scan and oracle so only the row source differs)
// ---------------------------------------------------------------------------

void aggregate_rows(QueryResult* result) {
  const obs::ProfileZone zone("query/aggregate_rows");
  // Key rows carry their connection count as a trailing hidden cell.
  std::map<std::vector<std::string>, std::pair<std::uint64_t, std::uint64_t>>
      groups;
  for (auto& row : result->rows) {
    const std::uint64_t count = std::stoull(row.back());
    row.pop_back();
    auto& slot = groups[row];
    slot.first += 1;
    slot.second += count;
  }
  result->rows.clear();
  for (auto& [key, totals] : groups) {
    std::vector<std::string> row = key;
    row.push_back(std::to_string(totals.first));
    row.push_back(std::to_string(totals.second));
    result->rows.push_back(std::move(row));
  }
  result->columns.push_back("rows");
  result->columns.push_back("connections");
}

}  // namespace

std::vector<std::string> default_columns() {
  return {"device", "dest", "month", "count", "version", "cipher", "complete"};
}

QueryResult run_query(const std::string& dir, const QueryOptions& options) {
  const obs::ProfileZone zone("query/run_query");
  Compiled query = compile(options);
  if (query.aggregate) {
    query.output.push_back(Column::Count);  // hidden aggregation input
  }
  const std::vector<std::string> paths = store::list_shards(dir);
  const auto scans = common::parallel_map(
      options.threads, paths, [&](const std::string& path) {
        return scan_shard(path, query, options.pushdown);
      });

  QueryResult result;
  result.columns = query.headers;
  for (const ShardScan& scan : scans) {
    result.stats.shards += scan.stats.shards;
    result.stats.blocks_total += scan.stats.blocks_total;
    result.stats.blocks_scanned += scan.stats.blocks_scanned;
    result.stats.rows_scanned += scan.stats.rows_scanned;
    result.stats.rows_matched += scan.stats.rows_matched;
    result.stats.connections_matched += scan.stats.connections_matched;
    for (const auto& row : scan.rows) result.rows.push_back(row);
  }
  if (query.aggregate) aggregate_rows(&result);
  return result;
}

QueryResult run_query_naive(const std::string& dir,
                            const QueryOptions& options) {
  Compiled query = compile(options);
  if (query.aggregate) query.output.push_back(Column::Count);

  QueryResult result;
  result.columns = query.headers;
  std::vector<testbed::PassiveConnectionGroup> block;
  for (const std::string& path : store::list_shards(dir)) {
    store::ShardReader reader(path);
    ++result.stats.shards;
    while (reader.next(&block)) {
      ++result.stats.blocks_total;
      ++result.stats.blocks_scanned;
      for (const testbed::PassiveConnectionGroup& group : block) {
        ++result.stats.rows_scanned;
        if (!eval_group(query.expr, group)) continue;
        ++result.stats.rows_matched;
        result.stats.connections_matched += group.count;
        std::vector<std::string> cells(query.output.size());
        for (std::size_t col = 0; col < query.output.size(); ++col) {
          cells[col] = group_cell(query.output[col], group);
        }
        result.rows.push_back(std::move(cells));
      }
    }
  }
  if (query.aggregate) aggregate_rows(&result);
  return result;
}

std::string explain_query(const std::string& dir,
                          const QueryOptions& options) {
  const Compiled query = compile(options);
  const std::vector<std::string> paths = store::list_shards(dir);
  std::uint64_t blocks = 0;
  std::uint64_t with_stats = 0;
  for (const std::string& path : paths) {
    const store::ShardIndex index = store::read_shard_index(path);
    blocks += index.blocks.size();
    if (index.footer.has_stats) ++with_stats;
  }
  std::string plan = "plan: columnar scan\n";
  plan += "  filter: " + to_string(query.expr) + "\n";
  plan += "  output: " + common::join(query.headers, ", ") +
          (query.aggregate ? " (group by; + rows, connections)" : "") + "\n";
  std::vector<std::string> lists;
  if ((query.fields & store::kFieldAdvVersions) != 0) {
    lists.push_back("adv_version");
  }
  if ((query.fields & store::kFieldAdvSuites) != 0) {
    lists.push_back("adv_suite");
  }
  if ((query.fields & store::kFieldExtensions) != 0) {
    lists.push_back("extension");
  }
  if ((query.fields & store::kFieldAdvGroups) != 0) lists.push_back("group");
  if ((query.fields & store::kFieldAdvSigalgs) != 0) {
    lists.push_back("sigalg");
  }
  plan += "  list columns decoded: " +
          (lists.empty() ? std::string("none") : common::join(lists, ", ")) +
          "\n";
  plan += "  pushdown: " + std::string(options.pushdown ? "on" : "off") + "\n";
  plan += "  shards: " + std::to_string(paths.size()) + " (" +
          std::to_string(with_stats) + " with block stats), blocks: " +
          std::to_string(blocks) + "\n";
  return plan;
}

std::string render_tsv(const QueryResult& result) {
  std::string out = common::join(result.columns, "\t") + "\n";
  for (const auto& row : result.rows) {
    out += common::join(row, "\t") + "\n";
  }
  return out;
}

std::string render_table(const QueryResult& result) {
  common::TextTable table(result.columns);
  for (const auto& row : result.rows) table.add_row(row);
  std::string out = table.render();
  out += "\n" + std::to_string(result.stats.rows_matched) + " of " +
         std::to_string(result.stats.rows_scanned) + " rows matched (" +
         std::to_string(result.stats.connections_matched) +
         " connections); scanned " +
         std::to_string(result.stats.blocks_scanned) + "/" +
         std::to_string(result.stats.blocks_total) + " blocks in " +
         std::to_string(result.stats.shards) + " shards\n";
  return out;
}

}  // namespace iotls::query
