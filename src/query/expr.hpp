// Filter expressions for the columnar query layer (DESIGN.md §12).
//
// A small boolean language over the capture store's columns:
//
//   expr  := or ; or := and ("or" and)* ; and := unary ("and" unary)*
//   unary := "not" unary | "(" expr ")" | column op value
//   op    := == != < <= > >= contains
//
// Values are barewords or double-quoted strings; comparisons are typed at
// parse time against the column (months parse as "2018-01", versions as
// "tls1.2"/"none", ciphers as IANA names or 0x-hex ids, bools as
// true/false). The same parsed expression evaluates three ways:
//
//   eval_row    — scan path, against a ProjectedRow + dictionary
//   eval_group  — oracle path, against a decoded PassiveConnectionGroup
//   eval_stats  — pushdown, a *conservative* tri-state verdict against one
//                 block's BlockStats: No means no row in the block can
//                 match (skip it), Yes means every row matches, Maybe
//                 means the block must be read.
//
// eval_row and eval_group are deliberately independent code paths over
// different row types — the differential query suite asserts they agree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/codec.hpp"
#include "testbed/longitudinal.hpp"

namespace iotls::query {

/// Queryable columns. Scalar columns support the ordered operators; list
/// columns (AdvVersion..Sigalg) support only `contains`.
enum class Column {
  Device,
  Vendor,   // first whitespace-delimited token of the device name
  Dest,
  Month,
  Count,
  Version,  // established protocol version, or "none"
  Cipher,   // established ciphersuite, or "none"
  Complete,
  AppData,
  Sni,
  Staple,
  Alert,    // first fatal alert direction: none / client / server
  AdvVersion,
  AdvSuite,
  Extension,
  Group,
  Sigalg,
};

enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge, Contains };

/// One typed comparison. Exactly one of the constant fields is meaningful,
/// chosen by the column's kind at parse time.
struct Predicate {
  Column column = Column::Device;
  CmpOp op = CmpOp::Eq;
  std::string str_value;          // Device / Vendor / Dest
  std::uint64_t num_value = 0;    // everything numeric (month = index)
  bool is_none = false;           // Version / Cipher "none"
};

/// Expression tree. `True` is the empty filter (matches everything).
struct Expr {
  enum class Kind { True, Pred, And, Or, Not };
  Kind kind = Kind::True;
  Predicate pred;               // Kind::Pred
  std::vector<Expr> children;   // And / Or (2+), Not (1)
};

/// Parse a filter; an empty/blank string yields the match-all expression.
/// Throws common::ParseError with a position-annotated message on bad
/// syntax, an unknown column, an operator a column does not support, or an
/// unparseable value.
Expr parse_expr(const std::string& text);

/// Canonical text form (fully parenthesized) — the normalized predicate
/// line of a query plan. parse_expr(to_string(e)) round-trips.
std::string to_string(const Expr& expr);

/// Bitwise-or of the store::ProjectedFields the expression needs
/// materialized (list columns it touches).
std::uint32_t fields_needed(const Expr& expr);

/// Column helpers shared by the scan, the oracle and the renderers.
std::string vendor_of(const std::string& device);
Column column_by_name(const std::string& name);   // throws ParseError
std::string column_name(Column c);

/// Canonical short form of a protocol version ("tls1.2", "ssl3.0") — the
/// token the parser accepts and the renderers emit.
std::string version_token(std::uint64_t wire);

/// Oracle-side evaluation over a fully decoded group.
bool eval_group(const Expr& expr, const testbed::PassiveConnectionGroup& g);

/// Scan-side evaluation over a projected row. Only the list columns named
/// by fields_needed() may be touched; strings resolve through `dict`.
bool eval_row(const Expr& expr, const store::ProjectedRow& row,
              const store::StringDictionary& dict);

/// Conservative block verdict for predicate pushdown.
enum class Tri { No, Maybe, Yes };

/// Evaluate the expression against one block's summaries. `dictionary` is
/// the shard's footer dictionary (resolves the min/max string ids).
Tri eval_stats(const Expr& expr, const store::BlockStats& stats,
               const std::vector<std::string>& dictionary);

}  // namespace iotls::query
