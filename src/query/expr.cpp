#include "query/expr.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <utility>

#include "common/bytes.hpp"
#include "common/simtime.hpp"
#include "common/strings.hpp"
#include "net/capture.hpp"
#include "tls/ciphersuite.hpp"
#include "tls/version.hpp"

namespace iotls::query {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { Word, Str, LParen, RParen, End };
  Kind kind = Kind::End;
  std::string text;
  std::size_t pos = 0;
};

[[noreturn]] void fail(std::size_t pos, const std::string& message) {
  throw common::ParseError("filter: " + message + " (at offset " +
                           std::to_string(pos) + ")");
}

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '(') {
      tokens.push_back({Token::Kind::LParen, "(", i});
      ++i;
      continue;
    }
    if (c == ')') {
      tokens.push_back({Token::Kind::RParen, ")", i});
      ++i;
      continue;
    }
    if (c == '"') {
      const std::size_t start = i++;
      std::string value;
      while (i < text.size() && text[i] != '"') value.push_back(text[i++]);
      if (i >= text.size()) fail(start, "unterminated string");
      ++i;  // closing quote
      tokens.push_back({Token::Kind::Str, std::move(value), start});
      continue;
    }
    const std::size_t start = i;
    std::string word;
    while (i < text.size() && text[i] != '(' && text[i] != ')' &&
           text[i] != '"' &&
           std::isspace(static_cast<unsigned char>(text[i])) == 0) {
      word.push_back(text[i++]);
    }
    tokens.push_back({Token::Kind::Word, std::move(word), start});
  }
  tokens.push_back({Token::Kind::End, "", text.size()});
  return tokens;
}

// ---------------------------------------------------------------------------
// Typed value parsing
// ---------------------------------------------------------------------------

enum class ColumnKind { Str, Month, Uint, Version, Suite, Bool, Alert, IdList };

struct ColumnSpec {
  Column column;
  const char* name;
  ColumnKind kind;
};

constexpr ColumnSpec kColumns[] = {
    {Column::Device, "device", ColumnKind::Str},
    {Column::Vendor, "vendor", ColumnKind::Str},
    {Column::Dest, "dest", ColumnKind::Str},
    {Column::Month, "month", ColumnKind::Month},
    {Column::Count, "count", ColumnKind::Uint},
    {Column::Version, "version", ColumnKind::Version},
    {Column::Cipher, "cipher", ColumnKind::Suite},
    {Column::Complete, "complete", ColumnKind::Bool},
    {Column::AppData, "appdata", ColumnKind::Bool},
    {Column::Sni, "sni", ColumnKind::Bool},
    {Column::Staple, "staple", ColumnKind::Bool},
    {Column::Alert, "alert", ColumnKind::Alert},
    {Column::AdvVersion, "adv_version", ColumnKind::Version},
    {Column::AdvSuite, "adv_suite", ColumnKind::Suite},
    {Column::Extension, "extension", ColumnKind::IdList},
    {Column::Group, "group", ColumnKind::IdList},
    {Column::Sigalg, "sigalg", ColumnKind::IdList},
};

const ColumnSpec& spec_of(Column c) {
  for (const auto& spec : kColumns) {
    if (spec.column == c) return spec;
  }
  throw common::ParseError("filter: unknown column enumerator");
}

bool is_list_column(Column c) {
  return c == Column::AdvVersion || c == Column::AdvSuite ||
         c == Column::Extension || c == Column::Group || c == Column::Sigalg;
}

std::uint64_t parse_uint(const std::string& text, std::size_t pos,
                         const char* what) {
  if (text.empty()) fail(pos, std::string("empty ") + what);
  std::uint64_t value = 0;
  std::size_t i = 0;
  int base = 10;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    base = 16;
    i = 2;
  }
  for (; i < text.size(); ++i) {
    const char c = text[i];
    int digit = -1;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (base == 16 && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    if (digit < 0) {
      fail(pos, std::string("bad ") + what + " '" + text + "'");
    }
    if (value > (0x7FFFFFFFFFFFFFFFull - static_cast<std::uint64_t>(digit)) /
                    static_cast<std::uint64_t>(base)) {
      fail(pos, std::string(what) + " '" + text + "' out of range");
    }
    value = value * static_cast<std::uint64_t>(base) +
            static_cast<std::uint64_t>(digit);
  }
  return value;
}

std::uint64_t parse_month_value(const std::string& text, std::size_t pos) {
  const auto parts = common::split(text, '-');
  if (parts.size() != 2) fail(pos, "bad month '" + text + "' (want YYYY-MM)");
  const std::uint64_t year = parse_uint(parts[0], pos, "month year");
  const std::uint64_t month = parse_uint(parts[1], pos, "month number");
  if (year < 1 || year > 9999 || month < 1 || month > 12) {
    fail(pos, "month '" + text + "' out of range");
  }
  const common::Month m{static_cast<int>(year), static_cast<int>(month)};
  return static_cast<std::uint64_t>(m.index());
}

/// "tls1.2" / "1.2" / "ssl3.0" / "3.0" (case-insensitive, spaces ignored)
/// → wire code; "none" → nullopt-marker via `is_none`.
bool parse_version_value(const std::string& text, std::size_t pos,
                         bool allow_none, std::uint64_t* wire,
                         bool* is_none) {
  std::string t;
  for (const char c : common::to_lower(text)) {
    if (c != ' ') t.push_back(c);
  }
  if (t == "none") {
    if (!allow_none) fail(pos, "'none' is not a valid advertised version");
    *is_none = true;
    return true;
  }
  if (common::starts_with(t, "tls")) t = t.substr(3);
  else if (common::starts_with(t, "ssl")) t = t.substr(3);
  if (t == "3.0") *wire = 0x0300;
  else if (t == "1.0") *wire = 0x0301;
  else if (t == "1.1") *wire = 0x0302;
  else if (t == "1.2") *wire = 0x0303;
  else if (t == "1.3") *wire = 0x0304;
  else fail(pos, "bad protocol version '" + text + "'");
  return true;
}

std::uint64_t parse_suite_value(const std::string& text, std::size_t pos,
                                bool allow_none, bool* is_none) {
  if (common::to_lower(text) == "none") {
    if (!allow_none) fail(pos, "'none' is not a valid advertised suite");
    *is_none = true;
    return 0;
  }
  if (const tls::CipherSuiteInfo* info = tls::suite_by_name(text)) {
    return info->id;
  }
  const char first = text.empty() ? '\0' : text[0];
  if (first >= '0' && first <= '9') {
    const std::uint64_t id = parse_uint(text, pos, "ciphersuite id");
    if (id > 0xFFFF) fail(pos, "ciphersuite id '" + text + "' out of range");
    return id;
  }
  fail(pos, "unknown ciphersuite '" + text + "'");
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Expr parse() {
    Expr expr = parse_or();
    if (peek().kind != Token::Kind::End) {
      fail(peek().pos, "unexpected '" + peek().text + "'");
    }
    return expr;
  }

 private:
  const Token& peek() const { return tokens_[idx_]; }
  const Token& take() { return tokens_[idx_++]; }

  bool take_word(const char* word) {
    if (peek().kind == Token::Kind::Word && peek().text == word) {
      ++idx_;
      return true;
    }
    return false;
  }

  Expr parse_or() {
    Expr first = parse_and();
    if (!(peek().kind == Token::Kind::Word && peek().text == "or")) {
      return first;
    }
    Expr expr;
    expr.kind = Expr::Kind::Or;
    expr.children.push_back(std::move(first));
    while (take_word("or")) expr.children.push_back(parse_and());
    return expr;
  }

  Expr parse_and() {
    Expr first = parse_unary();
    if (!(peek().kind == Token::Kind::Word && peek().text == "and")) {
      return first;
    }
    Expr expr;
    expr.kind = Expr::Kind::And;
    expr.children.push_back(std::move(first));
    while (take_word("and")) expr.children.push_back(parse_unary());
    return expr;
  }

  Expr parse_unary() {
    if (take_word("not")) {
      Expr expr;
      expr.kind = Expr::Kind::Not;
      expr.children.push_back(parse_unary());
      return expr;
    }
    if (peek().kind == Token::Kind::LParen) {
      ++idx_;
      Expr expr = parse_or();
      if (peek().kind != Token::Kind::RParen) {
        fail(peek().pos, "expected ')'");
      }
      ++idx_;
      return expr;
    }
    if (take_word("true")) {
      return Expr{};  // Kind::True
    }
    return parse_predicate();
  }

  Expr parse_predicate() {
    const Token& col_tok = take();
    if (col_tok.kind != Token::Kind::Word) {
      fail(col_tok.pos, "expected a column name");
    }
    Predicate pred;
    pred.column = column_by_name(col_tok.text);

    const Token& op_tok = take();
    if (op_tok.kind != Token::Kind::Word) {
      fail(op_tok.pos, "expected a comparison operator");
    }
    if (op_tok.text == "==") pred.op = CmpOp::Eq;
    else if (op_tok.text == "!=") pred.op = CmpOp::Ne;
    else if (op_tok.text == "<") pred.op = CmpOp::Lt;
    else if (op_tok.text == "<=") pred.op = CmpOp::Le;
    else if (op_tok.text == ">") pred.op = CmpOp::Gt;
    else if (op_tok.text == ">=") pred.op = CmpOp::Ge;
    else if (op_tok.text == "contains") pred.op = CmpOp::Contains;
    else fail(op_tok.pos, "bad operator '" + op_tok.text + "'");

    if (is_list_column(pred.column) != (pred.op == CmpOp::Contains)) {
      fail(op_tok.pos, is_list_column(pred.column)
                           ? "list column '" + col_tok.text +
                                 "' supports only 'contains'"
                           : "'contains' needs a list column, not '" +
                                 col_tok.text + "'");
    }

    const Token& val_tok = take();
    if (val_tok.kind != Token::Kind::Word &&
        val_tok.kind != Token::Kind::Str) {
      fail(val_tok.pos, "expected a value");
    }
    const ColumnKind kind = spec_of(pred.column).kind;
    switch (kind) {
      case ColumnKind::Str:
        pred.str_value = val_tok.text;
        if (pred.column == Column::Vendor && pred.op != CmpOp::Eq &&
            pred.op != CmpOp::Ne) {
          fail(op_tok.pos, "vendor supports only == and !=");
        }
        break;
      case ColumnKind::Month:
        pred.num_value = parse_month_value(val_tok.text, val_tok.pos);
        break;
      case ColumnKind::Uint:
        pred.num_value = parse_uint(val_tok.text, val_tok.pos, "count");
        break;
      case ColumnKind::Version:
        parse_version_value(val_tok.text, val_tok.pos,
                            pred.column == Column::Version, &pred.num_value,
                            &pred.is_none);
        break;
      case ColumnKind::Suite:
        pred.num_value = parse_suite_value(
            val_tok.text, val_tok.pos, pred.column == Column::Cipher,
            &pred.is_none);
        if (pred.column == Column::Cipher && pred.op != CmpOp::Eq &&
            pred.op != CmpOp::Ne) {
          fail(op_tok.pos, "cipher supports only == and !=");
        }
        break;
      case ColumnKind::Bool: {
        const std::string t = common::to_lower(val_tok.text);
        if (t == "true") pred.num_value = 1;
        else if (t == "false") pred.num_value = 0;
        else fail(val_tok.pos, "bad boolean '" + val_tok.text + "'");
        if (pred.op != CmpOp::Eq && pred.op != CmpOp::Ne) {
          fail(op_tok.pos, "boolean columns support only == and !=");
        }
        break;
      }
      case ColumnKind::Alert: {
        const std::string t = common::to_lower(val_tok.text);
        if (t == "none") pred.num_value = 0;
        else if (t == "client") pred.num_value = 1;
        else if (t == "server") pred.num_value = 2;
        else fail(val_tok.pos, "bad alert direction '" + val_tok.text + "'");
        if (pred.op != CmpOp::Eq && pred.op != CmpOp::Ne) {
          fail(op_tok.pos, "alert supports only == and !=");
        }
        break;
      }
      case ColumnKind::IdList:
        pred.num_value = parse_uint(val_tok.text, val_tok.pos, "id");
        if (pred.num_value > 0xFFFF) {
          fail(val_tok.pos, "id '" + val_tok.text + "' out of u16 range");
        }
        break;
    }
    if (pred.is_none && pred.op != CmpOp::Eq && pred.op != CmpOp::Ne) {
      fail(op_tok.pos, "'none' supports only == and !=");
    }
    Expr expr;
    expr.kind = Expr::Kind::Pred;
    expr.pred = pred;
    return expr;
  }

  std::vector<Token> tokens_;
  std::size_t idx_ = 0;
};

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

const char* op_text(CmpOp op) {
  switch (op) {
    case CmpOp::Eq: return "==";
    case CmpOp::Ne: return "!=";
    case CmpOp::Lt: return "<";
    case CmpOp::Le: return "<=";
    case CmpOp::Gt: return ">";
    case CmpOp::Ge: return ">=";
    case CmpOp::Contains: return "contains";
  }
  return "?";
}

std::string value_text(const Predicate& pred) {
  switch (spec_of(pred.column).kind) {
    case ColumnKind::Str:
      return "\"" + pred.str_value + "\"";
    case ColumnKind::Month:
      return common::Month::from_index(static_cast<int>(pred.num_value))
          .str();
    case ColumnKind::Uint:
    case ColumnKind::IdList:
      return std::to_string(pred.num_value);
    case ColumnKind::Version:
      return pred.is_none ? "none" : version_token(pred.num_value);
    case ColumnKind::Suite:
      return pred.is_none
                 ? "none"
                 : tls::suite_name(static_cast<std::uint16_t>(pred.num_value));
    case ColumnKind::Bool:
      return pred.num_value != 0 ? "true" : "false";
    case ColumnKind::Alert:
      return pred.num_value == 0 ? "none"
                                 : (pred.num_value == 1 ? "client" : "server");
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Evaluation helpers
// ---------------------------------------------------------------------------

template <typename T>
bool cmp(const T& lhs, CmpOp op, const T& rhs) {
  switch (op) {
    case CmpOp::Eq: return lhs == rhs;
    case CmpOp::Ne: return lhs != rhs;
    case CmpOp::Lt: return lhs < rhs;
    case CmpOp::Le: return lhs <= rhs;
    case CmpOp::Gt: return lhs > rhs;
    case CmpOp::Ge: return lhs >= rhs;
    case CmpOp::Contains: break;
  }
  throw common::ParseError("filter: contains reached scalar comparison");
}

bool contains_u16(const std::vector<std::uint16_t>& list, std::uint64_t id) {
  return std::find(list.begin(), list.end(),
                   static_cast<std::uint16_t>(id)) != list.end();
}

/// Optional scalar vs constant: rows without a value match only !=.
template <typename T>
bool cmp_optional(const std::optional<T>& value, CmpOp op, std::uint64_t rhs,
                  bool rhs_none) {
  if (rhs_none) {
    return op == CmpOp::Eq ? !value.has_value() : value.has_value();
  }
  if (!value.has_value()) return op == CmpOp::Ne;
  return cmp<std::uint64_t>(static_cast<std::uint64_t>(*value), op, rhs);
}

Tri tri_invert(Tri t) {
  if (t == Tri::No) return Tri::Yes;
  if (t == Tri::Yes) return Tri::No;
  return Tri::Maybe;
}

/// Verdict when every row's value lies in [min, max].
template <typename T>
Tri tri_range(const T& min, const T& max, CmpOp op, const T& c) {
  switch (op) {
    case CmpOp::Eq:
      if (c < min || c > max) return Tri::No;
      return (min == max && min == c) ? Tri::Yes : Tri::Maybe;
    case CmpOp::Ne:
      return tri_invert(tri_range(min, max, CmpOp::Eq, c));
    case CmpOp::Lt:
      if (max < c) return Tri::Yes;
      if (min >= c) return Tri::No;
      return Tri::Maybe;
    case CmpOp::Le:
      if (max <= c) return Tri::Yes;
      if (min > c) return Tri::No;
      return Tri::Maybe;
    case CmpOp::Gt:
      if (min > c) return Tri::Yes;
      if (max <= c) return Tri::No;
      return Tri::Maybe;
    case CmpOp::Ge:
      if (min >= c) return Tri::Yes;
      if (max < c) return Tri::No;
      return Tri::Maybe;
    case CmpOp::Contains:
      break;
  }
  return Tri::Maybe;
}

/// Verdict for an occurrence-pair: `seen` = some row matches, `other` =
/// some row does not.
Tri tri_pair(bool seen, bool other) {
  if (!seen) return Tri::No;
  if (!other) return Tri::Yes;
  return Tri::Maybe;
}

Tri eval_pred_stats(const Predicate& pred, const store::BlockStats& s,
                    const std::vector<std::string>& dict) {
  using store::BlockStats;
  const auto dict_str = [&](std::uint32_t id) -> const std::string* {
    return id < dict.size() ? &dict[id] : nullptr;
  };
  switch (pred.column) {
    case Column::Device:
    case Column::Dest: {
      const bool device = pred.column == Column::Device;
      const std::string* min =
          dict_str(device ? s.device_min_id : s.dest_min_id);
      const std::string* max =
          dict_str(device ? s.device_max_id : s.dest_max_id);
      if (min == nullptr || max == nullptr) return Tri::Maybe;
      return tri_range(*min, *max, pred.op, pred.str_value);
    }
    case Column::Vendor: {
      const std::string* min = dict_str(s.device_min_id);
      const std::string* max = dict_str(s.device_max_id);
      if (min == nullptr || max == nullptr) return Tri::Maybe;
      const std::string& v = pred.str_value;
      // Devices with vendor v sort within [v, v + 0xFF): disjointness is a
      // definite No. Definite Yes needs every device between min and max to
      // start with "v " (a shared prefix one past the vendor), or a
      // single-device block whose vendor matches.
      Tri eq = Tri::Maybe;
      const std::string upper = v + '\xff';
      if (*max < v || *min > upper) {
        eq = Tri::No;
      } else if (*min == *max) {
        eq = vendor_of(*min) == v ? Tri::Yes : Tri::No;
      } else if (common::starts_with(*min, v + " ") &&
                 common::starts_with(*max, v + " ")) {
        eq = Tri::Yes;
      }
      return pred.op == CmpOp::Eq ? eq : tri_invert(eq);
    }
    case Column::Month:
      return tri_range<std::uint64_t>(s.month_min, s.month_max, pred.op,
                                      pred.num_value);
    case Column::Count:
      return tri_range<std::uint64_t>(s.count_min, s.count_max, pred.op,
                                      pred.num_value);
    case Column::Version: {
      const std::uint8_t value_bits =
          static_cast<std::uint8_t>(s.est_version_mask & 0x3F);
      if (pred.is_none) {
        const Tri eq = tri_pair((value_bits & BlockStats::kEstNoneBit) != 0,
                                (value_bits & 0x1F) != 0);
        return pred.op == CmpOp::Eq ? eq : tri_invert(eq);
      }
      if (pred.op == CmpOp::Eq || pred.op == CmpOp::Ne) {
        const std::uint8_t bit = static_cast<std::uint8_t>(
            1u << (pred.num_value - 0x0300));
        const Tri eq =
            tri_pair((value_bits & bit) != 0, (value_bits & ~bit & 0x3F) != 0);
        return pred.op == CmpOp::Eq ? eq : tri_invert(eq);
      }
      // Ordered: rows without an established version never match.
      bool any_match = false;
      bool all_match = (value_bits & BlockStats::kEstNoneBit) == 0;
      bool any_version = false;
      for (std::uint32_t b = 0; b <= 4; ++b) {
        if ((value_bits & (1u << b)) == 0) continue;
        any_version = true;
        const std::uint64_t wire = 0x0300 + b;
        if (cmp<std::uint64_t>(wire, pred.op, pred.num_value)) {
          any_match = true;
        } else {
          all_match = false;
        }
      }
      if (!any_match) return Tri::No;
      if (all_match && any_version) return Tri::Yes;
      return Tri::Maybe;
    }
    case Column::Cipher: {
      const bool some_suite =
          (s.est_version_mask & BlockStats::kEstSuiteBit) != 0;
      const bool some_without =
          (s.est_version_mask & BlockStats::kEstNoSuiteBit) != 0;
      Tri eq = Tri::Maybe;
      if (pred.is_none) {
        eq = tri_pair(some_without, some_suite);
      } else if (!some_suite || pred.num_value < s.est_suite_min ||
                 pred.num_value > s.est_suite_max) {
        eq = Tri::No;
      } else if (!some_without && s.est_suite_min == s.est_suite_max &&
                 s.est_suite_min == pred.num_value) {
        eq = Tri::Yes;
      }
      return pred.op == CmpOp::Eq ? eq : tri_invert(eq);
    }
    case Column::Complete:
    case Column::AppData:
    case Column::Sni:
    case Column::Staple: {
      int pair = 0;
      if (pred.column == Column::AppData) pair = 1;
      if (pred.column == Column::Sni) pair = 2;
      if (pred.column == Column::Staple) pair = 3;
      const bool want = pred.num_value != 0;
      const std::uint8_t true_bit =
          static_cast<std::uint8_t>(1u << (2 * pair));
      const std::uint8_t false_bit =
          static_cast<std::uint8_t>(1u << (2 * pair + 1));
      const bool match_seen = (s.bool_mask & (want ? true_bit : false_bit));
      const bool other_seen = (s.bool_mask & (want ? false_bit : true_bit));
      const Tri eq = tri_pair(match_seen, other_seen);
      return pred.op == CmpOp::Eq ? eq : tri_invert(eq);
    }
    case Column::Alert: {
      const std::uint8_t bit =
          static_cast<std::uint8_t>(1u << pred.num_value);
      const Tri eq = tri_pair((s.alert_dir_mask & bit) != 0,
                              (s.alert_dir_mask & ~bit & 0x7) != 0);
      return pred.op == CmpOp::Eq ? eq : tri_invert(eq);
    }
    case Column::AdvVersion: {
      const std::uint8_t bit = static_cast<std::uint8_t>(
          1u << (pred.num_value - 0x0300));
      // Union mask: an unset bit means no row advertises it; a set bit
      // means *some* row does.
      return (s.adv_version_mask & bit) != 0 ? Tri::Maybe : Tri::No;
    }
    case Column::AdvSuite: {
      const std::uint64_t bit = 1ull << (pred.num_value % 64);
      return (s.suite_bloom & bit) != 0 ? Tri::Maybe : Tri::No;
    }
    case Column::Extension:
    case Column::Group:
    case Column::Sigalg:
      return Tri::Maybe;  // no summaries for these lists
  }
  return Tri::Maybe;
}

// ---------------------------------------------------------------------------
// Row / group evaluation (two independent walks — see header)
// ---------------------------------------------------------------------------

bool eval_pred_group(const Predicate& pred,
                     const testbed::PassiveConnectionGroup& g) {
  const net::HandshakeRecord& r = g.record;
  switch (pred.column) {
    case Column::Device: return cmp(r.device, pred.op, pred.str_value);
    case Column::Vendor:
      return cmp(vendor_of(r.device), pred.op, pred.str_value);
    case Column::Dest: return cmp(r.destination, pred.op, pred.str_value);
    case Column::Month:
      return cmp<std::uint64_t>(static_cast<std::uint64_t>(r.month.index()),
                                pred.op, pred.num_value);
    case Column::Count:
      return cmp<std::uint64_t>(g.count, pred.op, pred.num_value);
    case Column::Version: {
      std::optional<std::uint16_t> wire;
      if (r.established_version.has_value()) {
        wire = static_cast<std::uint16_t>(*r.established_version);
      }
      return cmp_optional(wire, pred.op, pred.num_value, pred.is_none);
    }
    case Column::Cipher:
      return cmp_optional(r.established_suite, pred.op, pred.num_value,
                          pred.is_none);
    case Column::Complete:
      return cmp<std::uint64_t>(r.handshake_complete ? 1 : 0, pred.op,
                                pred.num_value);
    case Column::AppData:
      return cmp<std::uint64_t>(r.application_data_seen ? 1 : 0, pred.op,
                                pred.num_value);
    case Column::Sni:
      return cmp<std::uint64_t>(r.sent_sni ? 1 : 0, pred.op, pred.num_value);
    case Column::Staple:
      return cmp<std::uint64_t>(r.requested_ocsp_staple ? 1 : 0, pred.op,
                                pred.num_value);
    case Column::Alert:
      return cmp<std::uint64_t>(
          static_cast<std::uint64_t>(r.first_fatal_alert_direction), pred.op,
          pred.num_value);
    case Column::AdvVersion:
      return std::any_of(r.advertised_versions.begin(),
                         r.advertised_versions.end(),
                         [&](tls::ProtocolVersion v) {
                           return static_cast<std::uint64_t>(v) ==
                                  pred.num_value;
                         });
    case Column::AdvSuite: return contains_u16(r.advertised_suites,
                                               pred.num_value);
    case Column::Extension: return contains_u16(r.extension_types,
                                                pred.num_value);
    case Column::Group: return contains_u16(r.advertised_groups,
                                            pred.num_value);
    case Column::Sigalg: return contains_u16(r.advertised_sigalgs,
                                             pred.num_value);
  }
  return false;
}

bool eval_pred_row(const Predicate& pred, const store::ProjectedRow& row,
                   const store::StringDictionary& dict) {
  switch (pred.column) {
    case Column::Device: return cmp(dict.at(row.device_id), pred.op,
                                    pred.str_value);
    case Column::Vendor:
      return cmp(vendor_of(dict.at(row.device_id)), pred.op, pred.str_value);
    case Column::Dest: return cmp(dict.at(row.dest_id), pred.op,
                                  pred.str_value);
    case Column::Month:
      return cmp<std::uint64_t>(
          static_cast<std::uint64_t>(row.month.index()), pred.op,
          pred.num_value);
    case Column::Count:
      return cmp<std::uint64_t>(row.count, pred.op, pred.num_value);
    case Column::Version: {
      std::optional<std::uint16_t> wire;
      if (row.established_version.has_value()) {
        wire = static_cast<std::uint16_t>(*row.established_version);
      }
      return cmp_optional(wire, pred.op, pred.num_value, pred.is_none);
    }
    case Column::Cipher:
      return cmp_optional(row.established_suite, pred.op, pred.num_value,
                          pred.is_none);
    case Column::Complete:
      return cmp<std::uint64_t>(row.handshake_complete ? 1 : 0, pred.op,
                                pred.num_value);
    case Column::AppData:
      return cmp<std::uint64_t>(row.application_data_seen ? 1 : 0, pred.op,
                                pred.num_value);
    case Column::Sni:
      return cmp<std::uint64_t>(row.sent_sni ? 1 : 0, pred.op,
                                pred.num_value);
    case Column::Staple:
      return cmp<std::uint64_t>(row.requested_ocsp_staple ? 1 : 0, pred.op,
                                pred.num_value);
    case Column::Alert:
      return cmp<std::uint64_t>(
          static_cast<std::uint64_t>(row.alert_direction), pred.op,
          pred.num_value);
    case Column::AdvVersion:
      return std::any_of(row.advertised_versions.begin(),
                         row.advertised_versions.end(),
                         [&](tls::ProtocolVersion v) {
                           return static_cast<std::uint64_t>(v) ==
                                  pred.num_value;
                         });
    case Column::AdvSuite: return contains_u16(row.advertised_suites,
                                               pred.num_value);
    case Column::Extension: return contains_u16(row.extension_types,
                                                pred.num_value);
    case Column::Group: return contains_u16(row.advertised_groups,
                                            pred.num_value);
    case Column::Sigalg: return contains_u16(row.advertised_sigalgs,
                                             pred.num_value);
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

Expr parse_expr(const std::string& text) {
  if (common::trim(text).empty()) return Expr{};
  return Parser(tokenize(text)).parse();
}

std::string to_string(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::True:
      return "true";
    case Expr::Kind::Pred:
      return std::string(column_name(expr.pred.column)) + " " +
             op_text(expr.pred.op) + " " + value_text(expr.pred);
    case Expr::Kind::Not:
      return "(not " + to_string(expr.children[0]) + ")";
    case Expr::Kind::And:
    case Expr::Kind::Or: {
      const char* word = expr.kind == Expr::Kind::And ? " and " : " or ";
      std::string out = "(";
      for (std::size_t i = 0; i < expr.children.size(); ++i) {
        if (i != 0) out += word;
        out += to_string(expr.children[i]);
      }
      return out + ")";
    }
  }
  return "true";
}

std::uint32_t fields_needed(const Expr& expr) {
  std::uint32_t fields = 0;
  if (expr.kind == Expr::Kind::Pred) {
    switch (expr.pred.column) {
      case Column::AdvVersion: fields |= store::kFieldAdvVersions; break;
      case Column::AdvSuite: fields |= store::kFieldAdvSuites; break;
      case Column::Extension: fields |= store::kFieldExtensions; break;
      case Column::Group: fields |= store::kFieldAdvGroups; break;
      case Column::Sigalg: fields |= store::kFieldAdvSigalgs; break;
      default: break;
    }
  }
  for (const Expr& child : expr.children) fields |= fields_needed(child);
  return fields;
}

std::string vendor_of(const std::string& device) {
  const std::size_t space = device.find(' ');
  return space == std::string::npos ? device : device.substr(0, space);
}

Column column_by_name(const std::string& name) {
  for (const auto& spec : kColumns) {
    if (name == spec.name) return spec.column;
  }
  throw common::ParseError("filter: unknown column '" + name + "'");
}

std::string column_name(Column c) { return spec_of(c).name; }

std::string version_token(std::uint64_t wire) {
  switch (wire) {
    case 0x0300: return "ssl3.0";
    case 0x0301: return "tls1.0";
    case 0x0302: return "tls1.1";
    case 0x0303: return "tls1.2";
    case 0x0304: return "tls1.3";
  }
  return "unknown";
}

bool eval_group(const Expr& expr, const testbed::PassiveConnectionGroup& g) {
  switch (expr.kind) {
    case Expr::Kind::True: return true;
    case Expr::Kind::Pred: return eval_pred_group(expr.pred, g);
    case Expr::Kind::Not: return !eval_group(expr.children[0], g);
    case Expr::Kind::And:
      return std::all_of(expr.children.begin(), expr.children.end(),
                         [&](const Expr& e) { return eval_group(e, g); });
    case Expr::Kind::Or:
      return std::any_of(expr.children.begin(), expr.children.end(),
                         [&](const Expr& e) { return eval_group(e, g); });
  }
  return false;
}

bool eval_row(const Expr& expr, const store::ProjectedRow& row,
              const store::StringDictionary& dict) {
  switch (expr.kind) {
    case Expr::Kind::True: return true;
    case Expr::Kind::Pred: return eval_pred_row(expr.pred, row, dict);
    case Expr::Kind::Not: return !eval_row(expr.children[0], row, dict);
    case Expr::Kind::And:
      return std::all_of(expr.children.begin(), expr.children.end(),
                         [&](const Expr& e) { return eval_row(e, row, dict); });
    case Expr::Kind::Or:
      return std::any_of(expr.children.begin(), expr.children.end(),
                         [&](const Expr& e) { return eval_row(e, row, dict); });
  }
  return false;
}

Tri eval_stats(const Expr& expr, const store::BlockStats& stats,
               const std::vector<std::string>& dictionary) {
  switch (expr.kind) {
    case Expr::Kind::True:
      return Tri::Yes;
    case Expr::Kind::Pred:
      return eval_pred_stats(expr.pred, stats, dictionary);
    case Expr::Kind::Not:
      return tri_invert(eval_stats(expr.children[0], stats, dictionary));
    case Expr::Kind::And: {
      Tri verdict = Tri::Yes;
      for (const Expr& child : expr.children) {
        const Tri t = eval_stats(child, stats, dictionary);
        if (static_cast<int>(t) < static_cast<int>(verdict)) verdict = t;
        if (verdict == Tri::No) break;
      }
      return verdict;
    }
    case Expr::Kind::Or: {
      Tri verdict = Tri::No;
      for (const Expr& child : expr.children) {
        const Tri t = eval_stats(child, stats, dictionary);
        if (static_cast<int>(t) > static_cast<int>(verdict)) verdict = t;
        if (verdict == Tri::Yes) break;
      }
      return verdict;
    }
  }
  return Tri::Maybe;
}

}  // namespace iotls::query
