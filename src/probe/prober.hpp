// Root-store exploration via the TLS-alert side channel — the paper's
// novel technique (§4.2).
//
// For each candidate root certificate:
//   1. intercept a boot-time connection with a chain anchored at an
//      *unknown* CA → the device's alert (or silence) is the baseline;
//   2. intercept the same connection with a chain anchored at a *spoofed*
//      copy of the candidate (same subject/issuer/serial, our key);
//   3. if the alerts differ, the candidate is in the device's root store
//      (signature error ⇒ present; unknown-CA alert again ⇒ absent).
//
// A device is amenable iff step 2 on a known-included certificate yields a
// different alert than step 1 (Table 4 behaviour of its TLS library).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/task.hpp"
#include "mitm/interceptor.hpp"
#include "testbed/testbed.hpp"

namespace iotls::probe {

enum class Verdict {
  Present,
  Absent,
  /// The probe produced no usable signal (device generated no traffic this
  /// boot, or sent no alert).
  Inconclusive,
};

std::string verdict_name(Verdict verdict);

struct ProbeOutcome {
  Verdict verdict = Verdict::Inconclusive;
  std::optional<tls::Alert> alert_unknown;  // baseline alert
  std::optional<tls::Alert> alert_spoofed;  // spoofed-CA alert
};

/// Aggregate over one certificate set (a Table 9 cell).
struct ExplorationResult {
  int present = 0;
  int checked = 0;        // conclusive probes
  int inconclusive = 0;
  std::map<std::string, Verdict> verdicts;  // per CA name

  [[nodiscard]] double fraction() const {
    return checked > 0 ? static_cast<double>(present) / checked : 0.0;
  }
};

class RootStoreProber {
 public:
  explicit RootStoreProber(testbed::Testbed& testbed,
                           std::uint64_t seed = 0xB0BE);

  /// Devices eligible for probing: active, reboot-safe, and validating on
  /// the probe path (§5.2 exclusions).
  [[nodiscard]] std::vector<std::string> eligible_devices() const;

  /// §4.2 amenability test: does this device emit *different* alerts for
  /// spoofed-known vs unknown CA?
  [[nodiscard]] bool device_amenable(const std::string& device_name);

  /// All amenable devices (the Table 9 row set).
  [[nodiscard]] std::vector<std::string> amenable_devices();

  /// Probe one candidate root certificate on one device.
  ProbeOutcome probe_certificate(const std::string& device_name,
                                 const std::string& ca_name);

  /// Probe a whole certificate set; `inconclusive_rate` models probe runs
  /// that produce no traffic (Table 9's varying denominators).
  ExplorationResult explore(const std::string& device_name,
                            const std::vector<std::string>& ca_names,
                            double inconclusive_rate = 0.0);

  /// As above, but with the inconclusive draws made up front (mask[i] ⇒
  /// skip ca_names[i]). The parallel study engine pre-draws masks on the
  /// coordinating thread so probes can run on a pool without touching the
  /// shared RNG stream; out-of-range indices count as conclusive.
  ExplorationResult explore(const std::string& device_name,
                            const std::vector<std::string>& ca_names,
                            const std::vector<bool>& inconclusive_mask);

  /// Coroutine twins for the session-engine path: same probes, same trace
  /// spans, same verdict logic, but each intercepted connection suspends
  /// on the testbed's engine so many devices' probes interleave per worker
  /// thread (the testbed must have set_engine() applied). The synchronous
  /// methods above are exactly run_sync(...) over these.
  common::Task<bool> device_amenable_task(const std::string& device_name);
  common::Task<ProbeOutcome> probe_certificate_task(
      const std::string& device_name, const std::string& ca_name);
  common::Task<ExplorationResult> explore_task(
      const std::string& device_name,
      const std::vector<std::string>& ca_names,
      const std::vector<bool>& inconclusive_mask);

 private:
  /// Run one intercepted boot-time connection; returns the alert the
  /// device sent (nullopt = silent failure or no traffic).
  common::Task<std::optional<tls::Alert>> run_probe_task(
      const std::string& device_name, mitm::InterceptMode mode);

  testbed::Testbed* testbed_;
  mitm::Interceptor interceptor_;
  common::Rng rng_;
};

}  // namespace iotls::probe
