#include "probe/prober.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "tls/alert.hpp"

namespace iotls::probe {

namespace {

constexpr common::SimDate kProbeDate{2021, 3, 20};  // §4.1 snapshot

struct ProbeMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  obs::Counter& pairs = reg.counter(
      "iotls_probe_pairs_total",
      "Spoofed/unknown probe pairs run against devices");

  obs::Counter& verdicts(const std::string& verdict) {
    return reg.counter("iotls_probe_verdicts_total",
                       "Root-store probe verdicts", "verdict", verdict);
  }

  static ProbeMetrics& get() {
    static ProbeMetrics metrics;
    return metrics;
  }
};

/// Trace annotation for a probe's alert observation: the Table-4 display
/// form plus the classification axis the verdict logic keys on.
std::string alert_class_attr(const std::optional<tls::Alert>& alert) {
  if (!alert.has_value()) return "none";
  return tls::alert_class_name(tls::alert_classify(alert->description));
}

/// The probe targets the device's boot-time first connection — the same
/// TLS instance every reboot (§4.2's determinism requirement).
const devices::DestinationSpec& probe_destination(
    const devices::DeviceProfile& profile) {
  for (const auto& dest : profile.destinations) {
    if (!dest.intermittent) return dest;
  }
  throw common::ProtocolError(profile.name + " has no probe destination");
}

}  // namespace

std::string verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::Present: return "present";
    case Verdict::Absent: return "absent";
    case Verdict::Inconclusive: return "inconclusive";
  }
  return "unknown";
}

RootStoreProber::RootStoreProber(testbed::Testbed& testbed,
                                 std::uint64_t seed)
    : testbed_(&testbed),
      interceptor_(testbed.universe(), testbed.cloud(), seed ^ 0x9999),
      rng_(common::Rng::derive(seed, "root-store-prober")) {
  testbed_->set_date(kProbeDate);
}

std::vector<std::string> RootStoreProber::eligible_devices() const {
  std::vector<std::string> out;
  for (const auto* profile : devices::active_devices()) {
    if (!profile->reboot_safe) continue;  // §5.2: no repeated reboots
    const auto& dest = probe_destination(*profile);
    const auto& instance = profile->instance_for_destination(dest);
    if (!instance.config.verify_policy.validate) continue;  // §5.2
    out.push_back(profile->name);
  }
  return out;
}

common::Task<std::optional<tls::Alert>> RootStoreProber::run_probe_task(
    const std::string& device_name, mitm::InterceptMode mode) {
  auto& runtime = testbed_->runtime(device_name);
  const auto& dest = probe_destination(runtime.profile());

  interceptor_.set_mode(std::move(mode));
  interceptor_.install(testbed_->network());
  (void)co_await runtime.connect_to_task(dest, kProbeDate);
  const auto interceptions = interceptor_.drain();
  interceptor_.uninstall(testbed_->network());
  runtime.reset_failure_state();

  if (interceptions.empty()) co_return std::nullopt;
  co_return interceptions.front().alert_received;
}

common::Task<bool> RootStoreProber::device_amenable_task(
    const std::string& device_name) {
  auto& runtime = testbed_->runtime(device_name);
  if (runtime.root_store().empty()) co_return false;
  // Calibrate with a certificate we know the device trusts.
  const x509::Certificate known_root = runtime.root_store().roots().front();

  const auto alert_unknown =
      co_await run_probe_task(device_name, mitm::InterceptMode::unknown_ca());
  const auto alert_spoofed = co_await run_probe_task(
      device_name, mitm::InterceptMode::spoofed_ca(known_root));
  const bool amenable = alert_unknown.has_value() &&
                        alert_spoofed.has_value() &&
                        *alert_unknown != *alert_spoofed;
  obs::TraceLog* trace = testbed_->trace();
  if (trace != nullptr && trace->enabled()) {
    obs::Span span = trace->start_span("amenability:" + device_name);
    span.set_attr("device", device_name);
    span.event("probe_unknown", {{"alert", tls::alert_display(alert_unknown)},
                                 {"class", alert_class_attr(alert_unknown)}});
    span.event("probe_spoofed", {{"alert", tls::alert_display(alert_spoofed)},
                                 {"class", alert_class_attr(alert_spoofed)}});
    span.event("verdict", {{"amenable", amenable ? "true" : "false"}});
    trace->add(std::move(span));
  }
  co_return amenable;
}

bool RootStoreProber::device_amenable(const std::string& device_name) {
  return common::run_sync(device_amenable_task(device_name));
}

std::vector<std::string> RootStoreProber::amenable_devices() {
  std::vector<std::string> out;
  for (const auto& name : eligible_devices()) {
    if (device_amenable(name)) out.push_back(name);
  }
  return out;
}

common::Task<ProbeOutcome> RootStoreProber::probe_certificate_task(
    const std::string& device_name, const std::string& ca_name) {
  const auto& universe = testbed_->universe();
  const x509::Certificate& candidate = universe.authority(ca_name).root();

  ProbeOutcome outcome;
  outcome.alert_unknown =
      co_await run_probe_task(device_name, mitm::InterceptMode::unknown_ca());
  outcome.alert_spoofed = co_await run_probe_task(
      device_name, mitm::InterceptMode::spoofed_ca(candidate));

  if (!outcome.alert_unknown.has_value() ||
      !outcome.alert_spoofed.has_value()) {
    outcome.verdict = Verdict::Inconclusive;
  } else {
    outcome.verdict = (*outcome.alert_spoofed != *outcome.alert_unknown)
                          ? Verdict::Present
                          : Verdict::Absent;
  }

  if (obs::metrics_enabled()) {
    auto& metrics = ProbeMetrics::get();
    metrics.pairs.inc();
    metrics.verdicts(verdict_name(outcome.verdict)).inc();
  }
  obs::TraceLog* trace = testbed_->trace();
  if (trace != nullptr && trace->enabled()) {
    // One span per probe pair: both alerts, and which signal decided it.
    obs::Span span = trace->start_span("probe:" + device_name + ":" + ca_name);
    span.set_attr("device", device_name);
    span.set_attr("ca", ca_name);
    span.event("probe_unknown",
               {{"alert", tls::alert_display(outcome.alert_unknown)},
                {"class", alert_class_attr(outcome.alert_unknown)}});
    span.event("probe_spoofed",
               {{"alert", tls::alert_display(outcome.alert_spoofed)},
                {"class", alert_class_attr(outcome.alert_spoofed)}});
    std::string signal;
    if (outcome.verdict == Verdict::Inconclusive) {
      signal = "missing_alert";
    } else if (outcome.verdict == Verdict::Present) {
      signal = "alerts_differ";
    } else {
      signal = "alerts_match";
    }
    span.event("verdict", {{"verdict", verdict_name(outcome.verdict)},
                           {"signal", signal}});
    trace->add(std::move(span));
  }
  co_return outcome;
}

ProbeOutcome RootStoreProber::probe_certificate(
    const std::string& device_name, const std::string& ca_name) {
  return common::run_sync(probe_certificate_task(device_name, ca_name));
}

ExplorationResult RootStoreProber::explore(
    const std::string& device_name, const std::vector<std::string>& ca_names,
    double inconclusive_rate) {
  // Pre-draw the inconclusive mask, then delegate; the rng_ stream is
  // consumed exactly as if each probe drew on demand, and the mask form
  // lets callers pre-derive draws before fanning out over a thread pool.
  std::vector<bool> mask(ca_names.size());
  for (std::size_t i = 0; i < ca_names.size(); ++i) {
    mask[i] = rng_.chance(inconclusive_rate);
  }
  return explore(device_name, ca_names, mask);
}

common::Task<ExplorationResult> RootStoreProber::explore_task(
    const std::string& device_name, const std::vector<std::string>& ca_names,
    const std::vector<bool>& inconclusive_mask) {
  ExplorationResult result;
  for (std::size_t i = 0; i < ca_names.size(); ++i) {
    const auto& ca_name = ca_names[i];
    // Some probe attempts yield no traffic at all (the reboot produced no
    // connection to the targeted instance) — Table 9's denominators.
    if (i < inconclusive_mask.size() && inconclusive_mask[i]) {
      ++result.inconclusive;
      result.verdicts[ca_name] = Verdict::Inconclusive;
      continue;
    }
    const ProbeOutcome outcome =
        co_await probe_certificate_task(device_name, ca_name);
    result.verdicts[ca_name] = outcome.verdict;
    if (outcome.verdict == Verdict::Inconclusive) {
      ++result.inconclusive;
      continue;
    }
    ++result.checked;
    if (outcome.verdict == Verdict::Present) ++result.present;
  }
  co_return result;
}

ExplorationResult RootStoreProber::explore(
    const std::string& device_name, const std::vector<std::string>& ca_names,
    const std::vector<bool>& inconclusive_mask) {
  return common::run_sync(explore_task(device_name, ca_names,
                                       inconclusive_mask));
}

}  // namespace iotls::probe
