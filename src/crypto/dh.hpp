// Finite-field Diffie-Hellman for the (EC)DHE ciphersuites.
//
// The paper classifies DHE/ECDHE identically (both provide perfect forward
// secrecy), so minitls models ECDHE groups as finite-field groups selected by
// a named-group id — the negotiation surface (supported_groups extension,
// suite classification) is exactly preserved. Documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/bignum.hpp"

namespace iotls::crypto {

/// Named DH groups mirroring TLS supported_groups code points.
enum class DhGroup : std::uint16_t {
  Secp256r1 = 0x0017,   // modelled as ffdhe, see header comment
  Secp384r1 = 0x0018,
  X25519 = 0x001d,
  Ffdhe2048 = 0x0100,
};

/// Human-readable group name.
std::string dh_group_name(DhGroup group);

/// The group's prime and generator (fixed safe primes per group).
struct DhParams {
  BigUint p;
  BigUint g;
};

const DhParams& dh_params(DhGroup group);

struct DhKeyPair {
  BigUint secret;      // x
  common::Bytes pub;   // g^x mod p, fixed-width big-endian
};

DhKeyPair dh_generate(common::Rng& rng, DhGroup group);

/// Compute g^xy from own secret and peer public value.
common::Bytes dh_shared_secret(DhGroup group, const BigUint& secret,
                               common::BytesView peer_public);

}  // namespace iotls::crypto
