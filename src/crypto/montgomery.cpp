#include "crypto/montgomery.hpp"

#include <utility>

namespace iotls::crypto {

Montgomery::Montgomery(const BigUint& modulus) : m_(modulus) {
  if (!m_.is_odd()) {
    throw common::CryptoError("Montgomery: modulus must be odd");
  }
  mlimbs_ = m_.limbs_;

  // n0 = -m^-1 mod 2^32 by Newton iteration (5 doublings of precision).
  std::uint32_t inv = mlimbs_[0];
  for (int i = 0; i < 5; ++i) {
    inv *= 2u - mlimbs_[0] * inv;
  }
  n0_ = ~inv + 1u;  // == -inv mod 2^32

  // R^2 mod m with R = 2^(32n): one Algorithm-D division at setup.
  const std::size_t n = mlimbs_.size();
  r2_ = pad(BigUint(1).shift_left(64 * n).mod(m_));
  one_ = pad(BigUint(1).shift_left(32 * n).mod(m_));
}

Montgomery::Limbs Montgomery::pad(const BigUint& a) const {
  Limbs out = a.limbs_;
  out.resize(mlimbs_.size(), 0);
  return out;
}

BigUint Montgomery::unpad(Limbs limbs) {
  BigUint out;
  out.limbs_ = std::move(limbs);
  out.trim();
  return out;
}

Montgomery::Limbs Montgomery::mont_mul(const Limbs& a, const Limbs& b) const {
  // CIOS (coarsely integrated operand scanning): interleave the multiply
  // and the reduction so the accumulator never exceeds n+2 limbs.
  const std::size_t n = mlimbs_.size();
  std::vector<std::uint32_t> t(n + 2, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ai = a[i];
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t cur = t[j] + ai * b[j] + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = t[n] + carry;
    t[n] = static_cast<std::uint32_t>(cur);
    t[n + 1] = static_cast<std::uint32_t>(cur >> 32);

    const std::uint64_t u =
        static_cast<std::uint32_t>(t[0] * n0_);  // t[0]*(-m^-1) mod 2^32
    cur = t[0] + u * mlimbs_[0];
    carry = cur >> 32;
    for (std::size_t j = 1; j < n; ++j) {
      cur = t[j] + u * mlimbs_[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = t[n] + carry;
    t[n - 1] = static_cast<std::uint32_t>(cur);
    t[n] = t[n + 1] + static_cast<std::uint32_t>(cur >> 32);
    t[n + 1] = 0;
  }

  // Result is t[0..n] < 2m; one conditional subtract normalizes to < m.
  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n; i-- > 0;) {
      if (t[i] != mlimbs_[i]) {
        ge = t[i] > mlimbs_[i];
        break;
      }
    }
  }
  t.resize(n);
  if (ge) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t diff =
          static_cast<std::int64_t>(t[i]) - mlimbs_[i] - borrow;
      t[i] = static_cast<std::uint32_t>(diff);
      borrow = diff < 0 ? 1 : 0;
    }
  }
  return t;
}

BigUint Montgomery::to_mont(const BigUint& a) const {
  return unpad(mont_mul(pad(a.mod(m_)), r2_));
}

BigUint Montgomery::from_mont(const BigUint& a) const {
  Limbs one(mlimbs_.size(), 0);
  one[0] = 1;
  return unpad(mont_mul(pad(a), one));
}

BigUint Montgomery::mul(const BigUint& a, const BigUint& b) const {
  return unpad(mont_mul(pad(a), pad(b)));
}

BigUint Montgomery::pow(const BigUint& base, const BigUint& exp) const {
  const std::size_t nbits = exp.bit_length();
  if (nbits == 0) return BigUint(1).mod(m_);  // base^0 = 1 mod m

  // Fixed 4-bit windows: table[w] = base^w in Montgomery form.
  Limbs table[16];
  table[0] = one_;
  table[1] = pad(to_mont(base));
  for (std::size_t w = 2; w < 16; ++w) {
    table[w] = mont_mul(table[w - 1], table[1]);
  }

  Limbs result = one_;
  const std::size_t windows = (nbits + 3) / 4;
  for (std::size_t w = windows; w-- > 0;) {
    if (w + 1 != windows) {
      for (int s = 0; s < 4; ++s) result = mont_mul(result, result);
    }
    unsigned window = 0;
    for (int k = 3; k >= 0; --k) {
      window = (window << 1) |
               static_cast<unsigned>(exp.bit(4 * w + static_cast<std::size_t>(k)));
    }
    if (window != 0) result = mont_mul(result, table[window]);
  }

  // from_mont of the padded accumulator.
  Limbs one(mlimbs_.size(), 0);
  one[0] = 1;
  return unpad(mont_mul(result, one));
}

}  // namespace iotls::crypto
