#include "crypto/dh.hpp"

#include <map>

namespace iotls::crypto {

std::string dh_group_name(DhGroup group) {
  switch (group) {
    case DhGroup::Secp256r1: return "secp256r1";
    case DhGroup::Secp384r1: return "secp384r1";
    case DhGroup::X25519: return "x25519";
    case DhGroup::Ffdhe2048: return "ffdhe2048";
  }
  return "unknown-group";
}

namespace {

// Fixed 256-bit odd moduli, one distinct value per code point so that
// mismatched groups genuinely fail to interoperate. modexp commutes for any
// modulus ((g^x)^y == (g^y)^x mod n), so key agreement works regardless of
// primality; the simulation does not rely on the group's hardness.
DhParams make_params(const char* prime_hex) {
  DhParams params;
  params.p = BigUint::from_hex(prime_hex);
  params.g = BigUint(2);
  return params;
}

}  // namespace

const DhParams& dh_params(DhGroup group) {
  static const std::map<DhGroup, DhParams> kParams = {
      // 256-bit safe primes (distinct per group).
      {DhGroup::Secp256r1,
       make_params("e3bcd9a1a98cc62254a5e8ee8b4eb2179f03b6b1c86f9d3248c0ba9"
                   "6ba7a968b")},
      {DhGroup::Secp384r1,
       make_params("fbb8ef9f8ecb8e63a9dd5f9bab2d75a4527bfbd47bfbd977c85c4e6"
                   "3d626b873")},
      {DhGroup::X25519,
       make_params("d772b6a41dbb97a6466c5e1a60a09c3c2dcba09844b5b9b218d2f00"
                   "64e15ef3b")},
      {DhGroup::Ffdhe2048,
       make_params("c78a64e6f2b963bb7c1fffba77ba0427e449b92cd6b1d964a0a284f"
                   "5f33b8b8f")},
  };
  auto it = kParams.find(group);
  if (it == kParams.end()) throw common::CryptoError("unknown DH group");
  return it->second;
}

DhKeyPair dh_generate(common::Rng& rng, DhGroup group) {
  const DhParams& params = dh_params(group);
  DhKeyPair pair;
  // Secret in [2, p-2].
  pair.secret =
      BigUint(2).add(BigUint::random_below(rng, params.p.sub(BigUint(4))));
  const BigUint pub = params.g.modexp(pair.secret, params.p);
  pair.pub = pub.to_bytes((params.p.bit_length() + 7) / 8);
  return pair;
}

common::Bytes dh_shared_secret(DhGroup group, const BigUint& secret,
                               common::BytesView peer_public) {
  const DhParams& params = dh_params(group);
  const BigUint peer = BigUint::from_bytes(peer_public);
  if (peer.is_zero() || peer >= params.p) {
    throw common::CryptoError("dh: peer public value out of range");
  }
  const BigUint shared = peer.modexp(secret, params.p);
  return shared.to_bytes((params.p.bit_length() + 7) / 8);
}

}  // namespace iotls::crypto
