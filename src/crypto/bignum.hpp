// Arbitrary-precision unsigned integers for the RSA/DHE substrate.
//
// Schoolbook add/sub/mul/div over 32-bit limbs; modular exponentiation for
// odd moduli runs on the Montgomery kernel (crypto/montgomery.hpp), with
// the schoolbook square-and-multiply kept as the even-modulus fallback and
// cross-check oracle. `bench_crypto` and `bench_ablation_keysize` quantify
// the costs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace iotls::crypto {

/// Non-negative big integer, little-endian 32-bit limbs, canonical form
/// (no leading zero limbs; zero is the empty limb vector).
class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t value);

  static BigUint from_hex(std::string_view hex);
  /// Big-endian byte import (leading zeros allowed).
  static BigUint from_bytes(common::BytesView data);

  [[nodiscard]] std::string to_hex() const;
  /// Big-endian byte export, zero-padded/truncation-checked to `width`
  /// (throws if the value does not fit). width==0 → minimal encoding.
  [[nodiscard]] common::Bytes to_bytes(std::size_t width = 0) const;

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const {
    return !limbs_.empty() && (limbs_[0] & 1);
  }
  [[nodiscard]] std::size_t bit_length() const;
  [[nodiscard]] bool bit(std::size_t i) const;

  [[nodiscard]] int compare(const BigUint& other) const;
  bool operator==(const BigUint& other) const { return compare(other) == 0; }
  bool operator!=(const BigUint& other) const { return compare(other) != 0; }
  bool operator<(const BigUint& other) const { return compare(other) < 0; }
  bool operator<=(const BigUint& other) const { return compare(other) <= 0; }
  bool operator>(const BigUint& other) const { return compare(other) > 0; }
  bool operator>=(const BigUint& other) const { return compare(other) >= 0; }

  [[nodiscard]] BigUint add(const BigUint& other) const;
  /// Requires *this >= other.
  [[nodiscard]] BigUint sub(const BigUint& other) const;
  [[nodiscard]] BigUint mul(const BigUint& other) const;
  /// Quotient and remainder; divisor must be nonzero.
  [[nodiscard]] std::pair<BigUint, BigUint> divmod(const BigUint& divisor) const;
  [[nodiscard]] BigUint mod(const BigUint& m) const { return divmod(m).second; }

  [[nodiscard]] BigUint shift_left(std::size_t bits) const;
  [[nodiscard]] BigUint shift_right(std::size_t bits) const;

  /// Modular exponentiation: this^exp mod m (m > 0). Odd moduli (every
  /// RSA/DH modulus) dispatch to Montgomery fixed-window exponentiation;
  /// even moduli fall back to the schoolbook path below.
  [[nodiscard]] BigUint modexp(const BigUint& exp, const BigUint& m) const;

  /// Schoolbook square-and-multiply with a full division per step — the
  /// fallback for even moduli and the cross-check oracle for the
  /// Montgomery kernel (tests, bench_crypto baselines).
  [[nodiscard]] BigUint modexp_plain(const BigUint& exp, const BigUint& m) const;

  /// Greatest common divisor.
  static BigUint gcd(BigUint a, BigUint b);
  /// Modular inverse of a mod m; throws CryptoError if gcd(a,m) != 1.
  static BigUint modinv(const BigUint& a, const BigUint& m);

  /// Uniform value in [0, bound).
  static BigUint random_below(common::Rng& rng, const BigUint& bound);
  /// Random value with exactly `bits` bits (MSB set).
  static BigUint random_bits(common::Rng& rng, std::size_t bits);

  /// Miller-Rabin probable-prime test with `rounds` random bases.
  [[nodiscard]] bool is_probable_prime(common::Rng& rng,
                                       int rounds = 20) const;

  /// Generate a random probable prime with exactly `bits` bits.
  static BigUint generate_prime(common::Rng& rng, std::size_t bits);

  [[nodiscard]] std::uint64_t low_u64() const;

 private:
  friend class Montgomery;  // limb-level access for the reduction kernel
  friend class Mont64;      // 64-bit-limb kernel (batched engine dispatch)

  void trim();

  std::vector<std::uint32_t> limbs_;
};

}  // namespace iotls::crypto
