// AES-128 (FIPS 197) block cipher with CTR mode.
//
// Backs the AES_128/AES_256 suite families in minitls record protection
// (AES-256 suites run AES-128 with an HKDF-condensed key — a documented
// simulation substitution; suite identity and negotiation are unaffected).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace iotls::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAes128KeySize = 16;

/// AES-128 with a fixed expanded key.
class Aes128 {
 public:
  explicit Aes128(common::BytesView key);

  /// Encrypt one 16-byte block in place.
  void encrypt_block(std::uint8_t block[kAesBlockSize]) const;

  /// CTR-mode keystream XOR (encrypt == decrypt). The 16-byte counter block
  /// is nonce (12 bytes) || big-endian 32-bit counter.
  common::Bytes ctr_xor(common::BytesView nonce, std::uint32_t initial_counter,
                        common::BytesView data) const;

 private:
  std::array<std::uint8_t, 176> round_keys_{};
};

}  // namespace iotls::crypto
