#include "crypto/mont64.hpp"

#include <algorithm>

namespace iotls::crypto {

namespace {

using u128 = unsigned __int128;

}  // namespace

Mont64::Mont64(const BigUint& modulus) : m_(modulus) {
  if (!m_.is_odd()) {
    throw common::CryptoError("Mont64: modulus must be odd");
  }

  // Pack the 32-bit BigUint limbs into 64-bit limbs.
  const auto& limbs32 = m_.limbs_;
  mlimbs_.assign((limbs32.size() + 1) / 2, 0);
  for (std::size_t i = 0; i < limbs32.size(); ++i) {
    mlimbs_[i / 2] |= static_cast<std::uint64_t>(limbs32[i]) << (32 * (i % 2));
  }

  // n0 = -m^-1 mod 2^64 by Newton iteration. x = m is correct mod 2^3 for
  // odd m; six doublings of precision reach >= 64 bits.
  std::uint64_t inv = mlimbs_[0];
  for (int i = 0; i < 6; ++i) {
    inv *= 2u - mlimbs_[0] * inv;
  }
  n0_ = ~inv + 1u;  // == -inv mod 2^64

  // R^2 mod m and R mod m with R = 2^(64n): two Algorithm-D divisions at
  // setup, amortised across the context cache's lifetime.
  const std::size_t n = mlimbs_.size();
  r2_ = pad(BigUint(1).shift_left(128 * n).mod(m_));
  one_ = pad(BigUint(1).shift_left(64 * n).mod(m_));

  // Steady-state exponentiation reuses these; pow performs no allocation
  // beyond the one pad() of its base.
  t_.assign(n + 2, 0);
  sq_.assign(2 * n + 2, 0);
  for (auto& entry : table_) entry.assign(n, 0);
  result_.assign(n, 0);
  one_plain_.assign(n, 0);
  one_plain_[0] = 1;
}

Mont64::Limbs Mont64::pad(const BigUint& a) const {
  const auto& limbs32 = a.limbs_;
  Limbs out(mlimbs_.size(), 0);
  for (std::size_t i = 0; i < limbs32.size(); ++i) {
    out[i / 2] |= static_cast<std::uint64_t>(limbs32[i]) << (32 * (i % 2));
  }
  return out;
}

BigUint Mont64::unpad(const Limbs& limbs) const {
  BigUint out;
  out.limbs_.assign(limbs.size() * 2, 0);
  for (std::size_t i = 0; i < limbs.size(); ++i) {
    out.limbs_[2 * i] = static_cast<std::uint32_t>(limbs[i]);
    out.limbs_[2 * i + 1] = static_cast<std::uint32_t>(limbs[i] >> 32);
  }
  out.trim();
  return out;
}

void Mont64::mont_mul(const Limbs& a, const Limbs& b, Limbs& out) const {
  // CIOS over 64-bit limbs: same interleaved multiply/reduce shape as the
  // 32-bit kernel, with an __int128 accumulator carrying the cross terms.
  const std::size_t n = mlimbs_.size();
  std::fill(t_.begin(), t_.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ai = a[i];
    u128 carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const u128 cur = static_cast<u128>(t_[j]) +
                       static_cast<u128>(ai) * b[j] + carry;
      t_[j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    u128 cur = static_cast<u128>(t_[n]) + carry;
    t_[n] = static_cast<std::uint64_t>(cur);
    t_[n + 1] = static_cast<std::uint64_t>(cur >> 64);

    const std::uint64_t u = t_[0] * n0_;  // t[0]*(-m^-1) mod 2^64
    cur = static_cast<u128>(t_[0]) + static_cast<u128>(u) * mlimbs_[0];
    carry = cur >> 64;
    for (std::size_t j = 1; j < n; ++j) {
      cur = static_cast<u128>(t_[j]) + static_cast<u128>(u) * mlimbs_[j] +
            carry;
      t_[j - 1] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    cur = static_cast<u128>(t_[n]) + carry;
    t_[n - 1] = static_cast<std::uint64_t>(cur);
    t_[n] = t_[n + 1] + static_cast<std::uint64_t>(cur >> 64);
    t_[n + 1] = 0;
  }

  // Result is t[0..n] < 2m; one conditional subtract normalizes to < m.
  bool ge = t_[n] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n; i-- > 0;) {
      if (t_[i] != mlimbs_[i]) {
        ge = t_[i] > mlimbs_[i];
        break;
      }
    }
  }
  out.resize(n);
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t mi = mlimbs_[i];
      const std::uint64_t ti = t_[i];
      const std::uint64_t diff = ti - mi - borrow;
      borrow = (ti < mi || (borrow && ti == mi)) ? 1 : 0;
      out[i] = diff;
    }
  } else {
    std::copy(t_.begin(), t_.begin() + static_cast<std::ptrdiff_t>(n),
              out.begin());
  }
}

void Mont64::mont_sqr(const Limbs& a, Limbs& out) const {
  // SOS squaring: full double-width square (off-diagonal products once,
  // then doubled, then the diagonal), followed by a separated Montgomery
  // reduction. ~1.5n^2 limb products against mont_mul's 2n^2.
  const std::size_t n = mlimbs_.size();
  std::fill(sq_.begin(), sq_.end(), 0);

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ai = a[i];
    u128 carry = 0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const u128 cur = static_cast<u128>(sq_[i + j]) +
                       static_cast<u128>(ai) * a[j] + carry;
      sq_[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    for (std::size_t k = i + n; carry != 0; ++k) {
      const u128 cur = static_cast<u128>(sq_[k]) + carry;
      sq_[k] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
  }
  std::uint64_t bit = 0;
  for (std::size_t k = 0; k < 2 * n + 1; ++k) {
    const std::uint64_t cur = sq_[k];
    sq_[k] = (cur << 1) | bit;
    bit = cur >> 63;
  }
  std::uint64_t carry1 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 prod = static_cast<u128>(a[i]) * a[i];
    const u128 lo = static_cast<u128>(sq_[2 * i]) +
                    static_cast<std::uint64_t>(prod) + carry1;
    sq_[2 * i] = static_cast<std::uint64_t>(lo);
    const u128 hi = static_cast<u128>(sq_[2 * i + 1]) +
                    static_cast<std::uint64_t>(prod >> 64) +
                    static_cast<std::uint64_t>(lo >> 64);
    sq_[2 * i + 1] = static_cast<std::uint64_t>(hi);
    carry1 = static_cast<std::uint64_t>(hi >> 64);
  }
  for (std::size_t k = 2 * n; carry1 != 0; ++k) {
    const u128 cur = static_cast<u128>(sq_[k]) + carry1;
    sq_[k] = static_cast<std::uint64_t>(cur);
    carry1 = static_cast<std::uint64_t>(cur >> 64);
  }

  // Separated REDC: clear one low limb per pass; the result lands in
  // sq_[n .. 2n] with at most one extra top limb.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t u = sq_[i] * n0_;
    u128 carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const u128 cur = static_cast<u128>(sq_[i + j]) +
                       static_cast<u128>(u) * mlimbs_[j] + carry;
      sq_[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    for (std::size_t k = i + n; carry != 0; ++k) {
      const u128 cur = static_cast<u128>(sq_[k]) + carry;
      sq_[k] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
  }

  bool ge = sq_[2 * n] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n; i-- > 0;) {
      if (sq_[n + i] != mlimbs_[i]) {
        ge = sq_[n + i] > mlimbs_[i];
        break;
      }
    }
  }
  out.resize(n);
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t mi = mlimbs_[i];
      const std::uint64_t ti = sq_[n + i];
      const std::uint64_t diff = ti - mi - borrow;
      borrow = (ti < mi || (borrow && ti == mi)) ? 1 : 0;
      out[i] = diff;
    }
  } else {
    std::copy(sq_.begin() + static_cast<std::ptrdiff_t>(n),
              sq_.begin() + static_cast<std::ptrdiff_t>(2 * n), out.begin());
  }
}

void Mont64::mont_dbl(Limbs& x) const {
  // x < m, so 2x < 2m: shift up one bit, then at most one subtraction.
  const std::size_t n = mlimbs_.size();
  std::uint64_t bit = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t cur = x[i];
    x[i] = (cur << 1) | bit;
    bit = cur >> 63;
  }

  bool ge = bit != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n; i-- > 0;) {
      if (x[i] != mlimbs_[i]) {
        ge = x[i] > mlimbs_[i];
        break;
      }
    }
  }
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t mi = mlimbs_[i];
      const std::uint64_t xi = x[i];
      const std::uint64_t diff = xi - mi - borrow;
      borrow = (xi < mi || (borrow && xi == mi)) ? 1 : 0;
      x[i] = diff;
    }
  }
}

BigUint Mont64::pow2(const BigUint& exp) const {
  const std::size_t nbits = exp.bit_length();
  if (nbits == 0) return BigUint(1).mod(m_);
  // Seed the ladder with mont(2) and consume the (set) top bit.
  result_ = one_;
  mont_dbl(result_);
  for (std::size_t i = nbits - 1; i-- > 0;) {
    mont_sqr(result_, result_);
    if (exp.bit(i)) mont_dbl(result_);
  }
  mont_mul(result_, one_plain_, result_);
  return unpad(result_);
}

BigUint Mont64::pow(const BigUint& base, const BigUint& exp) const {
  if (base.limbs_.size() == 1 && base.limbs_[0] == 2) return pow2(exp);
  const std::size_t nbits = exp.bit_length();
  if (nbits == 0) return BigUint(1).mod(m_);  // base^0 = 1 mod m

  // Fixed 4-bit windows: table[w] = base^w in Montgomery form.
  table_[0] = one_;
  mont_mul(pad(base.mod(m_)), r2_, table_[1]);  // to_mont(base)
  for (std::size_t w = 2; w < 16; ++w) {
    mont_mul(table_[w - 1], table_[1], table_[w]);
  }

  result_ = one_;
  const std::size_t windows = (nbits + 3) / 4;
  for (std::size_t w = windows; w-- > 0;) {
    if (w + 1 != windows) {
      for (int s = 0; s < 4; ++s) mont_sqr(result_, result_);
    }
    unsigned window = 0;
    for (int k = 3; k >= 0; --k) {
      window =
          (window << 1) |
          static_cast<unsigned>(exp.bit(4 * w + static_cast<std::size_t>(k)));
    }
    if (window != 0) mont_mul(result_, table_[window], result_);
  }

  // from_mont of the accumulator: multiply by plain 1.
  mont_mul(result_, one_plain_, result_);
  return unpad(result_);
}

}  // namespace iotls::crypto
