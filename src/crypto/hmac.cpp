#include "crypto/hmac.hpp"

namespace iotls::crypto {

namespace {

common::Bytes normalize_key(common::BytesView key) {
  common::Bytes k;
  if (key.size() > kSha256BlockSize) {
    k = Sha256::digest_bytes(key);
  } else {
    k.assign(key.begin(), key.end());
  }
  k.resize(kSha256BlockSize, 0);
  return k;
}

}  // namespace

HmacSha256::HmacSha256(common::BytesView key) {
  const common::Bytes k = normalize_key(key);
  common::Bytes ipad(kSha256BlockSize);
  opad_key_.resize(kSha256BlockSize);
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad_key_[i] = k[i] ^ 0x5c;
  }
  inner_.update(ipad);
}

void HmacSha256::update(common::BytesView data) { inner_.update(data); }

common::Bytes HmacSha256::finish() {
  const Sha256Digest inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(opad_key_);
  outer.update(common::BytesView(inner_digest.data(), inner_digest.size()));
  const Sha256Digest d = outer.finish();
  return common::Bytes(d.begin(), d.end());
}

common::Bytes hmac_sha256(common::BytesView key, common::BytesView message) {
  HmacSha256 mac(key);
  mac.update(message);
  return mac.finish();
}

}  // namespace iotls::crypto
