#include "crypto/chacha20.hpp"

namespace iotls::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(common::BytesView key,
                                            common::BytesView nonce,
                                            std::uint32_t counter) {
  if (key.size() != kChaCha20KeySize) {
    throw common::CryptoError("chacha20: key must be 32 bytes");
  }
  if (nonce.size() != kChaCha20NonceSize) {
    throw common::CryptoError("chacha20: nonce must be 12 bytes");
  }

  std::array<std::uint32_t, 16> state{};
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

  std::array<std::uint32_t, 16> working = state;
  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }

  std::array<std::uint8_t, 64> out{};
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t word = working[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(word);
    out[4 * i + 1] = static_cast<std::uint8_t>(word >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(word >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(word >> 24);
  }
  return out;
}

common::Bytes chacha20_xor(common::BytesView key, common::BytesView nonce,
                           std::uint32_t initial_counter,
                           common::BytesView data) {
  if (key.size() != kChaCha20KeySize) {
    throw common::CryptoError("chacha20: key must be 32 bytes");
  }
  if (nonce.size() != kChaCha20NonceSize) {
    throw common::CryptoError("chacha20: nonce must be 12 bytes");
  }
  common::Bytes out(data.begin(), data.end());
  std::uint32_t counter = initial_counter;
  for (std::size_t offset = 0; offset < out.size(); offset += 64, ++counter) {
    const auto ks = chacha20_block(key, nonce, counter);
    const std::size_t n = std::min<std::size_t>(64, out.size() - offset);
    for (std::size_t i = 0; i < n; ++i) out[offset + i] ^= ks[i];
  }
  return out;
}

}  // namespace iotls::crypto
