// HMAC-SHA256 (RFC 2104).
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace iotls::crypto {

/// One-shot HMAC-SHA256.
common::Bytes hmac_sha256(common::BytesView key, common::BytesView message);

/// Incremental HMAC-SHA256 for record MACs.
class HmacSha256 {
 public:
  explicit HmacSha256(common::BytesView key);

  void update(common::BytesView data);
  [[nodiscard]] common::Bytes finish();

 private:
  Sha256 inner_;
  common::Bytes opad_key_;
};

}  // namespace iotls::crypto
