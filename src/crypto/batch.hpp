// Batched crypto dispatch for the session engine (DESIGN.md §14).
//
// An engine tick retires one protocol flight for every in-flight
// connection, so the RSA private ops and DH exponentiations of thousands
// of handshakes arrive back-to-back against a handful of distinct moduli.
// While a `CryptoBatchScope` is active on the calling thread,
// `BigUint::modexp` routes odd-modulus exponentiations through a
// thread-local cache of warm `Mont64` contexts instead of rebuilding a
// 32-bit Montgomery context per call — the "batched crypto dispatch" of
// the engine tick.
//
// Determinism: Mont64 computes exactly base^exp mod m, so a batch-scoped
// exponentiation returns bit-identical values to the unscoped path. The
// scope changes *when* setup work happens (once per modulus per thread
// instead of once per call), never *what* is computed.
//
// The scope nests (the engine tick owns one; drivers may hold an outer
// one) and is strictly thread-local: it never leaks acceleration into
// other threads, and the cache is bounded (kMaxContexts, move-to-front)
// so adversarial modulus churn cannot grow it without bound.
#pragma once

#include <cstddef>

#include "crypto/bignum.hpp"

namespace iotls::crypto {

/// RAII marker: while alive on this thread, odd-modulus modexp dispatches
/// to the cached Mont64 kernel.
class CryptoBatchScope {
 public:
  CryptoBatchScope();
  ~CryptoBatchScope();
  CryptoBatchScope(const CryptoBatchScope&) = delete;
  CryptoBatchScope& operator=(const CryptoBatchScope&) = delete;
};

/// True while at least one CryptoBatchScope is alive on this thread.
[[nodiscard]] bool crypto_batch_active();

/// base^exp mod m via the thread-local Mont64 context cache. Requires an
/// odd modulus; bit-identical to BigUint::modexp's Montgomery path.
[[nodiscard]] BigUint batch_modexp(const BigUint& base, const BigUint& exp,
                                   const BigUint& m);

/// Number of contexts currently cached on this thread (tests).
[[nodiscard]] std::size_t batch_context_count();

/// Drop this thread's cached contexts (tests; values re-derive identically).
void batch_contexts_clear();

}  // namespace iotls::crypto
