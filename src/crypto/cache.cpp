#include "crypto/cache.hpp"

#include <atomic>

#include "common/env.hpp"
#include "obs/metrics.hpp"

namespace iotls::crypto {

namespace {

std::atomic<bool>& cache_switch() {
  static std::atomic<bool> enabled{
      common::strict_env_long("IOTLS_CRYPTO_CACHE", 1) != 0};
  return enabled;
}

}  // namespace

bool crypto_cache_enabled() {
  return cache_switch().load(std::memory_order_relaxed);
}

void set_crypto_cache_enabled(bool enabled) {
  cache_switch().store(enabled, std::memory_order_relaxed);
}

void count_cache_hit(const char* cache_name) {
  if (!obs::metrics_enabled()) return;
  obs::MetricsRegistry::global()
      .counter("iotls_crypto_cache_hits_total",
               "Crypto memoisation hits by cache", "cache", cache_name)
      .inc();
}

void count_cache_miss(const char* cache_name) {
  if (!obs::metrics_enabled()) return;
  obs::MetricsRegistry::global()
      .counter("iotls_crypto_cache_misses_total",
               "Crypto memoisation misses by cache", "cache", cache_name)
      .inc();
}

std::optional<std::uint64_t> DigestCache::lookup(const Key& key) {
  Shard& s = shard(key);
  std::optional<std::uint64_t> out;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.map.find(key);
    if (it != s.map.end()) out = it->second;
  }
  if (out.has_value()) {
    count_cache_hit(name_);
  } else {
    count_cache_miss(name_);
  }
  return out;
}

void DigestCache::store(const Key& key, std::uint64_t value) {
  Shard& s = shard(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.map.size() >= kMaxPerShard) s.map.clear();
  s.map.emplace(key, value);
}

void DigestCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.map.clear();
  }
}

DigestCache& sig_verify_cache() {
  static DigestCache cache("sig_verify");
  return cache;
}

DigestCache& chain_verify_cache() {
  static DigestCache cache("chain_verify");
  return cache;
}

void crypto_caches_clear() {
  sig_verify_cache().clear();
  chain_verify_cache().clear();
  detail::keypair_cache_clear();
}

}  // namespace iotls::crypto
