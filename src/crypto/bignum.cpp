#include "crypto/bignum.hpp"

#include <algorithm>

#include "common/hex.hpp"
#include "crypto/batch.hpp"
#include "crypto/montgomery.hpp"
#include "obs/profile.hpp"

namespace iotls::crypto {

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint::BigUint(std::uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(value));
    if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
  }
}

BigUint BigUint::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_bytes(common::hex_decode(padded));
}

BigUint BigUint::from_bytes(common::BytesView data) {
  BigUint out;
  // Big-endian bytes → little-endian limbs.
  const std::size_t n = data.size();
  out.limbs_.resize((n + 3) / 4, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t byte = data[n - 1 - i];
    out.limbs_[i / 4] |= static_cast<std::uint32_t>(byte) << (8 * (i % 4));
  }
  out.trim();
  return out;
}

std::string BigUint::to_hex() const {
  if (is_zero()) return "0";
  std::string out = common::hex_encode(to_bytes());
  // Strip leading zero nibble if present.
  std::size_t i = 0;
  while (i + 1 < out.size() && out[i] == '0') ++i;
  return out.substr(i);
}

common::Bytes BigUint::to_bytes(std::size_t width) const {
  common::Bytes out;
  const std::size_t byte_len = (bit_length() + 7) / 8;
  const std::size_t n = width == 0 ? std::max<std::size_t>(byte_len, 1) : width;
  if (width != 0 && byte_len > width) {
    throw common::CryptoError("BigUint::to_bytes: value does not fit width");
  }
  out.resize(n, 0);
  for (std::size_t i = 0; i < byte_len; ++i) {
    out[n - 1 - i] = static_cast<std::uint8_t>(
        limbs_[i / 4] >> (8 * (i % 4)));
  }
  return out;
}

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUint::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigUint::compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::add(const BigUint& other) const {
  BigUint out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigUint BigUint::sub(const BigUint& other) const {
  if (*this < other) throw common::CryptoError("BigUint::sub underflow");
  BigUint out;
  out.limbs_.resize(limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) diff -= other.limbs_[i];
    if (diff < 0) {
      diff += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigUint BigUint::mul(const BigUint& other) const {
  if (is_zero() || other.is_zero()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      std::uint64_t cur =
          out.limbs_[i + j] + a * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + other.limbs_.size();
    while (carry) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigUint BigUint::shift_left(std::size_t bits) const {
  if (is_zero()) return BigUint();
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigUint BigUint::shift_right(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

std::pair<BigUint, BigUint> BigUint::divmod(const BigUint& divisor) const {
  if (divisor.is_zero()) throw common::CryptoError("BigUint divide by zero");
  if (*this < divisor) return {BigUint(), *this};

  // Short division for single-limb divisors.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    BigUint quotient;
    quotient.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      quotient.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    quotient.trim();
    return {quotient, BigUint(rem)};
  }

  // Knuth TAOCP vol. 2, Algorithm D (multi-limb division).
  const std::size_t n = divisor.limbs_.size();
  const std::size_t m = limbs_.size() - n;

  // D1: normalize so the divisor's top limb has its MSB set.
  int shift = 0;
  {
    std::uint32_t top = divisor.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  const BigUint u_norm = shift_left(static_cast<std::size_t>(shift));
  const BigUint v_norm = divisor.shift_left(static_cast<std::size_t>(shift));
  std::vector<std::uint32_t> u = u_norm.limbs_;
  u.resize(limbs_.size() + 1, 0);
  const std::vector<std::uint32_t>& v = v_norm.limbs_;

  BigUint quotient;
  quotient.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat.
    const std::uint64_t num =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = num / v[n - 1];
    std::uint64_t rhat = num % v[n - 1];
    while (qhat > 0xFFFFFFFFULL ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat > 0xFFFFFFFFULL) break;
    }

    // D4: multiply-subtract u[j..j+n] -= qhat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t prod = qhat * v[i] + carry;
      carry = prod >> 32;
      const std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                                static_cast<std::int64_t>(prod & 0xFFFFFFFF) +
                                borrow;
      u[i + j] = static_cast<std::uint32_t>(diff);
      borrow = diff >> 32;  // arithmetic shift: 0 or -1
    }
    const std::int64_t diff = static_cast<std::int64_t>(u[j + n]) -
                              static_cast<std::int64_t>(carry) + borrow;
    u[j + n] = static_cast<std::uint32_t>(diff);
    borrow = diff >> 32;

    // D5/D6: if we subtracted too much, add back one divisor.
    if (borrow != 0) {
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<std::uint32_t>(sum);
        c = sum >> 32;
      }
      u[j + n] += static_cast<std::uint32_t>(c);
    }

    quotient.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  quotient.trim();

  BigUint remainder;
  remainder.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  remainder.trim();
  remainder = remainder.shift_right(static_cast<std::size_t>(shift));
  return {quotient, remainder};
}

BigUint BigUint::modexp(const BigUint& exp, const BigUint& m) const {
  const obs::ProfileZone zone("crypto/modexp");
  if (m.is_zero()) throw common::CryptoError("modexp: zero modulus");
  if (m.is_odd()) {
    // Inside an engine tick the thread-local Mont64 context cache is warm;
    // the result is bit-identical either way (batch.hpp).
    if (crypto_batch_active()) return batch_modexp(*this, exp, m);
    return Montgomery(m).pow(*this, exp);
  }
  return modexp_plain(exp, m);
}

BigUint BigUint::modexp_plain(const BigUint& exp, const BigUint& m) const {
  if (m.is_zero()) throw common::CryptoError("modexp: zero modulus");
  BigUint result(1);
  result = result.mod(m);
  BigUint base = mod(m);
  const std::size_t nbits = exp.bit_length();
  for (std::size_t i = 0; i < nbits; ++i) {
    if (exp.bit(i)) result = result.mul(base).mod(m);
    base = base.mul(base).mod(m);
  }
  return result;
}

BigUint BigUint::gcd(BigUint a, BigUint b) {
  while (!b.is_zero()) {
    BigUint r = a.mod(b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUint BigUint::modinv(const BigUint& a, const BigUint& m) {
  // Extended Euclid tracking coefficients as (sign, magnitude) pairs.
  BigUint old_r = a.mod(m), r = m;
  BigUint old_s(1), s(0);
  bool old_s_neg = false, s_neg = false;

  while (!r.is_zero()) {
    auto [q, rem] = old_r.divmod(r);
    old_r = std::move(r);
    r = std::move(rem);

    // new_s = old_s - q*s  (signed arithmetic on magnitudes).
    BigUint qs = q.mul(s);
    BigUint new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      if (old_s >= qs) {
        new_s = old_s.sub(qs);
        new_s_neg = old_s_neg;
      } else {
        new_s = qs.sub(old_s);
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = old_s.add(qs);
      new_s_neg = old_s_neg;
    }
    old_s = std::move(s);
    old_s_neg = s_neg;
    s = std::move(new_s);
    s_neg = new_s_neg;
  }

  if (old_r != BigUint(1)) {
    throw common::CryptoError("modinv: not invertible");
  }
  if (old_s_neg) return m.sub(old_s.mod(m));
  return old_s.mod(m);
}

BigUint BigUint::random_below(common::Rng& rng, const BigUint& bound) {
  if (bound.is_zero()) throw common::CryptoError("random_below(0)");
  const std::size_t bits = bound.bit_length();
  const std::size_t bytes = (bits + 7) / 8;
  while (true) {
    common::Bytes buf = rng.bytes(bytes);
    // Mask excess top bits.
    const std::size_t excess = bytes * 8 - bits;
    if (excess) buf[0] &= static_cast<std::uint8_t>(0xFF >> excess);
    BigUint candidate = from_bytes(buf);
    if (candidate < bound) return candidate;
  }
}

BigUint BigUint::random_bits(common::Rng& rng, std::size_t bits) {
  if (bits == 0) return BigUint();
  const std::size_t bytes = (bits + 7) / 8;
  common::Bytes buf = rng.bytes(bytes);
  const std::size_t excess = bytes * 8 - bits;
  buf[0] &= static_cast<std::uint8_t>(0xFF >> excess);
  buf[0] |= static_cast<std::uint8_t>(0x80 >> excess);  // force MSB
  return from_bytes(buf);
}

bool BigUint::is_probable_prime(common::Rng& rng, int rounds) const {
  static const std::uint32_t kSmallPrimes[] = {
      2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
      53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113};
  if (bit_length() <= 7) {
    const std::uint64_t v = low_u64();
    for (std::uint32_t p : kSmallPrimes) {
      if (v == p) return true;
    }
    if (v < 2) return false;
  }
  for (std::uint32_t p : kSmallPrimes) {
    if (mod(BigUint(p)).is_zero()) return *this == BigUint(p);
  }

  // Write n-1 = d * 2^r.
  const BigUint one(1);
  const BigUint two(2);
  const BigUint n_minus_1 = sub(one);
  BigUint d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d.shift_right(1);
    ++r;
  }

  for (int round = 0; round < rounds; ++round) {
    const BigUint a = two.add(random_below(rng, n_minus_1.sub(two)));
    BigUint x = a.modexp(d, *this);
    if (x == one || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = x.mul(x).mod(*this);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigUint BigUint::generate_prime(common::Rng& rng, std::size_t bits) {
  if (bits < 8) throw common::CryptoError("generate_prime: too few bits");
  while (true) {
    BigUint candidate = random_bits(rng, bits);
    if (!candidate.is_odd()) candidate = candidate.add(BigUint(1));
    if (candidate.is_probable_prime(rng, 12)) return candidate;
  }
}

std::uint64_t BigUint::low_u64() const {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

}  // namespace iotls::crypto
