#include "crypto/kdf.hpp"

#include "crypto/hmac.hpp"

namespace iotls::crypto {

common::Bytes hkdf_extract(common::BytesView salt, common::BytesView ikm) {
  return hmac_sha256(salt, ikm);
}

common::Bytes hkdf_expand(common::BytesView prk, common::BytesView info,
                          std::size_t length) {
  if (length > 255 * kSha256DigestSize) {
    throw common::CryptoError("hkdf_expand output too long");
  }
  common::Bytes out;
  common::Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    HmacSha256 mac(prk);
    mac.update(t);
    mac.update(info);
    mac.update(common::BytesView(&counter, 1));
    t = mac.finish();
    out.insert(out.end(), t.begin(), t.end());
    ++counter;
  }
  out.resize(length);
  return out;
}

common::Bytes hkdf(common::BytesView salt, common::BytesView ikm,
                   std::string_view label, std::size_t length) {
  const common::Bytes prk = hkdf_extract(salt, ikm);
  const common::Bytes info = common::to_bytes(label);
  return hkdf_expand(prk, info, length);
}

}  // namespace iotls::crypto
