// 64-bit-limb Montgomery kernel for the engine's batched crypto dispatch.
//
// The 32-bit `Montgomery` context (montgomery.hpp) rebuilds its reduction
// constants — a Newton inverse plus an Algorithm-D division for R^2 — on
// every `BigUint::modexp` call, and allocates a fresh accumulator per
// multiply. That is fine when handshakes run one at a time, but the session
// engine (src/engine/) retires thousands of private ops per tick against a
// handful of distinct moduli (the server key's two CRT primes and the fixed
// DH group primes). `Mont64` is the warm-path kernel those ticks dispatch
// to (crypto/batch.hpp):
//
//   - 64-bit limbs with an `unsigned __int128` accumulator: half the limb
//     count, a quarter of the multiply-accumulate steps per CIOS pass;
//   - construction once per modulus, cached per thread for the lifetime of
//     the batch scope, so the Newton/R^2 setup amortises to zero;
//   - member-owned scratch (accumulator, window table) sized at
//     construction — steady-state exponentiation performs no allocation.
//
// The kernel computes exactly base^exp mod m — bit-identical to both the
// 32-bit Montgomery path and the schoolbook oracle — so dispatching to it
// never changes a table, trace, or store byte (the determinism contract).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bignum.hpp"

namespace iotls::crypto {

/// Reusable reduction context for one odd modulus, 64-bit limbs.
/// Scratch buffers are member-owned, so a context is single-thread-use;
/// the batch dispatcher caches contexts thread-locally.
class Mont64 {
 public:
  /// Throws CryptoError unless `modulus` is odd (and therefore nonzero).
  explicit Mont64(const BigUint& modulus);

  [[nodiscard]] const BigUint& modulus() const { return m_; }

  /// base^exp mod m (plain-domain in and out), fixed 4-bit windows.
  [[nodiscard]] BigUint pow(const BigUint& base, const BigUint& exp) const;

 private:
  using Limbs = std::vector<std::uint64_t>;

  /// CIOS multiply-reduce: out = a*b*R^-1 mod m over padded limb vectors.
  /// `out` may alias `a` or `b`.
  void mont_mul(const Limbs& a, const Limbs& b, Limbs& out) const;

  /// Squaring-specialised multiply-reduce: out = a*a*R^-1 mod m. A square
  /// needs only half the off-diagonal products (doubled), so the window
  /// ladder's square steps — ~80% of its multiplies — run ~25% cheaper.
  /// `out` may alias `a`.
  void mont_sqr(const Limbs& a, Limbs& out) const;

  /// In-place modular doubling in the Montgomery domain: x = 2x mod m.
  void mont_dbl(Limbs& x) const;

  /// 2^exp mod m via square-and-double: every ladder step is a mont_sqr
  /// plus (on set bits) a near-free mont_dbl — no window table, no
  /// to_mont. Serves the fixed DH generator g = 2 (crypto/dh.cpp).
  [[nodiscard]] BigUint pow2(const BigUint& exp) const;

  [[nodiscard]] Limbs pad(const BigUint& a) const;
  [[nodiscard]] BigUint unpad(const Limbs& limbs) const;

  BigUint m_;
  Limbs mlimbs_;           // modulus, 64-bit limbs, padded width n
  std::uint64_t n0_ = 0;   // -m^-1 mod 2^64
  Limbs r2_;               // R^2 mod m (R = 2^(64n)), padded
  Limbs one_;              // R mod m (Montgomery form of 1), padded
  mutable Limbs t_;        // CIOS accumulator, n+2 limbs
  mutable Limbs sq_;       // mont_sqr double-width accumulator, 2n+2 limbs
  mutable Limbs table_[16];  // window table scratch
  mutable Limbs result_;     // accumulator scratch for pow
  Limbs one_plain_;          // the plain value 1, padded (from_mont factor)
};

}  // namespace iotls::crypto
