#include "crypto/batch.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "crypto/cache.hpp"
#include "crypto/mont64.hpp"

namespace iotls::crypto {

namespace {

thread_local int batch_depth = 0;

// Per-thread warm contexts, most-recently-used first. The working set of
// a tick is tiny — the server key's two CRT primes plus the fixed DH
// group primes — so a linear scan with move-to-front beats any map.
constexpr std::size_t kMaxContexts = 32;

std::vector<std::unique_ptr<Mont64>>& contexts() {
  thread_local std::vector<std::unique_ptr<Mont64>> cache;
  return cache;
}

}  // namespace

CryptoBatchScope::CryptoBatchScope() { ++batch_depth; }

CryptoBatchScope::~CryptoBatchScope() { --batch_depth; }

bool crypto_batch_active() { return batch_depth > 0; }

BigUint batch_modexp(const BigUint& base, const BigUint& exp,
                     const BigUint& m) {
  auto& cache = contexts();
  for (std::size_t i = 0; i < cache.size(); ++i) {
    if (cache[i]->modulus() == m) {
      const auto it = cache.begin() + static_cast<std::ptrdiff_t>(i);
      if (i != 0) std::rotate(cache.begin(), it, it + 1);
      count_cache_hit("batch_mont64");
      return cache.front()->pow(base, exp);
    }
  }
  count_cache_miss("batch_mont64");
  auto context = std::make_unique<Mont64>(m);
  BigUint result = context->pow(base, exp);
  cache.insert(cache.begin(), std::move(context));
  if (cache.size() > kMaxContexts) cache.pop_back();
  return result;
}

std::size_t batch_context_count() { return contexts().size(); }

void batch_contexts_clear() { contexts().clear(); }

}  // namespace iotls::crypto
