#include "crypto/rsa.hpp"

#include <array>
#include <mutex>
#include <unordered_map>

#include "common/rng.hpp"
#include "crypto/cache.hpp"
#include "crypto/sha256.hpp"
#include "obs/profile.hpp"

namespace iotls::crypto {

common::Bytes RsaPublicKey::serialize() const {
  common::ByteWriter w;
  w.vec(n.to_bytes(), 2);
  w.vec(e.to_bytes(), 2);
  return w.take();
}

RsaPublicKey RsaPublicKey::parse(common::BytesView data) {
  common::ByteReader r(data);
  RsaPublicKey key;
  key.n = BigUint::from_bytes(r.vec(2));
  key.e = BigUint::from_bytes(r.vec(2));
  r.expect_end("RsaPublicKey");
  return key;
}

common::Bytes RsaPrivateKey::serialize() const {
  common::ByteWriter w;
  w.vec(n.to_bytes(), 2);
  w.vec(e.to_bytes(), 2);
  w.vec(d.to_bytes(), 2);
  if (has_crt()) {
    w.vec(p.to_bytes(), 2);
    w.vec(q.to_bytes(), 2);
    w.vec(dp.to_bytes(), 2);
    w.vec(dq.to_bytes(), 2);
    w.vec(qinv.to_bytes(), 2);
  }
  return w.take();
}

RsaPrivateKey RsaPrivateKey::parse(common::BytesView data) {
  common::ByteReader r(data);
  RsaPrivateKey key;
  key.n = BigUint::from_bytes(r.vec(2));
  key.e = BigUint::from_bytes(r.vec(2));
  key.d = BigUint::from_bytes(r.vec(2));
  if (!r.empty()) {  // CRT extension; absent in legacy fixtures
    key.p = BigUint::from_bytes(r.vec(2));
    key.q = BigUint::from_bytes(r.vec(2));
    key.dp = BigUint::from_bytes(r.vec(2));
    key.dq = BigUint::from_bytes(r.vec(2));
    key.qinv = BigUint::from_bytes(r.vec(2));
  }
  r.expect_end("RsaPrivateKey");
  return key;
}

namespace {

RsaKeyPair rsa_generate_impl(common::Rng& rng, std::size_t bits) {
  const BigUint e(65537);
  const BigUint one(1);
  while (true) {
    const BigUint p = BigUint::generate_prime(rng, bits / 2);
    const BigUint q = BigUint::generate_prime(rng, bits - bits / 2);
    if (p == q) continue;
    const BigUint n = p.mul(q);
    const BigUint p1 = p.sub(one);
    const BigUint q1 = q.sub(one);
    const BigUint phi = p1.mul(q1);
    if (BigUint::gcd(e, phi) != one) continue;
    const BigUint d = BigUint::modinv(e, phi);
    RsaKeyPair pair;
    pair.priv = RsaPrivateKey{n, e, d, p, q, d.mod(p1), d.mod(q1),
                              BigUint::modinv(q, p)};
    pair.pub = RsaPublicKey{n, e};
    return pair;
  }
}

// ---- keypair cache ----
//
// Keyed by (generator state, modulus bits): the generation is a pure
// function of those, so a hit can return the memoised pair and fast-forward
// the generator to the memoised post-generation state — downstream draws
// (serial prefixes, later CAs on the same stream) are byte-identical either
// way. Sharded + mutex-guarded: sandboxes generate concurrently.

struct KeypairKey {
  common::Rng::State state;
  std::size_t bits;

  bool operator==(const KeypairKey& other) const = default;
};

struct KeypairKeyHash {
  std::size_t operator()(const KeypairKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint64_t word : k.state) {
      h = (h ^ word) * 0x100000001b3ULL;
    }
    h = (h ^ k.bits) * 0x100000001b3ULL;
    return static_cast<std::size_t>(h);
  }
};

struct KeypairEntry {
  RsaKeyPair pair;
  common::Rng::State post_state;
};

struct KeypairShard {
  std::mutex mutex;
  std::unordered_map<KeypairKey, KeypairEntry, KeypairKeyHash> map;
};

constexpr std::size_t kKeypairShards = 16;
constexpr std::size_t kKeypairMaxPerShard = 1 << 14;

std::array<KeypairShard, kKeypairShards>& keypair_shards() {
  static std::array<KeypairShard, kKeypairShards> shards;
  return shards;
}

KeypairShard& keypair_shard(const KeypairKey& key) {
  return keypair_shards()[KeypairKeyHash{}(key) % kKeypairShards];
}

}  // namespace

namespace detail {
void keypair_cache_clear() {
  for (KeypairShard& shard : keypair_shards()) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
}
}  // namespace detail

RsaKeyPair rsa_generate(common::Rng& rng, std::size_t bits) {
  if (bits < 128) throw common::CryptoError("rsa_generate: modulus too small");
  if (!crypto_cache_enabled()) return rsa_generate_impl(rng, bits);

  const KeypairKey key{rng.state(), bits};
  KeypairShard& shard = keypair_shard(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      rng.set_state(it->second.post_state);
      count_cache_hit("keypair");
      return it->second.pair;
    }
  }
  count_cache_miss("keypair");
  RsaKeyPair pair = rsa_generate_impl(rng, bits);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.map.size() >= kKeypairMaxPerShard) shard.map.clear();
    shard.map.emplace(key, KeypairEntry{pair, rng.state()});
  }
  return pair;
}

BigUint rsa_private_op(const RsaPrivateKey& key, const BigUint& c) {
  const obs::ProfileZone zone("crypto/rsa_private_op");
  if (!key.has_crt()) return c.modexp(key.d, key.n);
  // Garner: m1 = c^dp mod p, m2 = c^dq mod q,
  //         m  = m2 + q * (qinv * (m1 - m2) mod p).
  const BigUint m1 = c.modexp(key.dp, key.p);
  const BigUint m2 = c.modexp(key.dq, key.q);
  const BigUint m2p = m2.mod(key.p);
  const BigUint diff =
      m1 >= m2p ? m1.sub(m2p) : m1.add(key.p).sub(m2p);
  const BigUint h = key.qinv.mul(diff).mod(key.p);
  return m2.add(h.mul(key.q));
}

namespace {

// EMSA-PKCS1-v1_5-style encoding: 0x00 0x01 FF..FF 0x00 || sha256-label || digest
common::Bytes emsa_encode(common::BytesView message, std::size_t em_len) {
  static constexpr std::uint8_t kDigestLabel[] = {'s', 'h', 'a', '2', '5', '6'};
  const Sha256Digest digest = Sha256::digest(message);
  const std::size_t t_len = sizeof(kDigestLabel) + digest.size();
  if (em_len < t_len + 11) {
    throw common::CryptoError("rsa: modulus too small for digest encoding");
  }
  common::Bytes em(em_len, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(std::begin(kDigestLabel), std::end(kDigestLabel),
            em.end() - static_cast<std::ptrdiff_t>(t_len));
  std::copy(digest.begin(), digest.end(),
            em.end() - static_cast<std::ptrdiff_t>(digest.size()));
  return em;
}

bool rsa_verify_impl(const RsaPublicKey& key, common::BytesView message,
                     common::BytesView signature, std::size_t k) {
  const BigUint s = BigUint::from_bytes(signature);
  if (s >= key.n) return false;
  const BigUint m = s.modexp(key.e, key.n);
  common::Bytes em;
  try {
    em = m.to_bytes(k);
  } catch (const common::CryptoError&) {
    return false;
  }
  const common::Bytes expected = emsa_encode(message, k);
  return common::constant_time_equal(em, expected);
}

}  // namespace

common::Bytes rsa_sign(const RsaPrivateKey& key, common::BytesView message) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  const common::Bytes em = emsa_encode(message, k);
  const BigUint m = BigUint::from_bytes(em);
  const BigUint s = rsa_private_op(key, m);
  return s.to_bytes(k);
}

bool rsa_verify(const RsaPublicKey& key, common::BytesView message,
                common::BytesView signature) {
  // Signatures are exactly k bytes (rsa_sign zero-pads to the modulus
  // width, so a leading zero byte is legitimate); any other length —
  // including a non-minimal k+1-byte encoding with an extra leading zero —
  // is rejected before touching the bignum layer. For the accepted width,
  // BigUint::from_bytes ∘ to_bytes(k) round-trips the buffer bit-for-bit,
  // so the cache key below and the modexp below see the same canonical
  // value regardless of leading zeros.
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  if (signature.size() != k) return false;

  if (!crypto_cache_enabled()) {
    return rsa_verify_impl(key, message, signature, k);
  }

  Sha256 h;
  common::ByteWriter prefix;
  prefix.vec(key.n.to_bytes(), 2);
  prefix.vec(key.e.to_bytes(), 2);
  h.update(prefix.bytes());
  const Sha256Digest msg_digest = Sha256::digest(message);
  const Sha256Digest sig_digest = Sha256::digest(signature);
  h.update(msg_digest);
  h.update(sig_digest);
  const DigestCache::Key cache_key = h.finish();

  if (const auto cached = sig_verify_cache().lookup(cache_key)) {
    return *cached != 0;
  }
  const bool ok = rsa_verify_impl(key, message, signature, k);
  sig_verify_cache().store(cache_key, ok ? 1 : 0);
  return ok;
}

common::Bytes rsa_encrypt(const RsaPublicKey& key, common::Rng& rng,
                          common::BytesView plaintext) {
  const std::size_t k = key.modulus_bytes();
  if (plaintext.size() + 11 > k) {
    throw common::CryptoError("rsa_encrypt: message too long");
  }
  common::Bytes em(k, 0);
  em[0] = 0x00;
  em[1] = 0x02;
  const std::size_t pad_len = k - 3 - plaintext.size();
  for (std::size_t i = 0; i < pad_len; ++i) {
    std::uint8_t b = 0;
    while (b == 0) b = static_cast<std::uint8_t>(rng.range(1, 255));
    em[2 + i] = b;
  }
  em[2 + pad_len] = 0x00;
  std::copy(plaintext.begin(), plaintext.end(),
            em.begin() + static_cast<std::ptrdiff_t>(3 + pad_len));
  const BigUint m = BigUint::from_bytes(em);
  return m.modexp(key.e, key.n).to_bytes(k);
}

std::optional<common::Bytes> rsa_decrypt(const RsaPrivateKey& key,
                                         common::BytesView ciphertext) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  if (ciphertext.size() != k) return std::nullopt;
  const BigUint c = BigUint::from_bytes(ciphertext);
  if (c >= key.n) return std::nullopt;
  common::Bytes em;
  try {
    em = rsa_private_op(key, c).to_bytes(k);
  } catch (const common::CryptoError&) {
    return std::nullopt;
  }
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) return std::nullopt;
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) ++sep;
  if (sep == em.size() || sep < 10) return std::nullopt;
  return common::Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep + 1),
                       em.end());
}

}  // namespace iotls::crypto
