#include "crypto/rsa.hpp"

#include "crypto/sha256.hpp"

namespace iotls::crypto {

common::Bytes RsaPublicKey::serialize() const {
  common::ByteWriter w;
  w.vec(n.to_bytes(), 2);
  w.vec(e.to_bytes(), 2);
  return w.take();
}

RsaPublicKey RsaPublicKey::parse(common::BytesView data) {
  common::ByteReader r(data);
  RsaPublicKey key;
  key.n = BigUint::from_bytes(r.vec(2));
  key.e = BigUint::from_bytes(r.vec(2));
  r.expect_end("RsaPublicKey");
  return key;
}

RsaKeyPair rsa_generate(common::Rng& rng, std::size_t bits) {
  if (bits < 128) throw common::CryptoError("rsa_generate: modulus too small");
  const BigUint e(65537);
  const BigUint one(1);
  while (true) {
    const BigUint p = BigUint::generate_prime(rng, bits / 2);
    const BigUint q = BigUint::generate_prime(rng, bits - bits / 2);
    if (p == q) continue;
    const BigUint n = p.mul(q);
    const BigUint phi = p.sub(one).mul(q.sub(one));
    if (BigUint::gcd(e, phi) != one) continue;
    const BigUint d = BigUint::modinv(e, phi);
    RsaKeyPair pair;
    pair.priv = RsaPrivateKey{n, e, d};
    pair.pub = RsaPublicKey{n, e};
    return pair;
  }
}

namespace {

// EMSA-PKCS1-v1_5-style encoding: 0x00 0x01 FF..FF 0x00 || sha256-label || digest
common::Bytes emsa_encode(common::BytesView message, std::size_t em_len) {
  static constexpr std::uint8_t kDigestLabel[] = {'s', 'h', 'a', '2', '5', '6'};
  const Sha256Digest digest = Sha256::digest(message);
  const std::size_t t_len = sizeof(kDigestLabel) + digest.size();
  if (em_len < t_len + 11) {
    throw common::CryptoError("rsa: modulus too small for digest encoding");
  }
  common::Bytes em(em_len, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(std::begin(kDigestLabel), std::end(kDigestLabel),
            em.end() - static_cast<std::ptrdiff_t>(t_len));
  std::copy(digest.begin(), digest.end(),
            em.end() - static_cast<std::ptrdiff_t>(digest.size()));
  return em;
}

}  // namespace

common::Bytes rsa_sign(const RsaPrivateKey& key, common::BytesView message) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  const common::Bytes em = emsa_encode(message, k);
  const BigUint m = BigUint::from_bytes(em);
  const BigUint s = m.modexp(key.d, key.n);
  return s.to_bytes(k);
}

bool rsa_verify(const RsaPublicKey& key, common::BytesView message,
                common::BytesView signature) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  if (signature.size() != k) return false;
  const BigUint s = BigUint::from_bytes(signature);
  if (s >= key.n) return false;
  const BigUint m = s.modexp(key.e, key.n);
  common::Bytes em;
  try {
    em = m.to_bytes(k);
  } catch (const common::CryptoError&) {
    return false;
  }
  const common::Bytes expected = emsa_encode(message, k);
  return common::constant_time_equal(em, expected);
}

common::Bytes rsa_encrypt(const RsaPublicKey& key, common::Rng& rng,
                          common::BytesView plaintext) {
  const std::size_t k = key.modulus_bytes();
  if (plaintext.size() + 11 > k) {
    throw common::CryptoError("rsa_encrypt: message too long");
  }
  common::Bytes em(k, 0);
  em[0] = 0x00;
  em[1] = 0x02;
  const std::size_t pad_len = k - 3 - plaintext.size();
  for (std::size_t i = 0; i < pad_len; ++i) {
    std::uint8_t b = 0;
    while (b == 0) b = static_cast<std::uint8_t>(rng.range(1, 255));
    em[2 + i] = b;
  }
  em[2 + pad_len] = 0x00;
  std::copy(plaintext.begin(), plaintext.end(),
            em.begin() + static_cast<std::ptrdiff_t>(3 + pad_len));
  const BigUint m = BigUint::from_bytes(em);
  return m.modexp(key.e, key.n).to_bytes(k);
}

std::optional<common::Bytes> rsa_decrypt(const RsaPrivateKey& key,
                                         common::BytesView ciphertext) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  if (ciphertext.size() != k) return std::nullopt;
  const BigUint c = BigUint::from_bytes(ciphertext);
  if (c >= key.n) return std::nullopt;
  common::Bytes em;
  try {
    em = c.modexp(key.d, key.n).to_bytes(k);
  } catch (const common::CryptoError&) {
    return std::nullopt;
  }
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) return std::nullopt;
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) ++sep;
  if (sep == em.size() || sep < 10) return std::nullopt;
  return common::Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep + 1),
                       em.end());
}

}  // namespace iotls::crypto
