// HKDF (RFC 5869) over HMAC-SHA256, plus the minitls key schedule helpers.
//
// minitls derives its master secret and record keys through HKDF regardless
// of negotiated version — a simplification relative to the separate TLS<=1.2
// PRF, documented in DESIGN.md; the negotiation surface (what the study
// measures) is unaffected.
#pragma once

#include <string_view>

#include "common/bytes.hpp"

namespace iotls::crypto {

/// HKDF-Extract.
common::Bytes hkdf_extract(common::BytesView salt, common::BytesView ikm);

/// HKDF-Expand to `length` bytes (length <= 255*32).
common::Bytes hkdf_expand(common::BytesView prk, common::BytesView info,
                          std::size_t length);

/// Convenience: extract-then-expand with a string label.
common::Bytes hkdf(common::BytesView salt, common::BytesView ikm,
                   std::string_view label, std::size_t length);

}  // namespace iotls::crypto
