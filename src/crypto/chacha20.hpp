// ChaCha20 stream cipher (RFC 8439 block function).
//
// Backs the CHACHA20_POLY1305 ciphersuites; integrity in minitls is provided
// by an encrypt-then-HMAC construction (see tls/secrets) rather than
// Poly1305 — a documented simplification that leaves all negotiation and
// classification behaviour identical.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace iotls::crypto {

inline constexpr std::size_t kChaCha20KeySize = 32;
inline constexpr std::size_t kChaCha20NonceSize = 12;

/// XOR `data` with the ChaCha20 keystream (encrypt == decrypt).
common::Bytes chacha20_xor(common::BytesView key, common::BytesView nonce,
                           std::uint32_t initial_counter,
                           common::BytesView data);

/// Raw 64-byte block function, exposed for test vectors.
std::array<std::uint8_t, 64> chacha20_block(common::BytesView key,
                                            common::BytesView nonce,
                                            std::uint32_t counter);

}  // namespace iotls::crypto
