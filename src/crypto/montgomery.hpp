// Montgomery-form modular arithmetic for odd moduli.
//
// The hot path of every experiment is modular exponentiation: RSA signing
// during issuance and handshakes, verification in the x509 pipeline, DHE key
// agreement, and Miller-Rabin inside key generation. The schoolbook
// `BigUint::modexp_plain` performs a full Knuth Algorithm-D division after
// every multiply; Montgomery reduction replaces each division with a second
// multiply-accumulate pass over the limbs, and a fixed 4-bit window cuts the
// multiply count by ~1.6x on random exponents. `BigUint::modexp` dispatches
// here for odd moduli (every RSA/DH modulus) and keeps the schoolbook path
// as the fallback for even moduli and as a cross-check oracle in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bignum.hpp"

namespace iotls::crypto {

/// Reduction context for one odd modulus: precomputes -m^-1 mod 2^32 and
/// R^2 mod m (R = 2^(32*limbs)). Construction costs one division; every
/// subsequent multiply is division-free. Immutable after construction, so
/// a context may be shared across threads.
class Montgomery {
 public:
  /// Throws CryptoError unless `modulus` is odd (and therefore nonzero).
  explicit Montgomery(const BigUint& modulus);

  [[nodiscard]] const BigUint& modulus() const { return m_; }

  /// Convert into Montgomery form: a*R mod m.
  [[nodiscard]] BigUint to_mont(const BigUint& a) const;
  /// Convert out of Montgomery form: a*R^-1 mod m.
  [[nodiscard]] BigUint from_mont(const BigUint& a) const;
  /// Montgomery product of two Montgomery-form values: a*b*R^-1 mod m.
  [[nodiscard]] BigUint mul(const BigUint& a, const BigUint& b) const;

  /// base^exp mod m (plain-domain in and out), fixed 4-bit windows.
  [[nodiscard]] BigUint pow(const BigUint& base, const BigUint& exp) const;

 private:
  using Limbs = std::vector<std::uint32_t>;

  /// CIOS multiply-reduce over limb vectors padded to the modulus width;
  /// returns a padded, fully reduced (< m) vector.
  [[nodiscard]] Limbs mont_mul(const Limbs& a, const Limbs& b) const;
  [[nodiscard]] Limbs pad(const BigUint& a) const;
  [[nodiscard]] static BigUint unpad(Limbs limbs);

  BigUint m_;
  Limbs mlimbs_;
  std::uint32_t n0_ = 0;  // -m^-1 mod 2^32
  Limbs r2_;              // R^2 mod m, padded
  Limbs one_;             // R mod m (the Montgomery form of 1), padded
};

}  // namespace iotls::crypto
