// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for certificate digests (signatures are RSA over SHA-256 of the TBS
// bytes), TLS transcript hashes, fingerprint hashes, and the HKDF that feeds
// record protection.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace iotls::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();

  void update(common::BytesView data);
  /// Finalize; the object must not be updated afterwards.
  [[nodiscard]] Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest digest(common::BytesView data);
  static common::Bytes digest_bytes(common::BytesView data);

 private:
  void process_block(const std::uint8_t* block);
  /// Compress `count` consecutive blocks directly from the input span.
  void process_blocks(const std::uint8_t* data, std::size_t count);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kSha256BlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace iotls::crypto
