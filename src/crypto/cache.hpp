// Process-wide, seed-deterministic crypto memoisation.
//
// The study re-verifies the same certificate chains and re-generates the
// same deterministic keypairs thousands of times (per-device sandboxes each
// rebuild the cloud farm; the passive generator walks 24 monthly snapshots
// over the same PKI). These caches amortise that work WITHOUT changing any
// output: every cached value equals the value the uncached computation
// would produce, so tables/figures/traces are byte-identical with caches on
// or off, at any thread count.
//
//   - signature-verification cache (rsa.cpp): keyed by a SHA-256 over
//     (modulus, exponent, message digest, signature digest).
//   - chain-verification cache (x509/verify.cpp): keyed by chain bytes +
//     resolved issuer keys + verification policy + the simtime validity
//     window (each cert's before/within/after state at `now`), so expiry
//     semantics are unchanged.
//   - keypair cache (rsa.cpp): keyed by the generator state + modulus bits;
//     a hit replays the generator's consumption exactly via Rng snapshots.
//
// All tables are sharded and mutex-guarded; hit/miss counts export as
// iotls_crypto_cache_{hits,misses}_total{cache=...} through the metrics
// registry. The IOTLS_CRYPTO_CACHE env knob (strict parsing, 0 = disable)
// seeds the master switch; tests flip it with set_crypto_cache_enabled().
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace iotls::crypto {

/// Master switch. Defaults from IOTLS_CRYPTO_CACHE (unset/nonzero = on).
bool crypto_cache_enabled();
void set_crypto_cache_enabled(bool enabled);

/// Drop every cached entry (signature, chain, keypair). Tests use this to
/// exercise cold/warm behaviour; values re-derive identically afterwards.
void crypto_caches_clear();

/// Register a hit/miss with the iotls_crypto_cache_* counter families
/// (no-op while obs::metrics_enabled() is off, matching the other
/// instrumentation sites).
void count_cache_hit(const char* cache_name);
void count_cache_miss(const char* cache_name);

/// A sharded digest -> u64 memo table. Shard picked from a key byte not
/// used by the in-shard hash; each shard is generational — when it reaches
/// capacity it is cleared rather than evicted entry-by-entry, which keeps
/// memory bounded on workloads with unbounded distinct keys (e.g. SKE
/// signatures over per-connection randoms).
class DigestCache {
 public:
  using Key = std::array<std::uint8_t, 32>;

  explicit DigestCache(const char* name) : name_(name) {}

  std::optional<std::uint64_t> lookup(const Key& key);
  void store(const Key& key, std::uint64_t value);
  void clear();

 private:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kMaxPerShard = 1 << 15;

  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) v = (v << 8) | k[static_cast<std::size_t>(i)];
      return static_cast<std::size_t>(v);
    }
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<Key, std::uint64_t, KeyHash> map;
  };

  Shard& shard(const Key& key) { return shards_[key[8] % kShards]; }

  const char* name_;
  std::array<Shard, kShards> shards_;
};

/// The shared instances. Lookup/store already count hits/misses under the
/// instance's name; callers only gate on crypto_cache_enabled().
DigestCache& sig_verify_cache();
DigestCache& chain_verify_cache();

namespace detail {
/// Implemented in rsa.cpp (the keypair table's value type lives there);
/// called by crypto_caches_clear().
void keypair_cache_clear();
}  // namespace detail

}  // namespace iotls::crypto
