// RSA key generation, PKCS#1-v1.5-style signing/verification and raw
// encryption for the RSA key-exchange ciphersuites.
//
// Signatures are what make the paper's root-store side channel *real*: a
// spoofed CA certificate carries the genuine subject/issuer/serial of a root
// but is signed with a different key, so verification fails with a true
// signature error rather than an unknown-issuer error.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/bignum.hpp"

namespace iotls::crypto {

/// Default simulation modulus size. Large enough that signature forgery is
/// not accidental, small enough that generating ~250 CA keys stays fast.
inline constexpr std::size_t kDefaultRsaBits = 512;

struct RsaPublicKey {
  BigUint n;  // modulus
  BigUint e;  // public exponent

  [[nodiscard]] std::size_t modulus_bytes() const {
    return (n.bit_length() + 7) / 8;
  }
  [[nodiscard]] common::Bytes serialize() const;
  static RsaPublicKey parse(common::BytesView data);
  bool operator==(const RsaPublicKey& other) const = default;
};

struct RsaPrivateKey {
  BigUint n;
  BigUint e;
  BigUint d;

  // CRT components (populated by rsa_generate; empty on keys parsed from a
  // legacy n||e||d serialization). With them, private-key operations run as
  // two half-size Montgomery exponentiations recombined by Garner's formula
  // — ~4x fewer limb multiplies than a full-width exponentiation.
  BigUint p;     // first prime factor
  BigUint q;     // second prime factor
  BigUint dp;    // d mod (p-1)
  BigUint dq;    // d mod (q-1)
  BigUint qinv;  // q^-1 mod p

  [[nodiscard]] bool has_crt() const { return !p.is_zero() && !q.is_zero(); }
  [[nodiscard]] RsaPublicKey public_key() const { return {n, e}; }

  /// n||e||d (each 2-byte length prefixed) followed, when present, by the
  /// five CRT components. parse() accepts both forms, so fixtures written
  /// before the CRT extension still load (has_crt() is then false and
  /// private ops fall back to the plain d-exponent path).
  [[nodiscard]] common::Bytes serialize() const;
  static RsaPrivateKey parse(common::BytesView data);
  bool operator==(const RsaPrivateKey& other) const = default;
};

struct RsaKeyPair {
  RsaPrivateKey priv;
  RsaPublicKey pub;
};

/// Generate an RSA keypair with the given modulus size. Memoised through
/// the process-wide keypair cache (crypto/cache.hpp): results are keyed by
/// the generator's state, so repeated constructions from the same derived
/// seed (per-device sandbox rebuilds, repeated CA universes in tests) reuse
/// one generation while consuming `rng` exactly as an uncached call would.
RsaKeyPair rsa_generate(common::Rng& rng, std::size_t bits = kDefaultRsaBits);

/// The RSA private-key primitive c^d mod n, via CRT when the key carries
/// its factorisation (Garner recombination) and the plain d-exponent path
/// otherwise. Exposed for bench_crypto and the CRT-vs-plain tests.
BigUint rsa_private_op(const RsaPrivateKey& key, const BigUint& c);

/// Sign SHA-256(message) with EMSA-PKCS1-v1_5-style padding.
common::Bytes rsa_sign(const RsaPrivateKey& key, common::BytesView message);

/// Verify a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& key, common::BytesView message,
                common::BytesView signature);

/// Raw RSA encryption of a short secret (for the RSA key exchange).
/// Pads with random nonzero bytes, PKCS#1-v1.5 type 2 style.
common::Bytes rsa_encrypt(const RsaPublicKey& key, common::Rng& rng,
                          common::BytesView plaintext);

/// Decrypt; returns nullopt if padding is malformed.
std::optional<common::Bytes> rsa_decrypt(const RsaPrivateKey& key,
                                         common::BytesView ciphertext);

}  // namespace iotls::crypto
