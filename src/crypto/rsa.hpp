// RSA key generation, PKCS#1-v1.5-style signing/verification and raw
// encryption for the RSA key-exchange ciphersuites.
//
// Signatures are what make the paper's root-store side channel *real*: a
// spoofed CA certificate carries the genuine subject/issuer/serial of a root
// but is signed with a different key, so verification fails with a true
// signature error rather than an unknown-issuer error.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/bignum.hpp"

namespace iotls::crypto {

/// Default simulation modulus size. Large enough that signature forgery is
/// not accidental, small enough that generating ~250 CA keys stays fast.
inline constexpr std::size_t kDefaultRsaBits = 512;

struct RsaPublicKey {
  BigUint n;  // modulus
  BigUint e;  // public exponent

  [[nodiscard]] std::size_t modulus_bytes() const {
    return (n.bit_length() + 7) / 8;
  }
  [[nodiscard]] common::Bytes serialize() const;
  static RsaPublicKey parse(common::BytesView data);
  bool operator==(const RsaPublicKey& other) const = default;
};

struct RsaPrivateKey {
  BigUint n;
  BigUint e;
  BigUint d;

  [[nodiscard]] RsaPublicKey public_key() const { return {n, e}; }
};

struct RsaKeyPair {
  RsaPrivateKey priv;
  RsaPublicKey pub;
};

/// Generate an RSA keypair with the given modulus size.
RsaKeyPair rsa_generate(common::Rng& rng, std::size_t bits = kDefaultRsaBits);

/// Sign SHA-256(message) with EMSA-PKCS1-v1_5-style padding.
common::Bytes rsa_sign(const RsaPrivateKey& key, common::BytesView message);

/// Verify a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& key, common::BytesView message,
                common::BytesView signature);

/// Raw RSA encryption of a short secret (for the RSA key exchange).
/// Pads with random nonzero bytes, PKCS#1-v1.5 type 2 style.
common::Bytes rsa_encrypt(const RsaPublicKey& key, common::Rng& rng,
                          common::BytesView plaintext);

/// Decrypt; returns nullopt if padding is malformed.
std::optional<common::Bytes> rsa_decrypt(const RsaPrivateKey& key,
                                         common::BytesView ciphertext);

}  // namespace iotls::crypto
