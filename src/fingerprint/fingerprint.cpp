#include "fingerprint/fingerprint.hpp"

#include <cstdio>

#include "common/hex.hpp"
#include "crypto/sha256.hpp"

namespace iotls::fingerprint {

namespace {

void append_list(std::string& out, const std::vector<std::uint16_t>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += '-';
    out += std::to_string(values[i]);
  }
}

}  // namespace

Fingerprint fingerprint_from_parts(
    std::uint16_t legacy_version,
    const std::vector<std::uint16_t>& cipher_suites,
    const std::vector<std::uint16_t>& extension_types,
    const std::vector<std::uint16_t>& groups,
    const std::vector<std::uint16_t>& signature_algorithms) {
  Fingerprint fp;
  fp.text = std::to_string(legacy_version);
  fp.text += ',';
  append_list(fp.text, cipher_suites);
  fp.text += ',';
  append_list(fp.text, extension_types);
  fp.text += ',';
  append_list(fp.text, groups);
  fp.text += ',';
  append_list(fp.text, signature_algorithms);

  const auto digest = crypto::Sha256::digest(common::to_bytes(fp.text));
  fp.hash = common::hex_encode(common::BytesView(digest.data(), 16));
  return fp;
}

Fingerprint fingerprint_of(const tls::ClientHello& hello) {
  std::vector<std::uint16_t> ext_types;
  for (const auto& ext : hello.extensions) ext_types.push_back(ext.type);

  std::vector<std::uint16_t> groups;
  const auto* groups_ext = tls::find_extension(
      hello.extensions, tls::ExtensionType::SupportedGroups);
  if (groups_ext != nullptr) {
    for (const auto g : tls::parse_supported_groups(groups_ext->payload)) {
      groups.push_back(static_cast<std::uint16_t>(g));
    }
  }
  std::vector<std::uint16_t> sigalgs;
  const auto* sigs_ext = tls::find_extension(
      hello.extensions, tls::ExtensionType::SignatureAlgorithms);
  if (sigs_ext != nullptr) {
    for (const auto s : tls::parse_signature_algorithms(sigs_ext->payload)) {
      sigalgs.push_back(static_cast<std::uint16_t>(s));
    }
  }
  return fingerprint_from_parts(
      static_cast<std::uint16_t>(hello.legacy_version), hello.cipher_suites,
      ext_types, groups, sigalgs);
}

Fingerprint fingerprint_of(const net::HandshakeRecord& record) {
  // The gateway stored the raw legacy version only via advertised_versions;
  // reconstruct it the way the hello emitted it (max pre-1.3 version).
  tls::ProtocolVersion legacy = tls::ProtocolVersion::Tls1_2;
  if (!record.advertised_versions.empty()) {
    legacy = std::min(record.max_advertised_version(),
                      tls::ProtocolVersion::Tls1_2);
  }
  return fingerprint_from_parts(static_cast<std::uint16_t>(legacy),
                                record.advertised_suites,
                                record.extension_types,
                                record.advertised_groups,
                                record.advertised_sigalgs);
}

Fingerprint fingerprint_of_config(const tls::ClientConfig& config) {
  common::Rng rng(0);  // randomness does not affect the fingerprint
  const auto hello =
      tls::build_client_hello(config, "fingerprint.invalid", rng);
  return fingerprint_of(hello);
}

}  // namespace iotls::fingerprint
