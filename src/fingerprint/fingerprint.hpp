// TLS client fingerprinting (JA3-style).
//
// A fingerprint is a permutation of the ClientHello's static features —
// version, ciphersuites, extension types, groups, signature algorithms
// (§2). Two connections share a fingerprint iff they come from the same
// *TLS instance* (implementation + configuration), which is how §5.3 maps
// connections to shared libraries across devices.
#pragma once

#include <string>
#include <vector>

#include "net/capture.hpp"
#include "tls/client.hpp"
#include "tls/messages.hpp"

namespace iotls::fingerprint {

struct Fingerprint {
  /// Human-readable canonical form:
  /// "771,4865-49195,0-10-11-13,29-23,1027" (JA3 field order).
  std::string text;
  /// Truncated SHA-256 of the text (32 hex chars, like JA3's MD5 width).
  std::string hash;

  bool operator==(const Fingerprint&) const = default;
  auto operator<=>(const Fingerprint&) const = default;
};

/// Build from raw ClientHello features.
Fingerprint fingerprint_from_parts(
    std::uint16_t legacy_version,
    const std::vector<std::uint16_t>& cipher_suites,
    const std::vector<std::uint16_t>& extension_types,
    const std::vector<std::uint16_t>& groups,
    const std::vector<std::uint16_t>& signature_algorithms);

/// Fingerprint a parsed ClientHello.
Fingerprint fingerprint_of(const tls::ClientHello& hello);

/// Fingerprint a captured connection (the gateway stores the same fields).
Fingerprint fingerprint_of(const net::HandshakeRecord& record);

/// Fingerprint the ClientHello a given client configuration would emit —
/// fingerprints are independent of the per-connection randomness.
Fingerprint fingerprint_of_config(const tls::ClientConfig& config);

}  // namespace iotls::fingerprint
