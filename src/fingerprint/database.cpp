#include "fingerprint/database.hpp"

#include <stdexcept>

namespace iotls::fingerprint {

void FingerprintDb::add(const std::string& application,
                        const Fingerprint& fp) {
  by_hash_[fp.hash].insert(application);
  by_app_[application].push_back(fp);
}

std::vector<std::string> FingerprintDb::applications_for(
    const Fingerprint& fp) const {
  const auto it = by_hash_.find(fp.hash);
  if (it == by_hash_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

bool FingerprintDb::contains(const Fingerprint& fp) const {
  return by_hash_.count(fp.hash) > 0;
}

std::vector<std::string> FingerprintDb::applications() const {
  std::vector<std::string> out;
  out.reserve(by_app_.size());
  for (const auto& [app, fps] : by_app_) out.push_back(app);
  return out;
}

std::vector<Fingerprint> FingerprintDb::fingerprints_of(
    const std::string& application) const {
  const auto it = by_app_.find(application);
  if (it == by_app_.end()) return {};
  return it->second;
}

tls::ClientConfig reference_config(const std::string& application) {
  using tls::ProtocolVersion;
  namespace t = iotls::tls;
  tls::ClientConfig cfg;

  if (application == "openssl") {
    // OpenSSL 1.1.1 s_client-style defaults.
    cfg.versions = {ProtocolVersion::Tls1_0, ProtocolVersion::Tls1_1,
                    ProtocolVersion::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
                         t::TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305,
                         t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_DHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_AES_128_CBC_SHA,
                         t::TLS_RSA_WITH_3DES_EDE_CBC_SHA};
    cfg.session_ticket = true;
    cfg.library = t::TlsLibrary::OpenSsl;
    return cfg;
  }
  if (application == "android-sdk") {
    cfg.versions = {ProtocolVersion::Tls1_0, ProtocolVersion::Tls1_1,
                    ProtocolVersion::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305,
                         t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
                         t::TLS_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_AES_128_CBC_SHA,
                         t::TLS_RSA_WITH_3DES_EDE_CBC_SHA,
                         t::TLS_RSA_WITH_RC4_128_SHA};
    cfg.alpn_protocols = {"h2", "http/1.1"};
    cfg.library = t::TlsLibrary::AndroidSdk;
    return cfg;
  }
  if (application == "curl") {
    cfg.versions = {ProtocolVersion::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
                         t::TLS_RSA_WITH_AES_128_GCM_SHA256};
    cfg.alpn_protocols = {"http/1.1"};
    cfg.library = t::TlsLibrary::OpenSsl;
    return cfg;
  }
  if (application == "microsoft-sdk") {
    cfg.versions = {ProtocolVersion::Tls1_0, ProtocolVersion::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
                         t::TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA,
                         t::TLS_RSA_WITH_AES_256_CBC_SHA,
                         t::TLS_RSA_WITH_3DES_EDE_CBC_SHA,
                         t::TLS_RSA_WITH_RC4_128_SHA};
    cfg.request_ocsp_staple = true;
    cfg.library = t::TlsLibrary::Generic;
    return cfg;
  }
  if (application == "apple-trustd") {
    cfg.versions = {ProtocolVersion::Tls1_2, ProtocolVersion::Tls1_3};
    cfg.cipher_suites = {t::TLS_AES_128_GCM_SHA256,
                         t::TLS_CHACHA20_POLY1305_SHA256,
                         t::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
                         t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_AES_256_CBC_SHA};
    cfg.request_ocsp_staple = true;
    cfg.library = t::TlsLibrary::SecureTransport;
    return cfg;
  }
  if (application == "golang-net-http") {
    cfg.versions = {ProtocolVersion::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305,
                         t::TLS_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_AES_128_CBC_SHA};
    cfg.alpn_protocols = {"h2"};
    cfg.library = t::TlsLibrary::Generic;
    return cfg;
  }
  if (application == "mbedtls-client") {
    cfg.versions = {ProtocolVersion::Tls1_2};
    cfg.cipher_suites = {t::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_AES_128_GCM_SHA256,
                         t::TLS_RSA_WITH_AES_128_CBC_SHA};
    cfg.send_sni = true;
    cfg.library = t::TlsLibrary::MbedTls;
    return cfg;
  }
  throw std::out_of_range("unknown reference application: " + application);
}

FingerprintDb build_reference_db() {
  FingerprintDb db;
  for (const char* app :
       {"openssl", "android-sdk", "curl", "microsoft-sdk", "apple-trustd",
        "golang-net-http", "mbedtls-client"}) {
    db.add(app, fingerprint_of_config(reference_config(app)));
  }
  return db;
}

}  // namespace iotls::fingerprint
