// Labelled fingerprint database, standing in for the 1,684-fingerprint
// Kotzias et al. database the paper matches against (§5.3).
//
// Each entry maps a fingerprint to the *application* that produced it
// (OpenSSL, android-sdk, curl, ...). The reference database is synthesized
// from canonical client configurations of those applications, so device
// instances that reuse the same configuration genuinely collide with it.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fingerprint/fingerprint.hpp"

namespace iotls::fingerprint {

class FingerprintDb {
 public:
  void add(const std::string& application, const Fingerprint& fp);

  /// Applications known to produce this fingerprint.
  [[nodiscard]] std::vector<std::string> applications_for(
      const Fingerprint& fp) const;
  [[nodiscard]] bool contains(const Fingerprint& fp) const;

  [[nodiscard]] std::size_t fingerprint_count() const { return by_hash_.size(); }
  [[nodiscard]] std::vector<std::string> applications() const;

  /// All fingerprints of an application.
  [[nodiscard]] std::vector<Fingerprint> fingerprints_of(
      const std::string& application) const;

 private:
  std::map<std::string, std::set<std::string>> by_hash_;  // hash → apps
  std::map<std::string, std::vector<Fingerprint>> by_app_;
};

/// Canonical client configurations for well-known applications. These are
/// the configurations device instances share when they embed the same
/// library (see devices/catalog).
tls::ClientConfig reference_config(const std::string& application);

/// The synthesized reference database (OpenSSL, android-sdk, curl,
/// Microsoft SDK, Apple clients, golang, ...).
FingerprintDb build_reference_db();

}  // namespace iotls::fingerprint
