#include "fingerprint/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace iotls::fingerprint {

void SharingGraph::add_use(const std::string& client, NodeKind kind,
                           const Fingerprint& fp, bool dominant) {
  auto& info = clients_[client];
  info.kind = kind;
  info.hashes.insert(fp.hash);
  if (dominant) info.dominant_hashes.insert(fp.hash);
  fingerprints_[fp.hash] = fp;
  users_[fp.hash].insert(client);
}

std::vector<Fingerprint> SharingGraph::shared_fingerprints() const {
  std::vector<Fingerprint> out;
  for (const auto& [hash, users] : users_) {
    if (users.size() >= 2) out.push_back(fingerprints_.at(hash));
  }
  return out;
}

std::set<std::string> SharingGraph::sharing_partners(
    const std::string& client) const {
  std::set<std::string> out;
  const auto it = clients_.find(client);
  if (it == clients_.end()) return out;
  for (const auto& hash : it->second.hashes) {
    for (const auto& user : users_.at(hash)) {
      if (user != client) out.insert(user);
    }
  }
  return out;
}

std::vector<std::string> SharingGraph::clients_of(
    const Fingerprint& fp) const {
  const auto it = users_.find(fp.hash);
  if (it == users_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> SharingGraph::clients() const {
  std::vector<std::string> out;
  out.reserve(clients_.size());
  for (const auto& [name, info] : clients_) out.push_back(name);
  return out;
}

std::size_t SharingGraph::fingerprint_count(const std::string& client) const {
  const auto it = clients_.find(client);
  return it == clients_.end() ? 0 : it->second.hashes.size();
}

NodeKind SharingGraph::kind_of(const std::string& client) const {
  const auto it = clients_.find(client);
  if (it == clients_.end()) throw std::out_of_range("unknown client");
  return it->second.kind;
}

bool SharingGraph::is_dominant(const std::string& client,
                               const Fingerprint& fp) const {
  const auto it = clients_.find(client);
  return it != clients_.end() && it->second.dominant_hashes.count(fp.hash) > 0;
}

std::vector<std::set<std::string>> SharingGraph::clusters() const {
  // Union-find over clients via shared fingerprints.
  std::map<std::string, std::string> parent;
  for (const auto& [name, info] : clients_) parent[name] = name;

  std::function<std::string(const std::string&)> find =
      [&](const std::string& x) -> std::string {
    if (parent[x] == x) return x;
    parent[x] = find(parent[x]);
    return parent[x];
  };

  for (const auto& [hash, users] : users_) {
    if (users.size() < 2) continue;
    const std::string& first = *users.begin();
    for (const auto& user : users) {
      parent[find(user)] = find(first);
    }
  }

  std::map<std::string, std::set<std::string>> groups;
  for (const auto& [name, info] : clients_) groups[find(name)].insert(name);

  std::vector<std::set<std::string>> out;
  for (auto& [root, members] : groups) {
    if (members.size() >= 2) out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  return out;
}

}  // namespace iotls::fingerprint
