// The device/application ↔ fingerprint sharing graph (Fig 5).
//
// Nodes are clients (devices from the testbed, applications from the
// reference database) and fingerprints; an edge means the client was
// observed using the fingerprint. Only fingerprints shared by ≥2 clients
// are kept (the figure drops non-shared edges for readability).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fingerprint/fingerprint.hpp"

namespace iotls::fingerprint {

enum class NodeKind { Device, Application };

class SharingGraph {
 public:
  /// Record that `client` used `fp`. `dominant` marks the client's
  /// most-used fingerprint (thick edge in Fig 5).
  void add_use(const std::string& client, NodeKind kind,
               const Fingerprint& fp, bool dominant = false);

  /// Fingerprints used by ≥2 distinct clients.
  [[nodiscard]] std::vector<Fingerprint> shared_fingerprints() const;

  /// Clients sharing at least one fingerprint with `client`.
  [[nodiscard]] std::set<std::string> sharing_partners(
      const std::string& client) const;

  /// All clients that used `fp`.
  [[nodiscard]] std::vector<std::string> clients_of(
      const Fingerprint& fp) const;

  [[nodiscard]] std::vector<std::string> clients() const;
  [[nodiscard]] std::size_t fingerprint_count(const std::string& client) const;
  [[nodiscard]] NodeKind kind_of(const std::string& client) const;
  [[nodiscard]] bool is_dominant(const std::string& client,
                                 const Fingerprint& fp) const;

  /// Connected components over clients, using only shared fingerprints —
  /// the clusters Fig 5 labels (Amazon, Apple, Microsoft, OpenSSL, ...).
  [[nodiscard]] std::vector<std::set<std::string>> clusters() const;

 private:
  struct ClientInfo {
    NodeKind kind = NodeKind::Device;
    std::set<std::string> hashes;
    std::set<std::string> dominant_hashes;
  };
  std::map<std::string, ClientInfo> clients_;
  std::map<std::string, Fingerprint> fingerprints_;          // hash → fp
  std::map<std::string, std::set<std::string>> users_;       // hash → clients
};

}  // namespace iotls::fingerprint
