// Root-store exploration: the paper's novel technique (§4.2) end to end.
//
// For a chosen device it (1) verifies amenability, (2) probes the common
// and deprecated certificate sets, and (3) flags distrusted CAs found.
//
// Usage: ./build/examples/root_store_probe [device-name]  (default: LG TV)
#include <cstdio>

#include "probe/prober.hpp"

int main(int argc, char** argv) {
  using namespace iotls;
  const std::string device = argc > 1 ? argv[1] : "LG TV";

  testbed::Testbed tb;
  const auto& universe = tb.universe();
  probe::RootStoreProber prober(tb);

  if (devices::find_device(device) == nullptr) {
    std::fprintf(stderr, "unknown device: %s\n", device.c_str());
    return 1;
  }

  std::printf("amenability check for %s... ", device.c_str());
  if (!prober.device_amenable(device)) {
    std::printf("NOT amenable (its TLS stack does not distinguish "
                "unknown-CA from bad-signature via alerts).\n");
    std::printf("amenable devices:");
    for (const auto& name : prober.amenable_devices()) {
      std::printf(" [%s]", name.c_str());
    }
    std::printf("\n");
    return 0;
  }
  std::printf("amenable.\n\n");

  const auto common_result =
      prober.explore(device, universe.common_ca_names());
  std::printf("common set:     %d/%d present (%.0f%%)\n",
              common_result.present, common_result.checked,
              common_result.fraction() * 100);

  const auto deprecated_result =
      prober.explore(device, universe.deprecated_ca_names());
  std::printf("deprecated set: %d/%d present (%.0f%%)\n\n",
              deprecated_result.present, deprecated_result.checked,
              deprecated_result.fraction() * 100);

  std::printf("deprecated-yet-trusted roots on this device:\n");
  for (const auto& [ca, verdict] : deprecated_result.verdicts) {
    if (verdict != probe::Verdict::Present) continue;
    const auto year = universe.removal_year(ca);
    std::printf("  %-40s removed %d%s\n", ca.c_str(), year.value_or(0),
                universe.is_distrusted(ca) ? "  ** EXPLICITLY DISTRUSTED **"
                                           : "");
  }
  return 0;
}
