// Flight recorder walkthrough: trace one spoofed-root probe pair.
//
// Runs the §4.2 root-store probe primitive — one unknown-CA handshake and
// one spoofed-CA handshake against the same device — with tracing at Full,
// then prints the annotated trace: every wire record, each x509 validation
// check, the alerts each probe provoked, and which signal decided the
// verdict. Traces are deterministic (no wall clock), so this output is
// byte-identical on every run.
//
// Usage: ./build/examples/trace_handshake [device-name] [ca-name]
#include <cstdio>

#include "obs/trace.hpp"
#include "probe/prober.hpp"

int main(int argc, char** argv) {
  using namespace iotls;
  const std::string device = argc > 1 ? argv[1] : "LG TV";

  testbed::Testbed tb;
  obs::TraceLog trace(obs::TraceLevel::Full);
  tb.set_trace(&trace);

  if (devices::find_device(device) == nullptr) {
    std::fprintf(stderr, "unknown device: %s\n", device.c_str());
    return 1;
  }
  const auto& universe = tb.universe();
  const std::string ca =
      argc > 2 ? argv[2] : universe.common_ca_names().front();

  probe::RootStoreProber prober(tb);
  std::printf("probing %s with spoofed root '%s'...\n\n", device.c_str(),
              ca.c_str());
  const auto outcome = prober.probe_certificate(device, ca);

  std::printf("%s\n", trace.render().c_str());
  std::printf("%s\n", trace.summary().c_str());
  std::printf("verdict: %s root is %s on %s\n", ca.c_str(),
              probe::verdict_name(outcome.verdict).c_str(), device.c_str());
  return 0;
}
