// Quickstart: the library in ~60 lines.
//
//   1. build the simulated smart-home testbed (40 devices + cloud),
//   2. reboot a device through its smart plug and watch its TLS traffic,
//   3. mount one interception attack with the on-path interceptor,
//   4. probe one root certificate via the TLS-alert side channel.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "mitm/interceptor.hpp"
#include "probe/prober.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace iotls;
  const common::SimDate today{2021, 3, 15};

  // 1. The testbed: devices, smart plugs, cloud farm, capture gateway.
  testbed::Testbed tb;
  tb.set_date(today);
  std::printf("testbed up: %zu active devices\n", tb.device_names().size());

  // 2. Power-cycle the Google Home Mini and inspect its boot connections.
  auto boot = tb.plug("Google Home Mini").power_cycle(today);
  std::printf("\nGoogle Home Mini boot: %d connections, %d succeeded\n",
              static_cast<int>(boot.connections.size()), boot.successes());
  for (const auto& conn : boot.connections) {
    const auto& r = conn.final_result();
    std::printf("  %-28s %-8s %s / %s\n", conn.destination->hostname.c_str(),
                tls::outcome_name(r.outcome).c_str(),
                r.negotiated_version
                    ? tls::version_name(*r.negotiated_version).c_str()
                    : "-",
                r.negotiated_suite ? tls::suite_name(*r.negotiated_suite).c_str()
                                   : "-");
  }

  // 3. Mount the WrongHostname attack against the Amazon Echo Dot.
  mitm::Interceptor interceptor(tb.universe(), tb.cloud());
  interceptor.set_mode(
      mitm::InterceptMode::make_attack(mitm::AttackKind::WrongHostname));
  interceptor.install(tb.network());
  (void)tb.plug("Amazon Echo Dot").power_cycle(today);
  int compromised = 0;
  for (const auto& inter : interceptor.drain()) {
    if (!inter.compromised()) continue;
    ++compromised;
    std::printf("\nintercepted %s — recovered plaintext: \"%s\"\n",
                inter.hostname.c_str(),
                common::to_string(inter.recovered_plaintext).c_str());
  }
  interceptor.uninstall(tb.network());
  std::printf("WrongHostname compromised %d Echo Dot connection(s)\n",
              compromised);

  // 4. Probe one root certificate on the LG TV.
  probe::RootStoreProber prober(tb);
  const auto outcome = prober.probe_certificate("LG TV", "WoSign CA Free SSL");
  std::printf("\nLG TV x WoSign CA probe: unknown-CA alert=%s, "
              "spoofed-CA alert=%s -> %s\n",
              tls::alert_display(outcome.alert_unknown).c_str(),
              tls::alert_display(outcome.alert_spoofed).c_str(),
              probe::verdict_name(outcome.verdict).c_str());
  return 0;
}
