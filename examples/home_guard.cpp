// Home guard + auditing service: the paper's §6 mitigations in action.
//
// Runs the SPIN-style in-home guard in observe mode across every active
// device's boot traffic, prints what it would have blocked, then produces
// the §6 auditing-service report for the worst offenders.
//
// Usage: ./build/examples/home_guard [--block]
#include <cstdio>
#include <cstring>
#include <map>

#include "analysis/advisor.hpp"
#include "net/guard.hpp"
#include "testbed/testbed.hpp"

int main(int argc, char** argv) {
  using namespace iotls;
  const bool block = argc > 1 && std::strcmp(argv[1], "--block") == 0;
  const common::SimDate today{2021, 3, 15};

  testbed::Testbed tb;
  tb.set_date(today);

  net::GuardPolicy policy;
  policy.block = block;
  net::InHomeGuard guard(policy);
  guard.install(tb.network());

  std::map<std::string, int> flagged_per_device;
  for (const auto& name : tb.device_names()) {
    auto& runtime = tb.runtime(name);
    runtime.reset_failure_state();
    const std::size_t before = guard.events().size();
    (void)runtime.boot(today);
    runtime.reset_failure_state();
    const int flagged = static_cast<int>(guard.events().size() - before);
    if (flagged > 0) flagged_per_device[name] = flagged;
  }
  guard.uninstall(tb.network());

  std::printf("in-home guard (%s mode): %zu connection(s) flagged across "
              "%zu device(s)\n\n",
              block ? "blocking" : "observe", guard.events().size(),
              flagged_per_device.size());
  for (const auto& [device, count] : flagged_per_device) {
    std::printf("  %-22s %d flagged connection(s)\n", device.c_str(), count);
  }

  std::printf("\nsample events:\n");
  int shown = 0;
  for (const auto& event : guard.events()) {
    if (++shown > 8) break;
    std::printf("  [%s] %s — %s\n", event.blocked ? "BLOCKED" : "flagged",
                event.hostname.c_str(), event.reason.c_str());
  }

  // Auditing-service deep dive on the two worst devices.
  std::printf("\n== auditing service (§6) ==\n");
  int audited = 0;
  for (const auto& [device, count] : flagged_per_device) {
    if (audited++ == 2) break;
    std::fputs(analysis::render_audit(analysis::audit_device(tb, device))
                   .c_str(),
               stdout);
  }
  return 0;
}
