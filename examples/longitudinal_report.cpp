// Longitudinal report: generate the 27-month passive dataset and print the
// per-device version/cipher evolution for one device plus study-wide
// statistics — the §5.1 analysis as a reusable tool.
//
// Usage: ./build/examples/longitudinal_report [device-name] [store-dir]
//
// With a second argument the dataset is also persisted as a sharded
// capture store (DESIGN.md §11) — inspect it with `iotls-store`.
#include <cstdio>

#include "analysis/longitudinal.hpp"
#include "analysis/summary.hpp"
#include "common/table.hpp"
#include "store/writer.hpp"

int main(int argc, char** argv) {
  using namespace iotls;
  const std::string device = argc > 1 ? argv[1] : "Apple TV";
  const std::string store_dir = argc > 2 ? argv[2] : "";

  std::printf("generating 27 months of passive traffic (40 devices)...\n");
  testbed::GeneratorOptions gen;
  gen.count_scale = 0.05;  // report tool: shapes identical, faster counts
  const auto dataset = testbed::generate_passive_dataset(gen);
  const auto months = analysis::study_months();

  const auto series = analysis::version_series(dataset, device, months);
  std::printf("\n%s — advertised TLS versions by month (%s .. %s)\n",
              device.c_str(), months.front().str().c_str(),
              months.back().str().c_str());
  std::fputs(
      analysis::render_version_heatmap({series}, /*advertised=*/true).c_str(),
      stdout);
  std::printf("(TLS1.2-exclusive: %s)\n",
              series.tls12_exclusive() ? "yes" : "no");

  const auto ciphers = analysis::cipher_series(dataset, device, months);
  std::printf("\ninsecure advertised  |%s|\n",
              common::heat_strip(ciphers.insecure_advertised).c_str());
  std::printf("strong established   |%s|\n",
              common::heat_strip(ciphers.strong_established).c_str());

  const auto summary = analysis::summarize(dataset);
  std::printf("\n== study-wide ==\n%s",
              analysis::render_summary(summary).c_str());

  if (!store_dir.empty()) {
    store::StoreOptions opts;
    opts.layout = store::ShardLayout::PerDevice;
    opts.seed = gen.seed;
    opts.first = gen.first;
    opts.last = gen.last;
    const auto report = store::write_store(dataset, store_dir, opts);
    std::printf(
        "\nwrote capture store: %zu shards, %llu groups, %llu bytes -> %s\n"
        "(inspect with: iotls-store inspect %s)\n",
        report.shards.size(),
        static_cast<unsigned long long>(report.total_groups()),
        static_cast<unsigned long long>(report.total_bytes()),
        store_dir.c_str(), store_dir.c_str());
  }
  return 0;
}
