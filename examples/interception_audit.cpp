// Interception audit: run the full Table 2 attack suite against every
// active device and print a vulnerability report with recovered secrets —
// the §5.2 workflow as a reusable tool.
//
// Usage: ./build/examples/interception_audit [device-name]
#include <cstdio>
#include <cstring>

#include "common/table.hpp"
#include "mitm/runner.hpp"

int main(int argc, char** argv) {
  using namespace iotls;
  testbed::Testbed tb;

  if (argc > 1) {
    // Audit a single device in detail.
    const std::string device = argv[1];
    if (devices::find_device(device) == nullptr) {
      std::fprintf(stderr, "unknown device: %s\n", device.c_str());
      return 1;
    }
    tb.set_date({2021, 3, 15});
    mitm::Interceptor interceptor(tb.universe(), tb.cloud());
    for (const auto attack : mitm::all_attacks()) {
      interceptor.set_mode(mitm::InterceptMode::make_attack(attack));
      interceptor.install(tb.network());
      auto& runtime = tb.runtime(device);
      runtime.reset_failure_state();
      for (int i = 0; i < 4; ++i) {
        (void)runtime.boot(tb.date(), /*include_intermittent=*/true);
      }
      runtime.reset_failure_state();
      std::printf("== %s ==\n", mitm::attack_name(attack).c_str());
      for (const auto& inter : interceptor.drain()) {
        std::printf("  %-32s %s\n", inter.hostname.c_str(),
                    inter.compromised() ? "COMPROMISED" : "protected");
      }
      interceptor.uninstall(tb.network());
    }
    return 0;
  }

  const auto report = mitm::run_interception_experiments(tb);
  common::TextTable table({"Device", "NoValidation", "InvalidBC",
                           "WrongHostname", "Vuln/Total", "Leaked secret"});
  for (const auto& row : report.rows) {
    table.add_row({row.device, row.no_validation ? "VULN" : "-",
                   row.invalid_basic_constraints ? "VULN" : "-",
                   row.wrong_hostname ? "VULN" : "-",
                   std::to_string(row.vulnerable_destinations) + "/" +
                       std::to_string(row.total_destinations),
                   row.leaked_samples.empty()
                       ? ""
                       : row.leaked_samples.front().substr(0, 40)});
  }
  std::printf("Interception audit over %d devices — %zu vulnerable\n\n",
              report.devices_tested, report.rows.size());
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%d device(s) performed no certificate validation at all;\n"
              "%d leaked sensitive data on compromised connections.\n",
              report.devices_without_any_validation,
              report.devices_with_sensitive_leaks);
  std::printf("\n(pass a device name for a per-destination breakdown)\n");
  return 0;
}
